package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
)

var testKey = []byte("processor-secret")

func newSM(t *testing.T, enc EncryptionScheme, integ IntegrityScheme) *SecureMemory {
	t.Helper()
	s, err := New(Config{
		DataBytes:  256 << 10, // 64 pages
		MACBits:    128,
		Key:        testKey,
		Encryption: enc,
		Integrity:  integ,
		SwapSlots:  16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pattern(seed byte) mem.Block {
	var b mem.Block
	for i := range b {
		b[i] = seed ^ byte(i*7)
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	base := Config{DataBytes: 4096, Key: testKey, Encryption: AISE, Integrity: BonsaiMT}
	if _, err := New(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.DataBytes = 100
	if _, err := New(bad); err == nil {
		t.Error("unaligned DataBytes accepted")
	}
	bad = base
	bad.Key = []byte("short")
	if _, err := New(bad); err == nil {
		t.Error("short key accepted")
	}
	bad = base
	bad.MACBits = 47
	if _, err := New(bad); err == nil {
		t.Error("bad MAC width accepted")
	}
	bad = base
	bad.Encryption = CtrGlobal64
	if _, err := New(bad); err == nil {
		t.Error("BMT without AISE accepted")
	}
}

// TestRoundTripAllSchemes: write/read round trips for every supported
// scheme combination.
func TestRoundTripAllSchemes(t *testing.T) {
	combos := []struct {
		enc EncryptionScheme
		in  IntegrityScheme
	}{
		{NoEncryption, NoIntegrity},
		{DirectEncryption, NoIntegrity},
		{CtrGlobal32, NoIntegrity},
		{CtrGlobal64, NoIntegrity},
		{CtrPhys, NoIntegrity},
		{AISE, NoIntegrity},
		{AISE, MACOnly},
		{CtrGlobal64, MerkleTree},
		{AISE, MerkleTree},
		{AISE, BonsaiMT},
		{NoEncryption, MACOnly},
		{DirectEncryption, MerkleTree},
	}
	for _, c := range combos {
		name := c.enc.String() + "+" + c.in.String()
		s := newSM(t, c.enc, c.in)
		want := pattern(0x5a)
		if err := s.WriteBlock(0x1040, &want, Meta{}); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		var got mem.Block
		if err := s.ReadBlock(0x1040, &got, Meta{}); err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: round trip mismatch", name)
		}
		// Unwritten blocks read as zero (except CtrVirt, see doc).
		var zero mem.Block
		if err := s.ReadBlock(0x2000, &got, Meta{}); err != nil {
			t.Fatalf("%s: read clean block: %v", name, err)
		}
		if got != zero {
			t.Errorf("%s: unwritten block not zero", name)
		}
	}
}

func TestCtrVirtRoundTrip(t *testing.T) {
	s := newSM(t, CtrVirt, NoIntegrity)
	meta := Meta{VirtAddr: 0x7fff1040, PID: 3}
	want := pattern(0x11)
	if err := s.WriteBlock(0x1040, &want, meta); err != nil {
		t.Fatal(err)
	}
	var got mem.Block
	if err := s.ReadBlock(0x1040, &got, meta); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("CtrVirt round trip mismatch")
	}
	// A different PID reading the same physical block gets garbage — the
	// shared-memory IPC incompatibility of §4.2.
	other := Meta{VirtAddr: 0x7fff1040, PID: 4}
	if err := s.ReadBlock(0x1040, &got, other); err != nil {
		t.Fatal(err)
	}
	if got == want {
		t.Error("different PID decrypted shared data; VirtSeed should prevent this")
	}
}

func TestCiphertextActuallyEncrypted(t *testing.T) {
	for _, enc := range []EncryptionScheme{DirectEncryption, CtrGlobal64, CtrPhys, AISE} {
		s := newSM(t, enc, NoIntegrity)
		plain := pattern(0x33)
		if err := s.WriteBlock(0x3000, &plain, Meta{}); err != nil {
			t.Fatal(err)
		}
		stored := s.Memory().Snapshot(0x3000)
		if stored == plain {
			t.Errorf("%v: plaintext visible in memory", enc)
		}
	}
	// NoEncryption stores plaintext (the baseline's weakness).
	s := newSM(t, NoEncryption, NoIntegrity)
	plain := pattern(0x33)
	s.WriteBlock(0x3000, &plain, Meta{})
	if s.Memory().Snapshot(0x3000) != plain {
		t.Error("NoEncryption altered the data")
	}
}

func TestByteLevelReadWrite(t *testing.T) {
	s := newSM(t, AISE, BonsaiMT)
	msg := []byte("the quick brown fox jumps over the lazy dog, spanning blocks!")
	if err := s.Write(0x10f0, msg, Meta{}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := s.Read(0x10f0, got, Meta{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("byte round trip: got %q", got)
	}
}

func TestTamperDetection(t *testing.T) {
	for _, in := range []IntegrityScheme{MACOnly, MerkleTree, BonsaiMT} {
		enc := AISE
		if in == MerkleTree {
			enc = CtrGlobal64
		}
		s := newSM(t, enc, in)
		want := pattern(1)
		if err := s.WriteBlock(0x5000, &want, Meta{}); err != nil {
			t.Fatal(err)
		}
		s.Memory().TamperBytes(0x5002, []byte{0xff})
		var got mem.Block
		err := s.ReadBlock(0x5000, &got, Meta{})
		if !errors.Is(err, ErrTampered) {
			t.Errorf("%v: tamper not detected: %v", in, err)
		}
		if got != (mem.Block{}) {
			t.Errorf("%v: tampered plaintext leaked to the processor", in)
		}
	}
}

func TestNoIntegrityMissesTamper(t *testing.T) {
	s := newSM(t, AISE, NoIntegrity)
	want := pattern(1)
	s.WriteBlock(0x5000, &want, Meta{})
	s.Memory().TamperBytes(0x5002, []byte{0xff})
	var got mem.Block
	if err := s.ReadBlock(0x5000, &got, Meta{}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if got == want {
		t.Error("tampering had no effect?")
	}
}

// TestReplayDetectedByTrees: roll back data + MAC + counter state; MT and
// BMT must detect it, MAC-only must not.
func TestReplayDetectedByTrees(t *testing.T) {
	run := func(enc EncryptionScheme, in IntegrityScheme) error {
		s := newSM(t, enc, in)
		v1 := pattern(1)
		if err := s.WriteBlock(0x7000, &v1, Meta{}); err != nil {
			t.Fatal(err)
		}
		// Attacker snapshots everything the scheme stores off-chip.
		m := s.Memory()
		var snaps []struct {
			a layout.Addr
			b mem.Block
		}
		for _, r := range m.Regions() {
			for a := r.Base; a < r.Base+layout.Addr(r.Size); a += layout.BlockSize {
				snaps = append(snaps, struct {
					a layout.Addr
					b mem.Block
				}{a, m.Snapshot(a)})
			}
		}
		v2 := pattern(2)
		if err := s.WriteBlock(0x7000, &v2, Meta{}); err != nil {
			t.Fatal(err)
		}
		// Replay the complete off-chip state.
		for _, sn := range snaps {
			m.Tamper(sn.a, sn.b)
		}
		var got mem.Block
		return s.ReadBlock(0x7000, &got, Meta{})
	}
	if err := run(CtrGlobal64, MerkleTree); !errors.Is(err, ErrTampered) {
		t.Errorf("MT missed whole-state replay: %v", err)
	}
	if err := run(AISE, BonsaiMT); !errors.Is(err, ErrTampered) {
		t.Errorf("BMT missed whole-state replay: %v", err)
	}
	if err := run(AISE, MACOnly); err != nil {
		t.Errorf("MAC-only unexpectedly detected replay (it has no freshness): %v", err)
	}
}

func TestMinorCounterOverflowReencryptsPage(t *testing.T) {
	s := newSM(t, AISE, BonsaiMT)
	// Put distinct data in two blocks of the same page.
	keep := pattern(0x77)
	if err := s.WriteBlock(0x4040, &keep, Meta{}); err != nil {
		t.Fatal(err)
	}
	before, err := s.CounterBlockOf(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer one block until its 7-bit minor counter overflows.
	hot := pattern(0)
	for i := 0; i <= layout.MinorCounterMax; i++ {
		hot[0] = byte(i)
		if err := s.WriteBlock(0x4000, &hot, Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	after, err := s.CounterBlockOf(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if after.LPID == before.LPID {
		t.Error("overflow did not assign a fresh LPID")
	}
	if s.Stats().PageReencrypts == 0 {
		t.Error("no page re-encryption recorded")
	}
	// Both blocks still readable with correct contents.
	var got mem.Block
	if err := s.ReadBlock(0x4040, &got, Meta{}); err != nil {
		t.Fatalf("read after re-encryption: %v", err)
	}
	if got != keep {
		t.Error("sibling block corrupted by page re-encryption")
	}
	if err := s.ReadBlock(0x4000, &got, Meta{}); err != nil {
		t.Fatalf("read hot block: %v", err)
	}
	if got != hot {
		t.Error("hot block corrupted by page re-encryption")
	}
}

func TestGPCPersistsAcrossReboot(t *testing.T) {
	s := newSM(t, AISE, BonsaiMT)
	b := pattern(1)
	s.WriteBlock(0, &b, Meta{})
	img := s.GPCImage()
	// Reboot: new controller, restored GPC. New LPIDs must continue beyond
	// every pre-reboot LPID.
	s2, err := New(Config{DataBytes: 256 << 10, MACBits: 128, Key: testKey,
		Encryption: AISE, Integrity: BonsaiMT, SwapSlots: 16, GPCImage: &img})
	if err != nil {
		t.Fatal(err)
	}
	preReboot, err := s.CounterBlockOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if preReboot.LPID == 0 {
		t.Fatal("written page has no LPID")
	}
	// Allocate a page on the rebooted controller; its LPID must be beyond
	// every pre-reboot LPID or pads could repeat across boots.
	if err := s2.WriteBlock(0, &b, Meta{}); err != nil {
		t.Fatal(err)
	}
	cb, err := s2.CounterBlockOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if cb.LPID <= preReboot.LPID {
		t.Errorf("post-reboot LPID %d not beyond pre-reboot %d; pad reuse possible", cb.LPID, preReboot.LPID)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := newSM(t, AISE, BonsaiMT)
	b := pattern(4)
	s.WriteBlock(0, &b, Meta{})
	var got mem.Block
	s.ReadBlock(0, &got, Meta{})
	st := s.Stats()
	if st.BlockWrites != 1 || st.BlockReads != 1 {
		t.Errorf("reads/writes = %d/%d", st.BlockReads, st.BlockWrites)
	}
	if st.PadGens == 0 || st.MACOps == 0 || st.TreeUpdates == 0 || st.TreeVerifies == 0 {
		t.Errorf("zero work recorded: %+v", st)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	s := newSM(t, AISE, BonsaiMT)
	var b mem.Block
	if err := s.WriteBlock(layout.Addr(s.DataBytes()), &b, Meta{}); err == nil {
		t.Error("write past data region accepted")
	}
	if err := s.ReadBlock(layout.Addr(s.DataBytes()), &b, Meta{}); err == nil {
		t.Error("read past data region accepted")
	}
}

func TestSchemeStrings(t *testing.T) {
	for _, e := range []EncryptionScheme{NoEncryption, DirectEncryption, CtrGlobal32, CtrGlobal64, CtrPhys, CtrVirt, AISE, EncryptionScheme(99)} {
		if e.String() == "" {
			t.Error("empty scheme name")
		}
	}
	for _, i := range []IntegrityScheme{NoIntegrity, MACOnly, MerkleTree, BonsaiMT, IntegrityScheme(99)} {
		if i.String() == "" {
			t.Error("empty integrity name")
		}
	}
}

// TestGlobalCounterWrapReencrypts drives a 32-bit global counter over its
// wrap point: the controller must re-encrypt the whole region (§4.1) and
// keep every block readable.
func TestGlobalCounterWrapReencrypts(t *testing.T) {
	sm, err := New(Config{
		DataBytes: 64 << 10, MACBits: 128, Key: testKey,
		Encryption: CtrGlobal32, Integrity: MerkleTree,
	})
	if err != nil {
		t.Fatal(err)
	}
	keep := pattern(0x41)
	if err := sm.WriteBlock(0x2000, &keep, Meta{}); err != nil {
		t.Fatal(err)
	}
	sm.AgeGlobalCounter(1<<32 - 2)
	// The next two writes straddle the wrap.
	w := pattern(0x42)
	if err := sm.WriteBlock(0x3000, &w, Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := sm.WriteBlock(0x3040, &w, Meta{}); err != nil {
		t.Fatal(err)
	}
	if sm.Stats().FullReencrypts == 0 {
		t.Fatal("wrap did not trigger whole-memory re-encryption")
	}
	var got mem.Block
	for _, a := range []layout.Addr{0x2000, 0x3000, 0x3040} {
		if err := sm.ReadBlock(a, &got, Meta{}); err != nil {
			t.Fatalf("read %#x after wrap: %v", a, err)
		}
	}
	if err := sm.ReadBlock(0x2000, &got, Meta{}); err != nil || got != keep {
		t.Errorf("pre-wrap data corrupted: %v", err)
	}
	if err := sm.VerifyAll(); err != nil {
		t.Errorf("VerifyAll after wrap: %v", err)
	}
}

func TestStatsString(t *testing.T) {
	sm := newSM(t, AISE, BonsaiMT)
	b := pattern(1)
	sm.WriteBlock(0, &b, Meta{})
	out := sm.Stats().String()
	for _, want := range []string{"reads", "writes", "pads", "MAC ops", "tree"} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats string missing %q: %s", want, out)
		}
	}
}
