package core

import (
	"errors"
	"testing"

	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
)

func coverageSM(t *testing.T, k int) *SecureMemory {
	t.Helper()
	sm, err := New(Config{
		DataBytes: 256 << 10, MACBits: 128, Key: testKey,
		Encryption: AISE, Integrity: BonsaiMT, SwapSlots: 16, MACCoverage: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

func TestCoverageRoundTrip(t *testing.T) {
	for _, k := range []int{2, 4, 16, 64} {
		sm := coverageSM(t, k)
		want := pattern(byte(k))
		if err := sm.WriteBlock(0x3040, &want, Meta{}); err != nil {
			t.Fatalf("k=%d: write: %v", k, err)
		}
		var got mem.Block
		if err := sm.ReadBlock(0x3040, &got, Meta{}); err != nil {
			t.Fatalf("k=%d: read: %v", k, err)
		}
		if got != want {
			t.Errorf("k=%d: round trip mismatch", k)
		}
		// Sibling blocks in the same group still read as zeros.
		if err := sm.ReadBlock(0x3000, &got, Meta{}); err != nil {
			t.Fatalf("k=%d: sibling read: %v", k, err)
		}
		if got != (mem.Block{}) {
			t.Errorf("k=%d: sibling not zero", k)
		}
	}
}

func TestCoverageTamperDetected(t *testing.T) {
	sm := coverageSM(t, 8)
	want := pattern(7)
	if err := sm.WriteBlock(0x3000, &want, Meta{}); err != nil {
		t.Fatal(err)
	}
	// Tamper a SIBLING of the written block; reading the written block must
	// still fail (the group MAC covers all eight).
	sm.Memory().TamperBytes(0x3080, []byte{0xee})
	var got mem.Block
	if err := sm.ReadBlock(0x3000, &got, Meta{}); !errors.Is(err, ErrTampered) {
		t.Errorf("sibling tamper missed: %v", err)
	}
}

func TestCoverageReplayDetected(t *testing.T) {
	sm := coverageSM(t, 4)
	v1 := pattern(1)
	if err := sm.WriteBlock(0x5000, &v1, Meta{}); err != nil {
		t.Fatal(err)
	}
	m := sm.Memory()
	var snaps []struct {
		a layout.Addr
		b mem.Block
	}
	for _, r := range m.Regions() {
		for a := r.Base; a < r.Base+layout.Addr(r.Size); a += layout.BlockSize {
			snaps = append(snaps, struct {
				a layout.Addr
				b mem.Block
			}{a, m.Snapshot(a)})
		}
	}
	v2 := pattern(2)
	if err := sm.WriteBlock(0x5000, &v2, Meta{}); err != nil {
		t.Fatal(err)
	}
	for _, sn := range snaps {
		m.Tamper(sn.a, sn.b)
	}
	var got mem.Block
	if err := sm.ReadBlock(0x5000, &got, Meta{}); !errors.Is(err, ErrTampered) {
		t.Errorf("whole-state replay missed under coverage: %v", err)
	}
}

func TestCoverageSwapRoundTrip(t *testing.T) {
	sm := coverageSM(t, 4)
	want := pattern(0x61)
	if err := sm.WriteBlock(0x30c0, &want, Meta{}); err != nil {
		t.Fatal(err)
	}
	img, err := sm.SwapOut(0x3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	// MAC section shrinks with coverage: 64/4 MACs × 16 bytes.
	if len(img.MACs) != 16*16 {
		t.Fatalf("image MAC section %d bytes, want 256", len(img.MACs))
	}
	if err := sm.SwapIn(img, 0x8000, 2); err != nil {
		t.Fatal(err)
	}
	var got mem.Block
	if err := sm.ReadBlock(0x80c0, &got, Meta{}); err != nil {
		t.Fatalf("read after swap: %v", err)
	}
	if got != want {
		t.Error("data corrupted across swap under coverage")
	}
	// Tampered image MACs are rejected lazily.
	img2, err := sm.SwapOut(0x8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	img2.MACs[5] ^= 1
	if err := sm.SwapIn(img2, 0x8000, 3); err != nil {
		t.Fatal(err)
	}
	if err := sm.ReadBlock(0x80c0, &got, Meta{}); !errors.Is(err, ErrTampered) {
		t.Errorf("tampered group MAC in swap image missed: %v", err)
	}
}

func TestCoverageStorageShrinks(t *testing.T) {
	base := coverageSM(t, 1)
	wide := coverageSM(t, 16)
	var baseMAC, wideMAC uint64
	for _, r := range base.Memory().Regions() {
		if r.Name == "datamacs" {
			baseMAC = r.Size
		}
	}
	for _, r := range wide.Memory().Regions() {
		if r.Name == "datamacs" {
			wideMAC = r.Size
		}
	}
	if wideMAC != baseMAC/16 {
		t.Errorf("coverage-16 MAC region %d, want %d", wideMAC, baseMAC/16)
	}
}

func TestCoverageValidation(t *testing.T) {
	cfg := Config{DataBytes: 64 << 10, Key: testKey, Encryption: AISE, Integrity: BonsaiMT, MACCoverage: 3}
	if _, err := New(cfg); err == nil {
		t.Error("non-power-of-two coverage accepted")
	}
	cfg = Config{DataBytes: 64 << 10, Key: testKey, Encryption: CtrGlobal64, Integrity: MerkleTree, MACCoverage: 4}
	if _, err := New(cfg); !errors.Is(err, ErrUnsupported) {
		t.Errorf("coverage on MT: %v, want ErrUnsupported", err)
	}
}

func TestCoverageMinorOverflow(t *testing.T) {
	sm := coverageSM(t, 8)
	hot := pattern(0)
	for i := 0; i <= layout.MinorCounterMax; i++ {
		hot[0] = byte(i)
		if err := sm.WriteBlock(0x4000, &hot, Meta{}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if sm.Stats().PageReencrypts == 0 {
		t.Fatal("no re-encryption recorded")
	}
	var got mem.Block
	if err := sm.ReadBlock(0x4000, &got, Meta{}); err != nil {
		t.Fatalf("read after overflow: %v", err)
	}
	if got != hot {
		t.Error("hot block corrupted by re-encryption under coverage")
	}
}
