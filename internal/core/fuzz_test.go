package core

import (
	"bytes"
	"testing"

	"aisebmt/internal/layout"
)

// FuzzWriteRead fuzzes the byte-granular protected path: any (offset, data)
// written through the controller must read back identically, with the whole
// memory still verifying afterwards.
func FuzzWriteRead(f *testing.F) {
	f.Add(uint32(0), []byte("hello"))
	f.Add(uint32(4090), []byte("crosses a page boundary right here"))
	f.Add(uint32(63), []byte{0})
	sm, err := New(Config{
		DataBytes: 64 << 10, MACBits: 128, Key: testKey,
		Encryption: AISE, Integrity: BonsaiMT,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, off uint32, data []byte) {
		if len(data) == 0 {
			return
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		a := layout.Addr(off) % layout.Addr(64<<10-len(data))
		if err := sm.Write(a, data, Meta{}); err != nil {
			t.Fatalf("Write(%#x, %d bytes): %v", a, len(data), err)
		}
		got := make([]byte, len(data))
		if err := sm.Read(a, got, Meta{}); err != nil {
			t.Fatalf("Read(%#x): %v", a, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip at %#x diverged", a)
		}
	})
}
