package core

import "aisebmt/internal/layout"

// metaCache is a stats-only model of the on-chip metadata caches the
// paper assumes: a small counter cache (§4.2 keeps hot counter blocks
// next to the pipeline) and a cache of Bonsai/Merkle tree nodes (the
// optimization that lets a verification walk stop early). The functional
// controller always performs the full fetch and walk — this model only
// answers "would that metadata have been resident?" so a live daemon can
// report counter-cache and tree-node hit rates per shard.
//
// Both caches are direct-mapped over fixed arrays: touching one is two
// array accesses and never allocates, preserving the hot path's
// zero-alloc contract. Tags store blockAddr+1 so the zero value means
// "invalid" and an explicit valid bit is unnecessary.
const (
	ctrCacheLines  = 64  // 64 × 64B counter blocks ≈ 4KiB counter cache
	nodeCacheLines = 256 // 256 × 64B node blocks ≈ 16KiB tree-node cache
)

type metaCache struct {
	ctr  [ctrCacheLines]layout.Addr
	node [nodeCacheLines]layout.Addr

	// nodeWalk is scratch for replaying a verification's node walk
	// without allocating (sized to any realistic tree depth).
	nodeWalk []layout.Addr
}

// touchCtr records an access to the counter block at a.
func (s *SecureMemory) touchCtr(a layout.Addr) {
	line := (uint64(a) / layout.BlockSize) % ctrCacheLines
	tag := a + 1
	if s.mcache.ctr[line] == tag {
		s.stats.CtrCacheHits++
		return
	}
	s.stats.CtrCacheMisses++
	s.mcache.ctr[line] = tag
}

// touchNode records an access to the tree node storage block at a.
func (s *SecureMemory) touchNode(a layout.Addr) {
	line := (uint64(a) / layout.BlockSize) % nodeCacheLines
	tag := a + 1
	if s.mcache.node[line] == tag {
		s.stats.TreeNodeCacheHits++
		return
	}
	s.stats.TreeNodeCacheMiss++
	s.mcache.node[line] = tag
}

// touchTreeWalk replays the node walk a verification or update of the
// protected block at a performs, feeding each node through the cache
// model.
func (s *SecureMemory) touchTreeWalk(a layout.Addr) {
	if s.tree == nil {
		return
	}
	if s.mcache.nodeWalk == nil {
		s.mcache.nodeWalk = make([]layout.Addr, 0, s.tree.Levels()+1)
	}
	walk, ok := s.tree.AppendNodeAddrs(s.mcache.nodeWalk[:0], a)
	s.mcache.nodeWalk = walk[:0]
	if !ok {
		return
	}
	for _, n := range walk {
		s.touchNode(n)
	}
}
