package core

import (
	"bytes"
	"testing"

	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
)

func batchConfig() Config {
	return Config{
		DataBytes: 128 << 10, MACBits: 128, Key: testKey,
		Encryption: AISE, Integrity: BonsaiMT, SwapSlots: 8,
	}
}

// writeSpread writes the same deterministic pattern to both controllers.
func writeSpread(t *testing.T, sm *SecureMemory, seed byte) {
	t.Helper()
	for i := 0; i < 40; i++ {
		a := layout.Addr(i%20) * 0x1000 // repeated pages: coalescing fodder
		blk := pattern(seed + byte(i))
		if err := sm.WriteBlock(a, &blk, Meta{}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTreeBatchMatchesEager drives identical writes through an eager
// controller and a batched one (with and without the node cache); roots
// must agree at every End, and reads mid-batch must verify via the
// barrier.
func TestTreeBatchMatchesEager(t *testing.T) {
	for _, cacheBlocks := range []int{0, 256} {
		eager, err := New(batchConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg := batchConfig()
		cfg.TreeUpdateWorkers = 4
		cfg.TreeNodeCacheBlocks = cacheBlocks
		batched, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for round := byte(0); round < 3; round++ {
			writeSpread(t, eager, round)
			batched.BeginTreeBatch()
			writeSpread(t, batched, round)
			// A read mid-batch must see the deferred updates committed.
			var got mem.Block
			if err := batched.ReadBlock(0x1000, &got, Meta{}); err != nil {
				t.Fatalf("mid-batch read: %v", err)
			}
			if got != pattern(round+21) {
				t.Fatal("mid-batch read returned stale data")
			}
			if err := batched.EndTreeBatch(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(eager.Root(), batched.Root()) {
				t.Fatalf("cache=%d round=%d: batched root diverged from eager root", cacheBlocks, round)
			}
		}
		if err := batched.VerifyAll(); err != nil {
			t.Fatalf("cache=%d: VerifyAll after batching: %v", cacheBlocks, err)
		}
		st := batched.Stats()
		if st.TreeBatches == 0 || st.TreeNodesCoalesced == 0 {
			t.Fatalf("cache=%d: batching did not engage: %+v", cacheBlocks, st)
		}
		if cacheBlocks > 0 && st.TreeWBHits == 0 {
			t.Fatalf("node cache saw no hits: %+v", st)
		}
	}
}

// TestTreeBatchNested checks that nested windows commit only at the
// outermost End, and that AbortTreeBatch discards pending work.
func TestTreeBatchNested(t *testing.T) {
	cfg := batchConfig()
	cfg.TreeUpdateWorkers = 2
	sm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm.BeginTreeBatch()
	sm.BeginTreeBatch()
	blk := pattern(1)
	if err := sm.WriteBlock(0x2000, &blk, Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := sm.EndTreeBatch(); err != nil {
		t.Fatal(err)
	}
	if sm.Stats().TreeBatches != 0 {
		t.Fatal("inner End committed the batch")
	}
	if err := sm.EndTreeBatch(); err != nil {
		t.Fatal(err)
	}
	if sm.Stats().TreeBatches != 1 {
		t.Fatal("outer End did not commit the batch")
	}

	// Abort: pending updates are dropped, the next window starts clean.
	sm2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm2.BeginTreeBatch()
	if err := sm2.WriteBlock(0x2000, &blk, Meta{}); err != nil {
		t.Fatal(err)
	}
	sm2.AbortTreeBatch()
	if sm2.Stats().TreeBatches != 0 {
		t.Fatal("aborted batch committed")
	}
}

// TestTreeBatchHibernateMidWindow seals a checkpoint while a window is
// open with dirty cached nodes: the flush-before-seal invariant must make
// the image self-consistent, and resume must verify clean.
func TestTreeBatchHibernateMidWindow(t *testing.T) {
	cfg := batchConfig()
	cfg.TreeUpdateWorkers = 4
	cfg.TreeNodeCacheBlocks = 64
	sm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm.BeginTreeBatch()
	writeSpread(t, sm, 9)
	var img bytes.Buffer
	chip, err := sm.Hibernate(&img) // mid-window: barrier + flush inside
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.EndTreeBatch(); err != nil {
		t.Fatal(err)
	}
	resumeCfg := batchConfig() // eager, cacheless: must accept the image
	sm2, err := Resume(resumeCfg, chip, &img)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm2.VerifyAll(); err != nil {
		t.Fatalf("resumed image does not verify (flush-before-seal broken): %v", err)
	}
	var got mem.Block
	if err := sm2.ReadBlock(0x3000, &got, Meta{}); err != nil {
		t.Fatal(err)
	}
	if got != pattern(9+3+20) { // i=23 wrote page 3
		t.Fatal("resumed data mismatch")
	}
}

// TestTreeSerialRefMatches pins the frozen reference configuration to the
// batched engine's results end to end.
func TestTreeSerialRefMatches(t *testing.T) {
	refCfg := batchConfig()
	refCfg.TreeSerialRef = true
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := batchConfig()
	cfg.TreeUpdateWorkers = 4
	cfg.TreeNodeCacheBlocks = 128
	batched, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	writeSpread(t, ref, 5)
	batched.BeginTreeBatch()
	writeSpread(t, batched, 5)
	if err := batched.EndTreeBatch(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref.Root(), batched.Root()) {
		t.Fatal("serial reference and batched engine disagree on the root")
	}
	if err := ref.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeSerialRefRejectsCache(t *testing.T) {
	cfg := batchConfig()
	cfg.TreeSerialRef = true
	cfg.TreeNodeCacheBlocks = 16
	if _, err := New(cfg); err == nil {
		t.Fatal("TreeSerialRef + node cache accepted")
	}
}

// TestTreeBatchSwapMidWindow exercises the swap path's barrier: swap-out
// and swap-in inside an open window must see committed tree state.
func TestTreeBatchSwapMidWindow(t *testing.T) {
	cfg := batchConfig()
	cfg.TreeUpdateWorkers = 2
	cfg.TreeNodeCacheBlocks = 64
	sm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm.BeginTreeBatch()
	blk := pattern(0x77)
	if err := sm.WriteBlock(0x5000, &blk, Meta{}); err != nil {
		t.Fatal(err)
	}
	img, err := sm.SwapOut(0x5000, 3) // barrier inside
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.SwapIn(img, 0x5000, 3); err != nil {
		t.Fatal(err)
	}
	if err := sm.EndTreeBatch(); err != nil {
		t.Fatal(err)
	}
	var got mem.Block
	if err := sm.ReadBlock(0x5000, &got, Meta{}); err != nil {
		t.Fatal(err)
	}
	if got != blk {
		t.Fatal("swapped page lost its contents")
	}
	if err := sm.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}
