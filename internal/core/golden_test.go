package core

import (
	"encoding/hex"
	"testing"

	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
)

// TestGoldenControllerRoot drives a full AISE+BMT controller through a
// deterministic write sequence and pins the resulting on-chip tree root,
// captured before the crypto hot-path overhaul. This is the end-to-end
// freeze: seeds, pads, counter encoding, data MACs and every tree level all
// have to reproduce bit-identically for the root to match.
func TestGoldenControllerRoot(t *testing.T) {
	s, err := New(Config{
		DataBytes:  1 << 20,
		Key:        []byte("0123456789abcdef"),
		Encryption: AISE,
		Integrity:  BonsaiMT,
		MACBits:    128,
		SwapSlots:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		var blk mem.Block
		for j := range blk {
			blk[j] = byte(i*3 + j)
		}
		a := layout.Addr(i)*4096 + layout.Addr(i%16)*64
		if err := s.WriteBlock(a, &blk, Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	const want = "509a6f63d7dd378d477447fd333f318b"
	if got := hex.EncodeToString(s.Root()); got != want {
		t.Errorf("controller root = %s, want %s (END-TO-END FORMAT CHANGED)", got, want)
	}
	if err := s.VerifyAll(); err != nil {
		t.Errorf("VerifyAll after golden writes: %v", err)
	}
}
