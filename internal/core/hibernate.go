package core

import (
	"fmt"
	"io"
)

// ChipState is the trusted, non-volatile on-chip state that survives a
// power cycle: the Global Page Counter and the Merkle tree root. The secret
// key is supplied again through Config at resume (it lives in on-chip fuses
// in the paper's model, not in the hibernation image). Everything else —
// ciphertext, counters, MACs, tree nodes — travels in the untrusted memory
// image and is re-verified against Root on use.
type ChipState struct {
	GPC  [8]byte
	Root []byte
}

// Hibernate writes the untrusted memory image to w and returns the trusted
// chip state the caller must keep in (simulated) on-chip non-volatile
// storage. The controller remains usable afterwards.
//
// Flush-before-seal invariant: any deferred batched tree updates are
// committed and every dirty cached tree node is written back BEFORE the
// memory is serialized, so the image always matches the root it is sealed
// against. (Checkpointing goes through here, so snapshot seals inherit the
// invariant.)
func (s *SecureMemory) Hibernate(w io.Writer) (ChipState, error) {
	if err := s.treeBarrier(); err != nil {
		return ChipState{}, fmt.Errorf("core: hibernate: %w", err)
	}
	s.FlushTreeNodes()
	if err := s.mem.Serialize(w); err != nil {
		return ChipState{}, fmt.Errorf("core: hibernate: %w", err)
	}
	return ChipState{GPC: s.gpc.Save(), Root: s.Root()}, nil
}

// Resume reconstructs a controller from a hibernation image and the trusted
// chip state. cfg must match the hibernated controller's configuration (the
// same key, schemes, sizes); the memory image is untrusted, so any
// tampering with it while the system was off is detected on first use by
// verification against the restored root.
func Resume(cfg Config, chip ChipState, r io.Reader) (*SecureMemory, error) {
	cfg.GPCImage = nil // restored from chip state below
	s, err := newController(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.mem.Deserialize(r); err != nil {
		return nil, fmt.Errorf("core: resume: %w", err)
	}
	s.gpc.Restore(chip.GPC)
	if s.tree != nil {
		if err := s.tree.Restore(chip.Root); err != nil {
			return nil, fmt.Errorf("core: resume: %w", err)
		}
	}
	return s, nil
}
