package core

import (
	"bytes"
	"errors"
	"testing"

	"aisebmt/internal/mem"
)

func TestRotateKeyRoundTrip(t *testing.T) {
	for _, combo := range []struct {
		enc EncryptionScheme
		in  IntegrityScheme
	}{
		{AISE, BonsaiMT},
		{CtrGlobal64, MerkleTree},
		{DirectEncryption, NoIntegrity},
	} {
		sm := newSM(t, combo.enc, combo.in)
		want := pattern(0x5e)
		if err := sm.WriteBlock(0x2000, &want, Meta{}); err != nil {
			t.Fatal(err)
		}
		oldCT := sm.Memory().Snapshot(0x2000)

		if err := sm.RotateKey([]byte("fresh-secret-key")); err != nil {
			t.Fatalf("%v+%v: rotate: %v", combo.enc, combo.in, err)
		}
		var got mem.Block
		if err := sm.ReadBlock(0x2000, &got, Meta{}); err != nil {
			t.Fatalf("%v+%v: read after rotation: %v", combo.enc, combo.in, err)
		}
		if got != want {
			t.Errorf("%v+%v: data corrupted by rotation", combo.enc, combo.in)
		}
		// Ciphertext actually changed (new key ⇒ new pads/blocks).
		if combo.enc != NoEncryption && sm.Memory().Snapshot(0x2000) == oldCT {
			t.Errorf("%v: ciphertext unchanged after key rotation", combo.enc)
		}
		if sm.Stats().FullReencrypts == 0 {
			t.Error("rotation not recorded")
		}
	}
}

func TestRotateKeyLPIDContinuity(t *testing.T) {
	sm := newSM(t, AISE, BonsaiMT)
	b := pattern(1)
	if err := sm.WriteBlock(0x1000, &b, Meta{}); err != nil {
		t.Fatal(err)
	}
	before, err := sm.CounterBlockOf(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.RotateKey([]byte("fresh-secret-key")); err != nil {
		t.Fatal(err)
	}
	after, err := sm.CounterBlockOf(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if after.LPID <= before.LPID {
		t.Errorf("post-rotation LPID %d not beyond pre-rotation %d", after.LPID, before.LPID)
	}
}

func TestRotateKeyValidation(t *testing.T) {
	sm := newSM(t, AISE, BonsaiMT)
	if err := sm.RotateKey([]byte("short")); err == nil {
		t.Error("short key accepted")
	}
	smv := newSM(t, CtrVirt, NoIntegrity)
	if err := smv.RotateKey([]byte("fresh-secret-key")); !errors.Is(err, ErrUnsupported) {
		t.Errorf("CtrVirt rotation err = %v, want ErrUnsupported", err)
	}
}

func TestRotateKeyAbortsOnTamper(t *testing.T) {
	sm := newSM(t, AISE, BonsaiMT)
	b := pattern(3)
	if err := sm.WriteBlock(0x4000, &b, Meta{}); err != nil {
		t.Fatal(err)
	}
	sm.Memory().TamperBytes(0x4004, []byte{0xdd})
	err := sm.RotateKey([]byte("fresh-secret-key"))
	if !errors.Is(err, ErrTampered) {
		t.Errorf("rotation over tampered memory: %v, want ErrTampered", err)
	}
}

func TestRotateKeyOldKeyDead(t *testing.T) {
	// After rotation, ciphertexts must not decrypt under the old key: build
	// a parallel controller with the old key over the rotated memory image
	// and confirm the plaintext does not come back.
	sm := newSM(t, AISE, NoIntegrity)
	want := pattern(9)
	if err := sm.WriteBlock(0x2000, &want, Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := sm.RotateKey([]byte("fresh-secret-key")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	chip, err := sm.Hibernate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	oldCfg := Config{DataBytes: 256 << 10, MACBits: 128, Key: testKey,
		Encryption: AISE, Integrity: NoIntegrity, SwapSlots: 16}
	stale, err := Resume(oldCfg, chip, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var got mem.Block
	if err := stale.ReadBlock(0x2000, &got, Meta{}); err != nil {
		t.Fatal(err)
	}
	if got == want {
		t.Error("old key still decrypts rotated memory")
	}
}
