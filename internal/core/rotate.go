package core

import (
	"fmt"

	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
)

// RotateKey re-encrypts the entire data region under a new processor key,
// the operation a global-counter wrap forces (§4.1) and a sound hygiene
// operation for any long-lived system. All plaintext passes through the
// chip: the old key decrypts and verifies every block, the new key
// re-encrypts it, and all integrity metadata is rebuilt. CtrVirt cannot be
// rotated (the controller does not retain per-block virtual-address
// metadata to reconstruct seeds).
func (s *SecureMemory) RotateKey(newKey []byte) error {
	if len(newKey) != 16 {
		return fmt.Errorf("core: new key must be 16 bytes, got %d", len(newKey))
	}
	if s.cfg.Encryption == CtrVirt {
		return fmt.Errorf("%w: CtrVirt seeds need per-access virtual addresses; bulk re-encryption is impossible", ErrUnsupported)
	}
	// Read the whole region through the verified path.
	plain := make([]byte, s.cfg.DataBytes)
	if err := s.Read(0, plain, Meta{}); err != nil {
		return fmt.Errorf("core: key rotation aborted, pre-rotation verification failed: %w", err)
	}
	// Build the successor controller: same configuration, new key, and the
	// GPC carried over so LPIDs never repeat across the rotation.
	cfg := s.cfg
	cfg.Key = append([]byte(nil), newKey...)
	img := s.gpc.Save()
	cfg.GPCImage = &img
	fresh, err := New(cfg)
	if err != nil {
		return err
	}
	var blk mem.Block
	for a := layout.Addr(0); a < layout.Addr(s.cfg.DataBytes); a += layout.BlockSize {
		copy(blk[:], plain[a:int(a)+layout.BlockSize])
		if blk == (mem.Block{}) {
			continue // vacant/zero blocks need no write
		}
		if err := fresh.WriteBlock(a, &blk, Meta{}); err != nil {
			return err
		}
	}
	// Adopt the successor's state; accumulate prior work counters.
	stats := s.stats
	stats.FullReencrypts++
	*s = *fresh
	s.stats.BlockReads += stats.BlockReads
	s.stats.BlockWrites += stats.BlockWrites
	s.stats.PageReencrypts += stats.PageReencrypts
	s.stats.FullReencrypts += stats.FullReencrypts
	s.stats.SwapOuts += stats.SwapOuts
	s.stats.SwapIns += stats.SwapIns
	return nil
}
