package core

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestSectionReaderWriter(t *testing.T) {
	sm := newSM(t, AISE, BonsaiMT)
	sec, err := sm.Section(0x2000, 256, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if sec.Size() != 256 {
		t.Errorf("Size = %d", sec.Size())
	}
	msg := []byte("io adapter payload")
	if n, err := sec.WriteAt(msg, 10); err != nil || n != len(msg) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	if n, err := sec.ReadAt(got, 10); err != nil || n != len(msg) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("round trip %q", got)
	}
	// io.SectionReader composes over it.
	sr := io.NewSectionReader(sec, 10, int64(len(msg)))
	all, err := io.ReadAll(sr)
	if err != nil || !bytes.Equal(all, msg) {
		t.Errorf("SectionReader: %q, %v", all, err)
	}
}

func TestSectionEOFSemantics(t *testing.T) {
	sm := newSM(t, AISE, BonsaiMT)
	sec, _ := sm.Section(0, 100, Meta{})
	buf := make([]byte, 64)
	n, err := sec.ReadAt(buf, 80)
	if n != 20 || err != io.EOF {
		t.Errorf("tail ReadAt = %d, %v; want 20, EOF", n, err)
	}
	if _, err := sec.ReadAt(buf, 100); err != io.EOF {
		t.Errorf("past-end ReadAt err = %v", err)
	}
	if _, err := sec.ReadAt(buf, -1); err == nil {
		t.Error("negative offset accepted")
	}
	n, err = sec.WriteAt(buf, 90)
	if n != 10 || err != io.ErrShortWrite {
		t.Errorf("tail WriteAt = %d, %v; want 10, ErrShortWrite", n, err)
	}
	if _, err := sec.WriteAt(buf, 200); err != io.ErrShortWrite {
		t.Errorf("past-end WriteAt err = %v", err)
	}
}

func TestSectionBounds(t *testing.T) {
	sm := newSM(t, AISE, BonsaiMT)
	if _, err := sm.Section(0, int64(sm.DataBytes())+1, Meta{}); err == nil {
		t.Error("oversized section accepted")
	}
	if _, err := sm.Section(0, -1, Meta{}); err == nil {
		t.Error("negative size accepted")
	}
}

func TestSectionSurfacesTampering(t *testing.T) {
	sm := newSM(t, AISE, BonsaiMT)
	sec, _ := sm.Section(0x2000, 128, Meta{})
	if _, err := sec.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	sm.Memory().TamperBytes(0x2001, []byte{0xff})
	buf := make([]byte, 8)
	if _, err := sec.ReadAt(buf, 0); !errors.Is(err, ErrTampered) {
		t.Errorf("tampered section read: %v", err)
	}
}
