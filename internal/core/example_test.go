package core_test

import (
	"errors"
	"fmt"
	"log"

	"aisebmt/internal/core"
	"aisebmt/internal/mem"
)

// Example demonstrates the basic protect-everything workflow: writes
// encrypt and MAC on the way out, reads verify and decrypt on the way in.
func Example() {
	sm, err := core.New(core.Config{
		DataBytes:  64 << 10,
		Key:        []byte("0123456789abcdef"),
		Encryption: core.AISE,
		Integrity:  core.BonsaiMT,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sm.Write(0x1000, []byte("hello"), core.Meta{}); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 5)
	if err := sm.Read(0x1000, buf, core.Meta{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", buf)
	// Output: hello
}

// ExampleSecureMemory_ReadBlock shows tamper detection: a single flipped
// bit in off-chip memory makes the read refuse with ErrTampered.
func ExampleSecureMemory_ReadBlock() {
	sm, _ := core.New(core.Config{
		DataBytes:  64 << 10,
		Key:        []byte("0123456789abcdef"),
		Encryption: core.AISE,
		Integrity:  core.BonsaiMT,
	})
	var blk mem.Block
	copy(blk[:], "important")
	sm.WriteBlock(0x2000, &blk, core.Meta{})

	sm.Memory().TamperBytes(0x2003, []byte{0xff}) // the attacker strikes

	var out mem.Block
	err := sm.ReadBlock(0x2000, &out, core.Meta{})
	fmt.Println(errors.Is(err, core.ErrTampered))
	// Output: true
}

// ExampleSecureMemory_SwapOut shows the §5.1 swap path: a page leaves for
// disk as a relocatable image and returns into a different frame, verified
// against the Page Root Directory — with no re-encryption.
func ExampleSecureMemory_SwapOut() {
	sm, _ := core.New(core.Config{
		DataBytes:  64 << 10,
		Key:        []byte("0123456789abcdef"),
		Encryption: core.AISE,
		Integrity:  core.BonsaiMT,
		SwapSlots:  4,
	})
	sm.Write(0x3000, []byte("movable"), core.Meta{})

	img, _ := sm.SwapOut(0x3000, 0) // to disk, slot 0
	_ = sm.SwapIn(img, 0x8000, 0)   // back into a different frame

	buf := make([]byte, 7)
	sm.Read(0x8000, buf, core.Meta{})
	fmt.Printf("%s\n", buf)
	// Output: movable
}
