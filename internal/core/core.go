// Package core is the paper's contribution as a library: a functional
// secure memory controller that combines counter-mode memory encryption
// (with a configurable seed scheme, including AISE) and memory integrity
// verification (per-block MACs, a standard Merkle tree, or Bonsai Merkle
// Trees with extended swap protection) over an untrusted physical memory.
//
// The controller sits at the processor's chip boundary, exactly where the
// paper draws the trust line: plaintext exists only inside calls to
// ReadBlock/WriteBlock (the L2 miss/writeback path), while the mem.Memory
// behind it holds only ciphertext and tamper-evident metadata. Swap-out
// produces relocatable, attacker-visible page images; swap-in verifies them
// through the Page Root Directory before their contents can reach the
// processor.
//
// # Concurrency
//
// SecureMemory is NOT safe for concurrent use. It models one memory
// controller pipeline: counters, MACs and the Merkle tree are mutated
// non-atomically on every access, so callers must serialize all calls on a
// given instance (including read-only-looking ones — ReadBlock bumps
// statistics and walks shared tree state). Concurrent serving is a
// service-layer concern: internal/shard provides a page-sharded pool of
// independent, mutex-guarded controllers behind per-shard worker queues,
// and internal/server puts a network front-end over it.
package core

import (
	"errors"
	"fmt"

	"aisebmt/internal/counter"
	"aisebmt/internal/encrypt"
	"aisebmt/internal/integrity"
	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
)

// EncryptionScheme selects how blocks are encrypted.
type EncryptionScheme int

// Encryption schemes, in the order the paper discusses them.
const (
	// NoEncryption stores plaintext (the unprotected baseline).
	NoEncryption EncryptionScheme = iota
	// DirectEncryption applies AES directly to each chunk (early schemes).
	DirectEncryption
	// CtrGlobal32 and CtrGlobal64 use a global counter of the given width.
	CtrGlobal32
	CtrGlobal64
	// CtrPhys seeds with physical address plus a per-block counter.
	CtrPhys
	// CtrVirt seeds with virtual address, PID and a per-block counter.
	CtrVirt
	// AISE seeds with logical page identifiers (the paper's proposal).
	AISE
)

func (e EncryptionScheme) String() string {
	switch e {
	case NoEncryption:
		return "none"
	case DirectEncryption:
		return "direct"
	case CtrGlobal32:
		return "global32"
	case CtrGlobal64:
		return "global64"
	case CtrPhys:
		return "ctr-phys"
	case CtrVirt:
		return "ctr-virt"
	case AISE:
		return "AISE"
	default:
		return fmt.Sprintf("EncryptionScheme(%d)", int(e))
	}
}

// IntegrityScheme selects how fetched blocks are verified.
type IntegrityScheme int

// Integrity schemes.
const (
	// NoIntegrity performs no verification.
	NoIntegrity IntegrityScheme = iota
	// MACOnly stores one address-bound MAC per block (no replay detection).
	MACOnly
	// MerkleTree builds the standard tree over data (and counter) memory.
	MerkleTree
	// BonsaiMT uses per-block counter-bound data MACs plus a Merkle tree
	// over the counter region only (the paper's proposal).
	BonsaiMT
)

func (i IntegrityScheme) String() string {
	switch i {
	case NoIntegrity:
		return "none"
	case MACOnly:
		return "mac-only"
	case MerkleTree:
		return "MT"
	case BonsaiMT:
		return "BMT"
	default:
		return fmt.Sprintf("IntegrityScheme(%d)", int(i))
	}
}

// Config describes a secure memory controller instance.
type Config struct {
	// DataBytes is the size of the protected data region (page aligned).
	DataBytes uint64
	// MACBits is the MAC width: 32, 64, 128 (default) or 256.
	MACBits int
	// Key is the processor's 16-byte secret key.
	Key []byte
	// Encryption and Integrity select the schemes.
	Encryption EncryptionScheme
	Integrity  IntegrityScheme
	// SwapSlots sizes the Page Root Directory (0 disables swap support).
	SwapSlots int
	// MACCoverage is the number of consecutive data blocks one BMT MAC
	// covers (the §7.4 storage optimization). 0 or 1 keeps per-block MACs;
	// larger powers of two shrink MAC storage proportionally at the price
	// of reading the whole group on every verification and update.
	MACCoverage int
	// GPCImage, when non-nil, restores the Global Page Counter from a prior
	// Save — the non-volatile register surviving a reboot.
	GPCImage *[8]byte
	// TreeUpdateWorkers bounds the hash fan-out of the batched Merkle tree
	// update engine per level (see BeginTreeBatch). 0 or 1 hashes on the
	// calling goroutine; coalescing happens either way.
	TreeUpdateWorkers int
	// TreeNodeCacheBlocks sizes the write-back cache of tree node storage
	// blocks (0 disables). Dirty nodes reach memory on eviction or at the
	// flush before any hibernate/checkpoint seal.
	TreeNodeCacheBlocks int
	// TreeSerialRef routes every tree update through the frozen serial
	// reference walk (integrity.Tree.UpdateBlockRef) instead of the batched
	// engine — the benchmark "before" configuration. Incompatible with
	// TreeNodeCacheBlocks.
	TreeSerialRef bool
}

// Stats counts the controller's work for experiments and examples.
type Stats struct {
	BlockReads     uint64
	BlockWrites    uint64
	PadGens        uint64
	MACOps         uint64
	TreeUpdates    uint64
	TreeVerifies   uint64
	PageReencrypts uint64 // minor-counter overflow re-encryptions
	FullReencrypts uint64 // global-counter wrap re-encryptions
	SwapOuts       uint64
	SwapIns        uint64

	// Metadata-cache model counters (see metacache.go): how often the
	// counter block / tree node a verification needs would have been
	// resident in a small on-chip cache. The observability layer surfaces
	// these as hit rates.
	CtrCacheHits      uint64
	CtrCacheMisses    uint64
	TreeNodeCacheHits uint64
	TreeNodeCacheMiss uint64

	// Batched tree-update engine counters (integrity.UpdateStats): what the
	// level-ordered pass did and saved, and the write-back node cache's
	// real (not modeled) traffic. TreeWB* are zero with the cache disabled.
	TreeBatches        uint64
	TreeBatchedLeaves  uint64
	TreeNodesHashed    uint64
	TreeNodesCoalesced uint64
	TreeWBHits         uint64
	TreeWBMisses       uint64
	TreeWBWritebacks   uint64
	TreeWBFlushes      uint64
}

// String renders the counters compactly for logs and examples.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d pads=%d MAC ops=%d tree upd/ver=%d/%d reenc page/full=%d/%d swap out/in=%d/%d",
		s.BlockReads, s.BlockWrites, s.PadGens, s.MACOps, s.TreeUpdates, s.TreeVerifies,
		s.PageReencrypts, s.FullReencrypts, s.SwapOuts, s.SwapIns)
}

// Meta carries the per-access context some seed schemes need, plus the
// wire-level trace identifier. Trace is opaque to the controller — it
// rides through so the service layers above can attribute per-stage
// spans to a request without allocating a context.
type Meta struct {
	VirtAddr uint64
	PID      uint32
	Trace    uint64
}

// SecureMemory is a functional secure memory controller. Instances are
// not safe for concurrent use; see the package comment's concurrency
// contract (internal/shard provides the concurrent front-end).
type SecureMemory struct {
	cfg Config
	mem *mem.Memory

	dataRegion mem.Region
	ctrRegion  mem.Region
	macRegion  mem.Region
	dirRegion  mem.Region

	ctrMode  *encrypt.CounterMode
	direct   *encrypt.Direct
	split    *counter.SplitStore
	global   *counter.GlobalStore
	perBlock *counter.PerBlockStore
	gpc      *counter.GPC

	tree      *integrity.Tree
	dataMACs  *integrity.DataMACStore
	groupMACs *integrity.GroupMACStore
	macOnly   *integrity.MACOnlyStore
	rootDir   *integrity.PageRootDirectory

	mcache metaCache
	stats  Stats

	// Deferred tree updates of the open batch window (see treebatch.go).
	treeDepth int
	treeDirty []layout.Addr
}

// Errors returned by the controller.
var (
	// ErrTampered wraps integrity violations (errors.Is matches it).
	ErrTampered = errors.New("core: integrity verification failed")
	// ErrUnsupported reports an operation the configured scheme cannot
	// perform (the paper's qualitative incompatibilities).
	ErrUnsupported = errors.New("core: operation unsupported by configured scheme")
)

// newController performs the scheme-independent setup shared by New and
// Resume: validation, region placement, engine construction. It leaves the
// data region uninitialized and the tree unbuilt.
func newController(cfg Config) (*SecureMemory, error) {
	if cfg.MACBits == 0 {
		cfg.MACBits = 128
	}
	g, err := layout.Geometry(cfg.MACBits)
	if err != nil {
		return nil, err
	}
	if cfg.DataBytes == 0 || cfg.DataBytes%layout.PageSize != 0 {
		return nil, fmt.Errorf("core: DataBytes %d must be a positive multiple of the page size", cfg.DataBytes)
	}
	if len(cfg.Key) != 16 {
		return nil, fmt.Errorf("core: key must be 16 bytes, got %d", len(cfg.Key))
	}
	if cfg.TreeSerialRef && cfg.TreeNodeCacheBlocks > 0 {
		return nil, fmt.Errorf("core: TreeSerialRef bypasses the node cache; TreeNodeCacheBlocks must be 0")
	}
	s := &SecureMemory{cfg: cfg}
	dataBlocks := cfg.DataBytes / layout.BlockSize

	// Region placement: data, counters, MACs, directory, tree storage.
	next := layout.Addr(cfg.DataBytes)
	s.dataRegion = mem.Region{Name: "data", Base: 0, Size: cfg.DataBytes}
	alloc := func(name string, bytes uint64) mem.Region {
		bytes = (bytes + layout.BlockSize - 1) &^ (layout.BlockSize - 1)
		r := mem.Region{Name: name, Base: next, Size: bytes}
		next += layout.Addr(bytes)
		return r
	}

	switch cfg.Encryption {
	case AISE:
		s.ctrRegion = alloc("counters", cfg.DataBytes/layout.BlocksPerPage)
	case CtrVirt, CtrPhys:
		s.ctrRegion = alloc("counters", dataBlocks*8)
	case CtrGlobal32:
		s.ctrRegion = alloc("counters", dataBlocks*4)
	case CtrGlobal64:
		s.ctrRegion = alloc("counters", dataBlocks*8)
	case NoEncryption, DirectEncryption:
		// no counter storage
	default:
		return nil, fmt.Errorf("core: unknown encryption scheme %v", cfg.Encryption)
	}

	if cfg.MACCoverage == 0 {
		cfg.MACCoverage = 1
	}
	if cfg.MACCoverage > 1 && cfg.Integrity != BonsaiMT {
		return nil, fmt.Errorf("%w: MAC coverage applies to Bonsai data MACs only", ErrUnsupported)
	}
	switch cfg.Integrity {
	case BonsaiMT, MACOnly:
		s.macRegion = alloc("datamacs", dataBlocks*uint64(g.MACBytes)/uint64(cfg.MACCoverage))
	case MerkleTree, NoIntegrity:
		// MT level-0 MACs live inside the tree storage region.
	default:
		return nil, fmt.Errorf("core: unknown integrity scheme %v", cfg.Integrity)
	}

	if cfg.SwapSlots > 0 {
		s.dirRegion = alloc("rootdir", uint64(cfg.SwapSlots*g.MACBytes))
	}

	// Tree storage is placed last, sized from its protected regions.
	var treeRegions []mem.Region
	switch cfg.Integrity {
	case MerkleTree:
		treeRegions = append(treeRegions, s.dataRegion)
		if s.ctrRegion.Size > 0 {
			treeRegions = append(treeRegions, s.ctrRegion)
		}
		if s.dirRegion.Size > 0 {
			treeRegions = append(treeRegions, s.dirRegion)
		}
	case BonsaiMT:
		if cfg.Encryption != AISE {
			return nil, fmt.Errorf("%w: Bonsai Merkle Trees bind data MACs to per-block counters and require AISE encryption (got %v)", ErrUnsupported, cfg.Encryption)
		}
		treeRegions = append(treeRegions, s.ctrRegion)
		if s.dirRegion.Size > 0 {
			treeRegions = append(treeRegions, s.dirRegion)
		}
	}
	var treeBase layout.Addr
	var treeBytes uint64
	if len(treeRegions) > 0 {
		var leaves uint64
		for _, r := range treeRegions {
			leaves += r.Size / layout.BlockSize
		}
		treeBytes, err = integrity.TreeStorageBytes(leaves, cfg.MACBits)
		if err != nil {
			return nil, err
		}
		treeBase = next
		next += layout.Addr(treeBytes)
	}

	s.mem = mem.New(uint64(next))
	s.mem.AddRegion(s.dataRegion)
	for _, r := range []mem.Region{s.ctrRegion, s.macRegion, s.dirRegion} {
		if r.Size > 0 {
			s.mem.AddRegion(r)
		}
	}
	if treeBytes > 0 {
		s.mem.AddRegion(mem.Region{Name: "tree", Base: treeBase, Size: treeBytes})
	}

	// Encryption engines.
	s.gpc = counter.NewGPC()
	if cfg.GPCImage != nil {
		s.gpc.Restore(*cfg.GPCImage)
	}
	regs := layout.Regions{CtrBase: s.ctrRegion.Base, CtrBytes: s.ctrRegion.Size}
	switch cfg.Encryption {
	case AISE:
		s.split = counter.NewSplitStore(s.mem, regs, s.gpc)
		s.ctrMode, err = encrypt.NewCounterMode(cfg.Key, encrypt.AISESeed{})
	case CtrPhys:
		s.perBlock, err = counter.NewPerBlockStore(s.mem, s.ctrRegion.Base, 64)
		if err == nil {
			s.ctrMode, err = encrypt.NewCounterMode(cfg.Key, encrypt.PhysSeed{})
		}
	case CtrVirt:
		s.perBlock, err = counter.NewPerBlockStore(s.mem, s.ctrRegion.Base, 64)
		if err == nil {
			s.ctrMode, err = encrypt.NewCounterMode(cfg.Key, encrypt.VirtSeed{})
		}
	case CtrGlobal32:
		s.global, err = counter.NewGlobalStore(s.mem, s.ctrRegion.Base, 32)
		if err == nil {
			s.ctrMode, err = encrypt.NewCounterMode(cfg.Key, encrypt.GlobalSeed{Bits: 32})
		}
	case CtrGlobal64:
		s.global, err = counter.NewGlobalStore(s.mem, s.ctrRegion.Base, 64)
		if err == nil {
			s.ctrMode, err = encrypt.NewCounterMode(cfg.Key, encrypt.GlobalSeed{Bits: 64})
		}
	case DirectEncryption:
		s.direct, err = encrypt.NewDirect(cfg.Key)
	}
	if err != nil {
		return nil, err
	}

	// Integrity engines.
	switch cfg.Integrity {
	case MACOnly:
		s.macOnly, err = integrity.NewMACOnlyStore(s.mem, cfg.Key, cfg.MACBits, s.macRegion.Base, 0)
	case BonsaiMT:
		if cfg.MACCoverage > 1 {
			s.groupMACs, err = integrity.NewGroupMACStore(s.mem, cfg.Key, cfg.MACBits, s.macRegion.Base, 0, cfg.MACCoverage)
		} else {
			s.dataMACs, err = integrity.NewDataMACStore(s.mem, cfg.Key, cfg.MACBits, s.macRegion.Base, 0)
		}
	}
	if err != nil {
		return nil, err
	}
	if len(treeRegions) > 0 {
		s.tree, err = integrity.NewTree(s.mem, cfg.Key, cfg.MACBits, treeRegions, treeBase)
		if err != nil {
			return nil, err
		}
		if cfg.TreeNodeCacheBlocks > 0 {
			s.tree.EnableNodeCache(cfg.TreeNodeCacheBlocks)
		}
	}
	if cfg.SwapSlots > 0 {
		s.rootDir, err = integrity.NewPageRootDirectory(s.mem, s.dirRegion.Base, cfg.MACBits, cfg.SwapSlots)
		if err != nil {
			return nil, err
		}
	}

	return s, nil
}

// New builds a secure memory controller. The physical memory is sized
// automatically: data region first, then counter storage, per-block MACs,
// the page root directory, and Merkle tree nodes. Boot-time initialization
// (§3 assumes the processor constructs the initial state) writes every
// data block as encrypted zeros under its initial counters with MACs to
// match (AISE pages initialize lazily), and captures the Merkle tree root
// on chip.
func New(cfg Config) (*SecureMemory, error) {
	s, err := newController(cfg)
	if err != nil {
		return nil, err
	}
	s.initializeDataRegion()
	if s.tree != nil {
		s.tree.Build()
	}
	return s, nil
}

// initializeDataRegion stores the encrypted image of an all-zero data
// region plus matching MACs, so that the first read of any block verifies
// and decrypts to zeros. Under CtrVirt, seeds fold in the virtual address,
// which is unknown at boot; reads of never-written blocks under that scheme
// return unspecified plaintext (real systems zero such pages through the
// processor at allocation).
func (s *SecureMemory) initializeDataRegion() {
	if s.cfg.Encryption == AISE {
		// AISE pages start vacant (LPID 0): reads return verified zeros and
		// the first write to a page initializes it. Nothing to precompute.
		return
	}
	var zero mem.Block
	for page := layout.Addr(0); page < layout.Addr(s.cfg.DataBytes); page += layout.PageSize {
		for i := 0; i < layout.BlocksPerPage; i++ {
			a := page + layout.Addr(i*layout.BlockSize)
			var ct mem.Block
			switch s.cfg.Encryption {
			case NoEncryption:
				ct = zero
			case DirectEncryption:
				s.direct.EncryptBlock(&ct, &zero)
			default: // global and per-block counter schemes start at counter 0
				s.ctrMode.EncryptBlock(&ct, &zero, s.seedFor(a, Meta{}, 0, 0))
			}
			s.mem.WriteBlock(a, &ct)
			if s.macOnly != nil {
				s.macOnly.Update(a, &ct)
			}
		}
	}
	// Initialization is setup, not workload traffic.
	s.mem.Reads = 0
	s.mem.Writes = 0
}

// counterOf returns the split counter block covering a data address
// (zero-valued for non-AISE schemes).
func (s *SecureMemory) counterOf(a layout.Addr) counter.Block {
	if s.split == nil {
		return counter.Block{}
	}
	return s.split.Load(a)
}

// Config returns the controller's configuration.
func (s *SecureMemory) Config() Config { return s.cfg }

// Memory exposes the untrusted physical memory (the attack surface).
func (s *SecureMemory) Memory() *mem.Memory { return s.mem }

// Stats returns a copy of the controller's counters.
func (s *SecureMemory) Stats() Stats {
	st := s.stats
	if s.ctrMode != nil {
		st.PadGens = s.ctrMode.Pads()
	}
	if s.tree != nil {
		st.MACOps += s.tree.MACOps
		us := s.tree.UpdateStats()
		st.TreeBatches = us.Batches
		st.TreeBatchedLeaves = us.BatchedLeaves
		st.TreeNodesHashed = us.NodesHashed
		st.TreeNodesCoalesced = us.NodesCoalesced
		st.TreeWBHits = us.CacheHits
		st.TreeWBMisses = us.CacheMisses
		st.TreeWBWritebacks = us.Writebacks
		st.TreeWBFlushes = us.Flushes
	}
	if s.dataMACs != nil {
		st.MACOps += s.dataMACs.MACOps
	}
	if s.macOnly != nil {
		st.MACOps += s.macOnly.MACOps
	}
	return st
}

// AgeGlobalCounter advances the global counter toward its wrap point,
// simulating long uptime for the schemes that have one (§4.1's
// entire-memory re-encryption trigger). It is a no-op for other schemes.
func (s *SecureMemory) AgeGlobalCounter(to uint64) {
	if s.global != nil {
		s.global.Jump(to)
	}
}

// GPCImage returns the Global Page Counter's non-volatile image, for
// carrying across a simulated reboot.
func (s *SecureMemory) GPCImage() [8]byte { return s.gpc.Save() }

// DataBytes returns the size of the protected data region.
func (s *SecureMemory) DataBytes() uint64 { return s.cfg.DataBytes }

// seedFor builds the seed input for a block under the configured scheme.
func (s *SecureMemory) seedFor(a layout.Addr, meta Meta, ctr uint64, lpid uint64) encrypt.SeedInput {
	return encrypt.SeedInput{
		PhysAddr: a,
		VirtAddr: meta.VirtAddr,
		PID:      meta.PID,
		LPID:     lpid,
		Counter:  ctr,
	}
}

func (s *SecureMemory) checkData(a layout.Addr) error {
	if !s.dataRegion.Contains(a) {
		return fmt.Errorf("core: %#x outside data region", a)
	}
	return nil
}

// WriteBlock is the writeback path: the processor evicts a dirty plaintext
// block, the controller encrypts it under a fresh counter, stores it, and
// updates integrity metadata. For CtrVirt the caller must supply the
// virtual address and PID in meta.
func (s *SecureMemory) WriteBlock(a layout.Addr, plain *mem.Block, meta Meta) error {
	a = a.BlockAddr()
	if err := s.checkData(a); err != nil {
		return err
	}
	if s.ctrRegion.Size > 0 {
		s.touchCtr(s.ctrSlotBlock(a))
	}
	var ct mem.Block
	var lpid uint64
	var minor uint8

	switch s.cfg.Encryption {
	case NoEncryption:
		ct = *plain
	case DirectEncryption:
		s.direct.EncryptBlock(&ct, plain)
	case AISE:
		if s.split.Load(a).LPID == 0 {
			if err := s.initializePage(a.PageAddr()); err != nil {
				return err
			}
		}
		old, cb, overflowed := s.split.Bump(a)
		if overflowed {
			if err := s.reencryptPage(a.PageAddr(), old, cb); err != nil {
				return err
			}
		}
		lpid, minor = cb.LPID, cb.Minor[a.BlockInPage()]
		s.ctrMode.EncryptBlock(&ct, plain, s.seedFor(a, meta, uint64(minor), lpid))
		if s.tree != nil {
			if err := s.treeUpdate(s.split.BlockAddr(a)); err != nil {
				return err
			}
			s.stats.TreeUpdates++
			s.touchTreeWalk(s.split.BlockAddr(a))
		}
	case CtrPhys, CtrVirt:
		v, _ := s.perBlock.Increment(a)
		s.ctrMode.EncryptBlock(&ct, plain, s.seedFor(a, meta, v, 0))
	case CtrGlobal32, CtrGlobal64:
		v, wrapped := s.global.Next()
		if wrapped {
			if err := s.reencryptAllGlobal(); err != nil {
				return err
			}
			v, _ = s.global.Next()
		}
		s.global.SetStored(a, v)
		s.ctrMode.EncryptBlock(&ct, plain, s.seedFor(a, meta, v, 0))
	}

	s.mem.WriteBlock(a, &ct)
	s.stats.BlockWrites++

	switch s.cfg.Integrity {
	case MACOnly:
		s.macOnly.Update(a, &ct)
	case BonsaiMT:
		if s.groupMACs != nil {
			s.groupMACs.Update(a, s.split.Load(a))
		} else {
			s.dataMACs.Update(a, &ct, lpid, minor)
		}
	case MerkleTree:
		if err := s.treeUpdate(a); err != nil {
			return err
		}
		s.stats.TreeUpdates++
		s.touchTreeWalk(a)
		// Counter storage written by the encryption step is also covered.
		// (The AISE branch above already refreshed its counter block.)
		if s.ctrRegion.Size > 0 && s.cfg.Encryption != AISE {
			if err := s.treeUpdate(s.ctrSlotBlock(a)); err != nil {
				return err
			}
			s.stats.TreeUpdates++
			s.touchTreeWalk(s.ctrSlotBlock(a))
		}
	}
	return nil
}

// ctrSlotBlock returns the counter-region block holding a data block's
// counter metadata under the configured scheme.
func (s *SecureMemory) ctrSlotBlock(a layout.Addr) layout.Addr {
	switch s.cfg.Encryption {
	case AISE:
		return s.split.BlockAddr(a)
	case CtrGlobal32:
		blk := uint64(a) / layout.BlockSize
		return (s.ctrRegion.Base + layout.Addr(blk*4)).BlockAddr()
	case CtrGlobal64, CtrPhys, CtrVirt:
		blk := uint64(a) / layout.BlockSize
		return (s.ctrRegion.Base + layout.Addr(blk*8)).BlockAddr()
	}
	return 0
}

// ReadBlock is the fetch path: the controller fetches ciphertext, verifies
// integrity according to the configured scheme, decrypts, and hands the
// plaintext to the processor. Integrity violations are reported wrapping
// ErrTampered and leave dst zeroed.
func (s *SecureMemory) ReadBlock(a layout.Addr, dst *mem.Block, meta Meta) error {
	a = a.BlockAddr()
	if err := s.checkData(a); err != nil {
		return err
	}
	// Verification below reads tree state: commit any updates the open
	// batch window has deferred (no-op outside a window).
	if err := s.treeBarrier(); err != nil {
		return err
	}
	var ct mem.Block
	s.mem.ReadBlock(a, &ct)
	s.stats.BlockReads++
	if s.ctrRegion.Size > 0 {
		s.touchCtr(s.ctrSlotBlock(a))
	}

	var lpid uint64
	var minor uint8
	if s.split != nil {
		cb := s.split.Load(a)
		lpid, minor = cb.LPID, cb.Minor[a.BlockInPage()]
		if lpid == 0 {
			// Vacant page: LPID 0 is the tamper-evident free state. Verify
			// the claim through the tree when one covers the counters, then
			// hand the processor zeros.
			if s.tree != nil && s.tree.Covers(s.split.BlockAddr(a)) {
				s.stats.TreeVerifies++
				s.touchTreeWalk(s.split.BlockAddr(a))
				if err := s.tree.VerifyBlock(s.split.BlockAddr(a)); err != nil {
					*dst = mem.Block{}
					return fmt.Errorf("%w: counter %v", ErrTampered, err)
				}
			}
			*dst = mem.Block{}
			return nil
		}
	}

	switch s.cfg.Integrity {
	case MACOnly:
		if err := s.macOnly.Verify(a, &ct); err != nil {
			*dst = mem.Block{}
			return fmt.Errorf("%w: %v", ErrTampered, err)
		}
	case MerkleTree:
		s.stats.TreeVerifies++
		s.touchTreeWalk(a)
		if err := s.tree.VerifyBlock(a); err != nil {
			*dst = mem.Block{}
			return fmt.Errorf("%w: %v", ErrTampered, err)
		}
		// The counter fetched to decrypt is a memory read too; it is
		// covered by the tree and verified with the data block.
		if s.ctrRegion.Size > 0 {
			if err := s.tree.VerifyBlock(s.ctrSlotBlock(a)); err != nil {
				*dst = mem.Block{}
				return fmt.Errorf("%w: counter %v", ErrTampered, err)
			}
		}
	case BonsaiMT:
		// Verify the counter block through the Bonsai tree, then the data
		// MAC against the guaranteed-fresh counter (§5.2).
		s.stats.TreeVerifies++
		s.touchTreeWalk(s.split.BlockAddr(a))
		if err := s.tree.VerifyBlock(s.split.BlockAddr(a)); err != nil {
			*dst = mem.Block{}
			return fmt.Errorf("%w: counter %v", ErrTampered, err)
		}
		var verr error
		if s.groupMACs != nil {
			verr = s.groupMACs.Verify(a, s.split.Load(a))
		} else {
			verr = s.dataMACs.Verify(a, &ct, lpid, minor)
		}
		if verr != nil {
			*dst = mem.Block{}
			return fmt.Errorf("%w: %v", ErrTampered, verr)
		}
	}

	switch s.cfg.Encryption {
	case NoEncryption:
		*dst = ct
	case DirectEncryption:
		s.direct.DecryptBlock(dst, &ct)
	case AISE:
		s.ctrMode.DecryptBlock(dst, &ct, s.seedFor(a, meta, uint64(minor), lpid))
	case CtrPhys, CtrVirt:
		v := s.perBlock.Get(a)
		s.ctrMode.DecryptBlock(dst, &ct, s.seedFor(a, meta, v, 0))
	case CtrGlobal32, CtrGlobal64:
		v := s.global.Stored(a)
		s.ctrMode.DecryptBlock(dst, &ct, s.seedFor(a, meta, v, 0))
	}
	return nil
}

// initializePage gives a vacant page a fresh LPID and an encrypted-zero
// image with matching integrity metadata — the secure analogue of the OS
// zeroing a frame at allocation. Cost: one page of pad generation and MAC
// work, charged to the allocating write, never to page movement.
func (s *SecureMemory) initializePage(page layout.Addr) error {
	fresh := counter.Block{LPID: s.gpc.Next()}
	s.split.Store(page, fresh)
	var zero mem.Block
	for i := 0; i < layout.BlocksPerPage; i++ {
		a := page + layout.Addr(i*layout.BlockSize)
		var ct mem.Block
		s.ctrMode.EncryptBlock(&ct, &zero, encrypt.SeedInput{PhysAddr: a, LPID: fresh.LPID, Counter: 0})
		s.mem.WriteBlock(a, &ct)
		if s.dataMACs != nil {
			s.dataMACs.Update(a, &ct, fresh.LPID, 0)
		}
		if s.macOnly != nil {
			s.macOnly.Update(a, &ct)
		}
		if s.cfg.Integrity == MerkleTree {
			if err := s.treeUpdate(a); err != nil {
				return err
			}
		}
	}
	if s.groupMACs != nil {
		for a := page; a < page+layout.PageSize; a += layout.Addr(s.groupMACs.Coverage() * layout.BlockSize) {
			s.groupMACs.Update(a, fresh)
		}
	}
	if s.tree != nil {
		if err := s.treeUpdate(s.split.BlockAddr(page)); err != nil {
			return err
		}
	}
	return nil
}

// reencryptPage re-encrypts a whole page after a minor-counter overflow:
// every block is decrypted under the old counter block and re-encrypted
// under the fresh LPID (§4.3). Blocks keep their data; integrity metadata
// is refreshed.
func (s *SecureMemory) reencryptPage(page layout.Addr, old, new counter.Block) error {
	s.stats.PageReencrypts++
	for i := 0; i < layout.BlocksPerPage; i++ {
		a := page + layout.Addr(i*layout.BlockSize)
		var ct, plain, nct mem.Block
		s.mem.ReadBlock(a, &ct)
		s.ctrMode.DecryptBlock(&plain, &ct, encrypt.SeedInput{PhysAddr: a, LPID: old.LPID, Counter: uint64(old.Minor[i])})
		s.ctrMode.EncryptBlock(&nct, &plain, encrypt.SeedInput{PhysAddr: a, LPID: new.LPID, Counter: uint64(new.Minor[i])})
		s.mem.WriteBlock(a, &nct)
		if s.dataMACs != nil {
			s.dataMACs.Update(a, &nct, new.LPID, new.Minor[i])
		}
		if s.cfg.Integrity == MerkleTree {
			if err := s.treeUpdate(a); err != nil {
				return err
			}
		}
	}
	if s.groupMACs != nil {
		for a := page; a < page+layout.PageSize; a += layout.Addr(s.groupMACs.Coverage() * layout.BlockSize) {
			s.groupMACs.Update(a, new)
		}
	}
	return nil
}

// reencryptAllGlobal models the global-counter wrap: the key must change
// and the entire data region is re-encrypted (§4.1). The functional library
// re-encrypts under the continuing key with fresh counter values, which
// preserves the observable cost and state transitions.
func (s *SecureMemory) reencryptAllGlobal() error {
	s.stats.FullReencrypts++
	for a := layout.Addr(0); a < layout.Addr(s.cfg.DataBytes); a += layout.BlockSize {
		var ct, plain, nct mem.Block
		s.mem.ReadBlock(a, &ct)
		old := s.global.Stored(a)
		if old == 0 {
			continue // never written
		}
		s.ctrMode.DecryptBlock(&plain, &ct, encrypt.SeedInput{PhysAddr: a, Counter: old})
		v, _ := s.global.Next()
		s.global.SetStored(a, v)
		s.ctrMode.EncryptBlock(&nct, &plain, encrypt.SeedInput{PhysAddr: a, Counter: v})
		s.mem.WriteBlock(a, &nct)
		if s.cfg.Integrity == MerkleTree {
			if err := s.treeUpdate(a); err != nil {
				return err
			}
			if err := s.treeUpdate(s.ctrSlotBlock(a)); err != nil {
				return err
			}
		}
	}
	return nil
}

// VerifyAll sweeps the entire data region through the verification path,
// returning the first integrity violation found (or nil). It models a
// background scrubber and is the library's recovery-time audit.
func (s *SecureMemory) VerifyAll() error {
	var blk mem.Block
	for a := layout.Addr(0); a < layout.Addr(s.cfg.DataBytes); a += layout.BlockSize {
		if err := s.ReadBlock(a, &blk, Meta{}); err != nil {
			return err
		}
	}
	return nil
}

// Root returns a copy of the on-chip Merkle tree root, or nil when the
// configured integrity scheme keeps no tree.
func (s *SecureMemory) Root() []byte {
	if s.tree == nil {
		return nil
	}
	return s.tree.Root()
}

// Read copies len(dst) plaintext bytes starting at address a, decrypting
// and verifying each touched block.
func (s *SecureMemory) Read(a layout.Addr, dst []byte, meta Meta) error {
	for len(dst) > 0 {
		var blk mem.Block
		if err := s.ReadBlock(a, &blk, meta); err != nil {
			return err
		}
		off := int(a) & (layout.BlockSize - 1)
		n := copy(dst, blk[off:])
		dst = dst[n:]
		a += layout.Addr(n)
	}
	return nil
}

// Write stores len(src) plaintext bytes starting at address a, performing
// read-modify-write on partially covered blocks.
func (s *SecureMemory) Write(a layout.Addr, src []byte, meta Meta) error {
	for len(src) > 0 {
		var blk mem.Block
		off := int(a) & (layout.BlockSize - 1)
		n := len(src)
		if off != 0 || n < layout.BlockSize {
			if err := s.ReadBlock(a, &blk, meta); err != nil {
				return err
			}
		}
		n = copy(blk[off:], src)
		if err := s.WriteBlock(a, &blk, meta); err != nil {
			return err
		}
		src = src[n:]
		a += layout.Addr(n)
	}
	return nil
}
