package core

import (
	"errors"
	"testing"

	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
)

func TestSwapOutInRoundTrip(t *testing.T) {
	s := newSM(t, AISE, BonsaiMT)
	want := pattern(0x21)
	if err := s.WriteBlock(0x3040, &want, Meta{}); err != nil {
		t.Fatal(err)
	}
	img, err := s.SwapOut(0x3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The frame is vacated.
	var got mem.Block
	if err := s.ReadBlock(0x3040, &got, Meta{}); err == nil && got == want {
		t.Error("swapped-out data still readable in the frame")
	}
	// Swap back into a DIFFERENT frame — no re-encryption required.
	pads := s.Stats().PadGens
	if err := s.SwapIn(img, 0x8000, 2); err != nil {
		t.Fatal(err)
	}
	if s.Stats().PadGens != pads {
		t.Errorf("swap-in generated %d pads; AISE must not re-encrypt", s.Stats().PadGens-pads)
	}
	if err := s.ReadBlock(0x8040, &got, Meta{}); err != nil {
		t.Fatalf("read after swap-in: %v", err)
	}
	if got != want {
		t.Error("data corrupted across swap")
	}
	st := s.Stats()
	if st.SwapOuts != 1 || st.SwapIns != 1 {
		t.Errorf("swap stats = %+v", st)
	}
}

func TestSwapImageTamperDetected(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*PageImage)
	}{
		{"data", func(p *PageImage) { p.Data[3][5] ^= 1 }},
		{"counter", func(p *PageImage) { p.Counters[9] ^= 1 }},
		{"mac", func(p *PageImage) { p.MACs[17] ^= 1 }},
	}
	for _, c := range cases {
		s := newSM(t, AISE, BonsaiMT)
		want := pattern(0x44)
		if err := s.WriteBlock(0x30c0, &want, Meta{}); err != nil {
			t.Fatal(err)
		}
		img, err := s.SwapOut(0x3000, 1)
		if err != nil {
			t.Fatal(err)
		}
		c.mutate(img)
		err = s.SwapIn(img, 0x3000, 1)
		if c.name == "counter" {
			if !errors.Is(err, ErrTampered) {
				t.Errorf("%s tamper: swap-in err = %v, want ErrTampered", c.name, err)
			}
			continue
		}
		// Data/MAC tampering is caught lazily at first read of the block.
		if err != nil {
			t.Fatalf("%s: swap-in rejected eagerly: %v", c.name, err)
		}
		var got mem.Block
		rerr := s.ReadBlock(0x30c0, &got, Meta{})
		if !errors.Is(rerr, ErrTampered) {
			// The mutated byte may be in a different block; sweep the page.
			detected := false
			for i := 0; i < layout.BlocksPerPage; i++ {
				if e := s.ReadBlock(0x3000+layout.Addr(i*64), &got, Meta{}); errors.Is(e, ErrTampered) {
					detected = true
					break
				}
			}
			if !detected {
				t.Errorf("%s tamper in swap image never detected", c.name)
			}
		}
	}
}

func TestSwapReplayOldImageDetected(t *testing.T) {
	// Attacker keeps the v1 image and supplies it when the OS later swaps
	// the page out as v2 and back in: the directory holds v2's root, so the
	// stale image must be rejected.
	s := newSM(t, AISE, BonsaiMT)
	v1 := pattern(1)
	if err := s.WriteBlock(0x3000, &v1, Meta{}); err != nil {
		t.Fatal(err)
	}
	img1, err := s.SwapOut(0x3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	stale := img1.Clone()
	if err := s.SwapIn(img1, 0x3000, 0); err != nil {
		t.Fatal(err)
	}
	v2 := pattern(2)
	if err := s.WriteBlock(0x3000, &v2, Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SwapOut(0x3000, 0); err != nil {
		t.Fatal(err)
	}
	err = s.SwapIn(stale, 0x3000, 0)
	if !errors.Is(err, ErrTampered) {
		t.Errorf("stale swap image accepted: %v", err)
	}
}

func TestSwapUnsupportedSchemes(t *testing.T) {
	// Physical-address seeds: swapping without re-encryption is unsound,
	// and the library refuses (§4.2's open problem).
	s := newSM(t, CtrPhys, NoIntegrity)
	if _, err := s.SwapOut(0x3000, 0); !errors.Is(err, ErrUnsupported) {
		t.Errorf("CtrPhys SwapOut err = %v, want ErrUnsupported", err)
	}
	// No directory configured.
	s2, err := New(Config{DataBytes: 64 << 10, Key: testKey, Encryption: AISE, Integrity: BonsaiMT})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.SwapOut(0x3000, 0); !errors.Is(err, ErrUnsupported) {
		t.Errorf("no-directory SwapOut err = %v, want ErrUnsupported", err)
	}
}

func TestMovePageAISEFree(t *testing.T) {
	s := newSM(t, AISE, BonsaiMT)
	want := pattern(0x66)
	if err := s.WriteBlock(0x5080, &want, Meta{}); err != nil {
		t.Fatal(err)
	}
	pads := s.Stats().PadGens
	if err := s.MovePage(0x5000, 0xa000); err != nil {
		t.Fatal(err)
	}
	if s.Stats().PadGens != pads {
		t.Error("AISE page move performed cryptographic work")
	}
	var got mem.Block
	if err := s.ReadBlock(0xa080, &got, Meta{}); err != nil {
		t.Fatalf("read after move: %v", err)
	}
	if got != want {
		t.Error("data corrupted by page move")
	}
}

func TestMovePageCtrPhysReencrypts(t *testing.T) {
	s := newSM(t, CtrPhys, NoIntegrity)
	want := pattern(0x13)
	if err := s.WriteBlock(0x5080, &want, Meta{}); err != nil {
		t.Fatal(err)
	}
	pads := s.Stats().PadGens
	if err := s.MovePage(0x5000, 0xa000); err != nil {
		t.Fatal(err)
	}
	// 64 blocks x 4 chunks x (decrypt + encrypt) = 512 pad generations.
	if got := s.Stats().PadGens - pads; got != 512 {
		t.Errorf("CtrPhys move generated %d pads, want 512", got)
	}
	if s.Stats().PageReencrypts == 0 {
		t.Error("re-encryption not recorded")
	}
	var got mem.Block
	if err := s.ReadBlock(0xa080, &got, Meta{}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("data corrupted by re-encrypting move")
	}
}

func TestMovePageGlobalFree(t *testing.T) {
	s := newSM(t, CtrGlobal64, NoIntegrity)
	want := pattern(0x29)
	if err := s.WriteBlock(0x5040, &want, Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := s.MovePage(0x5000, 0xa000); err != nil {
		t.Fatal(err)
	}
	var got mem.Block
	if err := s.ReadBlock(0xa040, &got, Meta{}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("global-counter page move corrupted data")
	}
}

func TestMovePageCtrVirtUnsupported(t *testing.T) {
	s := newSM(t, CtrVirt, NoIntegrity)
	if err := s.MovePage(0x5000, 0xa000); !errors.Is(err, ErrUnsupported) {
		t.Errorf("CtrVirt MovePage err = %v, want ErrUnsupported", err)
	}
}

func TestSwapVacatedFrameReusable(t *testing.T) {
	// After swap-out, the old frame must host fresh data correctly.
	s := newSM(t, AISE, BonsaiMT)
	orig := pattern(0x01)
	if err := s.WriteBlock(0x3000, &orig, Meta{}); err != nil {
		t.Fatal(err)
	}
	img, err := s.SwapOut(0x3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	fresh := pattern(0x02)
	if err := s.WriteBlock(0x3000, &fresh, Meta{}); err != nil {
		t.Fatal(err)
	}
	var got mem.Block
	if err := s.ReadBlock(0x3000, &got, Meta{}); err != nil {
		t.Fatalf("read new tenant: %v", err)
	}
	if got != fresh {
		t.Error("vacated frame unusable")
	}
	// And the old image still swaps in elsewhere.
	if err := s.SwapIn(img, 0x9000, 3); err != nil {
		t.Fatalf("swap-in after frame reuse: %v", err)
	}
	if err := s.ReadBlock(0x9000, &got, Meta{}); err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Error("image corrupted while frame was reused")
	}
}
