package core

import (
	"fmt"
	"io"

	"aisebmt/internal/layout"
)

// SectionReaderWriter adapts a region of the secure memory to the standard
// io.ReaderAt / io.WriterAt interfaces, so existing Go code (archives,
// encoders, io.SectionReader pipelines) can operate on protected memory
// directly. Every access goes through the full verify/decrypt or
// encrypt/MAC path.
type SectionReaderWriter struct {
	sm   *SecureMemory
	base layout.Addr
	size int64
	meta Meta
}

var (
	_ io.ReaderAt = (*SectionReaderWriter)(nil)
	_ io.WriterAt = (*SectionReaderWriter)(nil)
)

// Section returns an io adapter over [base, base+size) of the data region.
func (s *SecureMemory) Section(base layout.Addr, size int64, meta Meta) (*SectionReaderWriter, error) {
	if size < 0 || uint64(base)+uint64(size) > s.cfg.DataBytes {
		return nil, fmt.Errorf("core: section [%#x, %#x) outside data region", base, uint64(base)+uint64(size))
	}
	return &SectionReaderWriter{sm: s, base: base, size: size, meta: meta}, nil
}

// Size returns the section length in bytes.
func (s *SectionReaderWriter) Size() int64 { return s.size }

// ReadAt implements io.ReaderAt with the usual contract: a read past the
// end returns io.EOF with the bytes that fit.
func (s *SectionReaderWriter) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset %d", off)
	}
	if off >= s.size {
		return 0, io.EOF
	}
	n := len(p)
	eof := false
	if int64(n) > s.size-off {
		n = int(s.size - off)
		eof = true
	}
	if err := s.sm.Read(s.base+layout.Addr(off), p[:n], s.meta); err != nil {
		return 0, err
	}
	if eof {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt; writes past the end are truncated with
// io.ErrShortWrite.
func (s *SectionReaderWriter) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset %d", off)
	}
	if off >= s.size {
		return 0, io.ErrShortWrite
	}
	n := len(p)
	short := false
	if int64(n) > s.size-off {
		n = int(s.size - off)
		short = true
	}
	if err := s.sm.Write(s.base+layout.Addr(off), p[:n], s.meta); err != nil {
		return 0, err
	}
	if short {
		return n, io.ErrShortWrite
	}
	return n, nil
}
