package core

import (
	"bytes"
	"math/rand"
	"testing"

	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
)

// TestShadowOracle drives a long random operation sequence against the full
// AISE+BMT controller and checks every read against a plain shadow memory:
// the strongest end-to-end correctness test in the suite. Operations
// include block and byte reads/writes, page moves, swap-out/swap-in cycles
// (sometimes into different frames), and whole-memory scrubs.
func TestShadowOracle(t *testing.T) {
	const (
		pages = 16
		size  = pages * layout.PageSize
		ops   = 4000
	)
	sm, err := New(Config{
		DataBytes: size, MACBits: 128, Key: testKey,
		Encryption: AISE, Integrity: BonsaiMT, SwapSlots: pages,
	})
	if err != nil {
		t.Fatal(err)
	}
	shadow := make([]byte, size)
	rng := rand.New(rand.NewSource(20260706))

	// swapped tracks pages currently on "disk": slot -> (image, shadow copy).
	type swapEntry struct {
		img    *PageImage
		shadow []byte
	}
	swapped := map[int]swapEntry{}
	// frameFree marks frames vacated by swap-out (their shadow is zeroed).
	randFrame := func() layout.Addr {
		return layout.Addr(rng.Intn(pages)) * layout.PageSize
	}

	for op := 0; op < ops; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2: // block write
			a := layout.Addr(rng.Intn(size/64) * 64)
			var b mem.Block
			rng.Read(b[:])
			if err := sm.WriteBlock(a, &b, Meta{}); err != nil {
				t.Fatalf("op %d: WriteBlock(%#x): %v", op, a, err)
			}
			copy(shadow[a:], b[:])
		case 3, 4, 5: // block read vs oracle
			a := layout.Addr(rng.Intn(size/64) * 64)
			var b mem.Block
			if err := sm.ReadBlock(a, &b, Meta{}); err != nil {
				t.Fatalf("op %d: ReadBlock(%#x): %v", op, a, err)
			}
			if !bytes.Equal(b[:], shadow[a:int(a)+64]) {
				t.Fatalf("op %d: ReadBlock(%#x) diverged from oracle", op, a)
			}
		case 6: // byte-granular write crossing blocks
			n := 1 + rng.Intn(200)
			a := layout.Addr(rng.Intn(size - n))
			buf := make([]byte, n)
			rng.Read(buf)
			if err := sm.Write(a, buf, Meta{}); err != nil {
				t.Fatalf("op %d: Write(%#x,%d): %v", op, a, n, err)
			}
			copy(shadow[a:], buf)
		case 7: // byte-granular read vs oracle
			n := 1 + rng.Intn(200)
			a := layout.Addr(rng.Intn(size - n))
			buf := make([]byte, n)
			if err := sm.Read(a, buf, Meta{}); err != nil {
				t.Fatalf("op %d: Read(%#x,%d): %v", op, a, n, err)
			}
			if !bytes.Equal(buf, shadow[a:int(a)+n]) {
				t.Fatalf("op %d: Read(%#x,%d) diverged from oracle", op, a, n)
			}
		case 8: // swap a page out, or bring one back in (possibly elsewhere)
			if len(swapped) > 0 && rng.Intn(2) == 0 {
				// Swap in to a random frame; its current contents are lost
				// (the VM layer normally guarantees the frame is vacant —
				// here we just update the oracle accordingly).
				var slot int
				for s := range swapped {
					slot = s
					break
				}
				entry := swapped[slot]
				frame := randFrame()
				if err := sm.SwapIn(entry.img, frame, slot); err != nil {
					t.Fatalf("op %d: SwapIn(slot %d -> %#x): %v", op, slot, frame, err)
				}
				copy(shadow[frame:], entry.shadow)
				delete(swapped, slot)
			} else {
				slot := rng.Intn(pages)
				if _, used := swapped[slot]; used {
					break
				}
				page := randFrame()
				img, err := sm.SwapOut(page, slot)
				if err != nil {
					t.Fatalf("op %d: SwapOut(%#x, slot %d): %v", op, page, slot, err)
				}
				sh := make([]byte, layout.PageSize)
				copy(sh, shadow[page:])
				swapped[slot] = swapEntry{img: img, shadow: sh}
				// The vacated frame reads as zeros.
				for i := 0; i < layout.PageSize; i++ {
					shadow[int(page)+i] = 0
				}
			}
		case 9: // move a page between frames
			src := randFrame()
			dst := randFrame()
			if src == dst {
				break
			}
			if err := sm.MovePage(src, dst); err != nil {
				t.Fatalf("op %d: MovePage(%#x -> %#x): %v", op, src, dst, err)
			}
			copy(shadow[dst:], shadow[src:int(src)+layout.PageSize])
			for i := 0; i < layout.PageSize; i++ {
				shadow[int(src)+i] = 0
			}
		}
	}

	// Closing audit: every byte still matches, and the tree is coherent.
	if err := sm.VerifyAll(); err != nil {
		t.Fatalf("final VerifyAll: %v", err)
	}
	final := make([]byte, size)
	if err := sm.Read(0, final, Meta{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, shadow) {
		for i := range final {
			if final[i] != shadow[i] {
				t.Fatalf("final state diverged at %#x: got %#x want %#x", i, final[i], shadow[i])
			}
		}
	}
}

// TestShadowOracleMT runs a shorter oracle sequence under the standard
// Merkle tree (global64 encryption) to cover the MT read/write paths.
func TestShadowOracleMT(t *testing.T) {
	const size = 8 * layout.PageSize
	sm, err := New(Config{
		DataBytes: size, MACBits: 128, Key: testKey,
		Encryption: CtrGlobal64, Integrity: MerkleTree,
	})
	if err != nil {
		t.Fatal(err)
	}
	shadow := make([]byte, size)
	rng := rand.New(rand.NewSource(7))
	for op := 0; op < 1500; op++ {
		a := layout.Addr(rng.Intn(size/64) * 64)
		if rng.Intn(2) == 0 {
			var b mem.Block
			rng.Read(b[:])
			if err := sm.WriteBlock(a, &b, Meta{}); err != nil {
				t.Fatalf("op %d write: %v", op, err)
			}
			copy(shadow[a:], b[:])
		} else {
			var b mem.Block
			if err := sm.ReadBlock(a, &b, Meta{}); err != nil {
				t.Fatalf("op %d read: %v", op, err)
			}
			if !bytes.Equal(b[:], shadow[a:int(a)+64]) {
				t.Fatalf("op %d: oracle divergence at %#x", op, a)
			}
		}
	}
	if err := sm.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
}

func TestVerifyAllCatchesTamper(t *testing.T) {
	sm := newSM(t, AISE, BonsaiMT)
	b := pattern(5)
	sm.WriteBlock(0x9000, &b, Meta{})
	if err := sm.VerifyAll(); err != nil {
		t.Fatalf("clean VerifyAll: %v", err)
	}
	sm.Memory().TamperBytes(0x9001, []byte{0x77})
	if err := sm.VerifyAll(); err == nil {
		t.Error("VerifyAll missed a tampered block")
	}
}

func TestRootChangesOnWrite(t *testing.T) {
	sm := newSM(t, AISE, BonsaiMT)
	r1 := sm.Root()
	if r1 == nil {
		t.Fatal("no root for a tree scheme")
	}
	b := pattern(9)
	sm.WriteBlock(0x3000, &b, Meta{})
	r2 := sm.Root()
	if bytes.Equal(r1, r2) {
		t.Error("root unchanged after a write")
	}
	if sm2 := newSM(t, AISE, NoIntegrity); sm2.Root() != nil {
		t.Error("treeless scheme returned a root")
	}
}
