package core

import "aisebmt/internal/layout"

// Tree update batching. Eagerly, every counter-block change propagates
// leaf-to-root through the Merkle tree before the write returns. The shard
// worker instead brackets each drained request batch with
// BeginTreeBatch/EndTreeBatch: in between, tree updates are deferred into a
// dirty list that EndTreeBatch commits as one level-ordered, coalescing,
// worker-parallel integrity.Tree.UpdateBatch pass with a single root
// update. Operations that READ tree state mid-batch (ReadBlock
// verification, swap, hibernate) call treeBarrier first, which commits the
// pending set — so batches mixing reads and writes stay correct without
// the caller tracking anything.
//
// Invariant: outside a Begin/End window the dirty list is empty, so
// library users who never call BeginTreeBatch get the unchanged eager
// behavior.

// BeginTreeBatch opens (or nests) a tree-update batch window. Every call
// must be paired with EndTreeBatch or AbortTreeBatch.
func (s *SecureMemory) BeginTreeBatch() {
	s.treeDepth++
}

// EndTreeBatch closes one batch window; closing the outermost window
// commits all deferred tree updates in one coalescing pass. An error means
// the tree could not absorb the updates — the controller's integrity state
// is suspect and the caller must treat it as faulted.
func (s *SecureMemory) EndTreeBatch() error {
	if s.treeDepth == 0 {
		return nil
	}
	s.treeDepth--
	if s.treeDepth == 0 {
		return s.commitTreeBatch()
	}
	return nil
}

// AbortTreeBatch discards all deferred tree updates and closes every open
// window. Only for callers about to quarantine and rebuild the controller:
// the tree no longer matches the written counters afterwards.
func (s *SecureMemory) AbortTreeBatch() {
	s.treeDepth = 0
	s.treeDirty = s.treeDirty[:0]
}

// treeUpdate routes one tree update: deferred into the open batch window,
// straight through the serial reference walk under TreeSerialRef (the
// benchmark "before" configuration), or eagerly otherwise.
func (s *SecureMemory) treeUpdate(a layout.Addr) error {
	if s.cfg.TreeSerialRef {
		return s.tree.UpdateBlockRef(a)
	}
	if s.treeDepth > 0 {
		s.treeDirty = append(s.treeDirty, a)
		return nil
	}
	return s.tree.UpdateBlock(a)
}

// treeBarrier commits pending deferred updates so the caller can read
// current tree state mid-batch. No-op (one length check) when nothing is
// pending.
func (s *SecureMemory) treeBarrier() error {
	if len(s.treeDirty) == 0 {
		return nil
	}
	return s.commitTreeBatch()
}

func (s *SecureMemory) commitTreeBatch() error {
	if len(s.treeDirty) == 0 {
		return nil
	}
	addrs := s.treeDirty
	s.treeDirty = s.treeDirty[:0]
	return s.tree.UpdateBatch(addrs, s.cfg.TreeUpdateWorkers)
}

// FlushTreeNodes writes every dirty cached tree node block back to memory,
// returning how many blocks were written. Hibernate calls it before
// serializing, so snapshot sealing needs no extra step.
func (s *SecureMemory) FlushTreeNodes() int {
	if s.tree == nil {
		return 0
	}
	return s.tree.FlushNodes()
}
