package core

import (
	"fmt"

	"aisebmt/internal/counter"
	"aisebmt/internal/encrypt"
	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
)

// PageImage is a swapped-out page as it exists on the untrusted disk: the
// page's ciphertext, its counter block (LPID plus minor counters) and its
// per-block data MACs travel together, exactly as §4.4 prescribes ("moving
// the page in and out of the disk can be accomplished with or without the
// involvement of the processor"). Every byte is attacker-accessible.
type PageImage struct {
	Data     [layout.BlocksPerPage]mem.Block
	Counters mem.Block
	MACs     []byte
}

// Clone returns a deep copy (attackers snapshot images for replay).
func (p *PageImage) Clone() *PageImage {
	cp := *p
	cp.MACs = append([]byte(nil), p.MACs...)
	return &cp
}

// swapSupported reports whether the configured schemes can move pages to
// disk without re-encryption and with integrity intact.
func (s *SecureMemory) swapSupported() error {
	if s.rootDir == nil {
		return fmt.Errorf("%w: no Page Root Directory configured (SwapSlots=0)", ErrUnsupported)
	}
	if s.cfg.Encryption != AISE {
		return fmt.Errorf("%w: %v seeds are address-dependent or lack per-page counters; pages cannot be swapped without re-encryption (§4.2)", ErrUnsupported, s.cfg.Encryption)
	}
	if s.cfg.Integrity != BonsaiMT {
		return fmt.Errorf("%w: extended swap protection is implemented for Bonsai Merkle Trees (§5.1); configured integrity is %v", ErrUnsupported, s.cfg.Integrity)
	}
	return nil
}

// SwapOut removes the page at pageAddr from physical memory into a
// PageImage, installing its page root (the Bonsai tree's MAC over the
// page's counter block) in the Page Root Directory at the given slot. No
// decryption or re-encryption takes place. The vacated frame is marked
// vacant (LPID 0) and reads as zeros until its next allocation.
func (s *SecureMemory) SwapOut(pageAddr layout.Addr, slot int) (*PageImage, error) {
	if err := s.swapSupported(); err != nil {
		return nil, err
	}
	pageAddr = pageAddr.PageAddr()
	if err := s.checkData(pageAddr); err != nil {
		return nil, err
	}
	// The walk below reads tree state; commit any deferred batch first.
	if err := s.treeBarrier(); err != nil {
		return nil, err
	}
	ctrAddr := s.split.BlockAddr(pageAddr)

	// Authenticate the page root before publishing it to the directory.
	if err := s.tree.VerifyBlock(ctrAddr); err != nil {
		return nil, fmt.Errorf("%w: page %#x counters: %v", ErrTampered, pageAddr, err)
	}
	root, err := s.tree.LeafMAC(ctrAddr)
	if err != nil {
		return nil, err
	}
	if err := s.rootDir.Install(slot, root); err != nil {
		return nil, err
	}
	// The directory is a processor-visible write inside tree-covered
	// memory: update its chain.
	if err := s.tree.UpdateBlock(s.rootDir.SlotAddr(slot)); err != nil {
		return nil, err
	}

	img := &PageImage{}
	for i := 0; i < layout.BlocksPerPage; i++ {
		s.mem.ReadBlock(pageAddr+layout.Addr(i*layout.BlockSize), &img.Data[i])
	}
	macBase, macLen := s.pageMACSpan(pageAddr)
	img.MACs = make([]byte, macLen)
	s.mem.Read(macBase, img.MACs)
	s.mem.ReadBlock(ctrAddr, &img.Counters)

	// Vacate the frame: re-initialize it as encrypted zeros under a fresh
	// LPID with matching MACs, so the frame reads as zeroed memory and is
	// ready for its next tenant.
	if err := s.vacateFrame(pageAddr); err != nil {
		return nil, err
	}
	s.stats.SwapOuts++
	return img, nil
}

// pageMACSpan returns the base address and byte length of the contiguous
// MAC storage covering one data page under the configured Bonsai store.
func (s *SecureMemory) pageMACSpan(page layout.Addr) (layout.Addr, int) {
	macBytes := s.cfg.MACBits / 8
	if s.groupMACs != nil {
		return s.groupMACs.SlotAddr(page), layout.BlocksPerPage / s.groupMACs.Coverage() * macBytes
	}
	return s.dataMACs.SlotAddr(page), layout.BlocksPerPage * macBytes
}

// vacateFrame marks a physical frame vacant: its counter block is cleared
// to LPID 0, the tamper-evident "this page is free and reads as zeros"
// state (the tree covers the counter block, so an attacker cannot forge
// vacancy). No cryptographic work happens here; the frame's next tenant is
// initialized lazily on first write, like an OS zeroing pages at
// allocation.
func (s *SecureMemory) vacateFrame(pageAddr layout.Addr) error {
	s.split.Store(pageAddr, counter.Block{})
	if s.tree != nil {
		return s.tree.UpdateBlock(s.split.BlockAddr(pageAddr))
	}
	return nil
}

// SwapIn installs a PageImage into the physical frame at pageAddr,
// verifying the image's counter block against the page root stored in the
// directory slot before any of its contents become reachable (§5.1's
// five-step sequence). The directory slot is cleared on success.
func (s *SecureMemory) SwapIn(img *PageImage, pageAddr layout.Addr, slot int) error {
	if err := s.swapSupported(); err != nil {
		return err
	}
	pageAddr = pageAddr.PageAddr()
	if err := s.checkData(pageAddr); err != nil {
		return err
	}
	if err := s.treeBarrier(); err != nil {
		return err
	}
	// Step 1: fetch the page root through a regular (tree-verified) read.
	if err := s.tree.VerifyBlock(s.rootDir.SlotAddr(slot)); err != nil {
		return fmt.Errorf("%w: page root directory: %v", ErrTampered, err)
	}
	root, err := s.rootDir.Lookup(slot)
	if err != nil {
		return err
	}
	// Step 2: the image's counter block must match the stored page root.
	ctrAddr := s.split.BlockAddr(pageAddr)
	probe := img.Counters
	s.mem.WriteBlock(ctrAddr, &probe)
	if err := s.tree.InstallLeafMAC(ctrAddr, root); err != nil {
		return err
	}
	if err := s.tree.VerifyBlock(ctrAddr); err != nil {
		// Tampered image: restore an empty frame before failing.
		var zero mem.Block
		s.mem.WriteBlock(ctrAddr, &zero)
		if uerr := s.tree.UpdateBlock(ctrAddr); uerr != nil {
			return uerr
		}
		return fmt.Errorf("%w: swapped page %#x counter block does not match its page root: %v", ErrTampered, pageAddr, err)
	}
	// Steps 3-5: install data, MACs; per-block verification happens lazily
	// on each future read against the now-trusted counters.
	for i := 0; i < layout.BlocksPerPage; i++ {
		blk := img.Data[i]
		s.mem.WriteBlock(pageAddr+layout.Addr(i*layout.BlockSize), &blk)
	}
	macBase, macLen := s.pageMACSpan(pageAddr)
	if len(img.MACs) != macLen {
		return fmt.Errorf("%w: swap image MAC section is %d bytes, want %d", ErrTampered, len(img.MACs), macLen)
	}
	s.mem.Write(macBase, img.MACs)
	// Clear the slot; its page root is back in the live tree.
	if err := s.rootDir.Install(slot, make([]byte, s.cfg.MACBits/8)); err != nil {
		return err
	}
	if err := s.tree.UpdateBlock(s.rootDir.SlotAddr(slot)); err != nil {
		return err
	}
	s.stats.SwapIns++
	return nil
}

// MovePage relocates a page from one physical frame to another, modeling a
// virtual-memory remap. Under AISE the page's ciphertext, counter block and
// MACs are copied verbatim — no cryptographic work. Under CtrPhys every
// block must be decrypted with the old frame address and re-encrypted with
// the new one (§4.2's complexity), which the stats expose as pad
// generations and a PageReencrypts tick. Other schemes: global counters
// move freely; CtrVirt cannot be moved by physical address at all.
func (s *SecureMemory) MovePage(oldPage, newPage layout.Addr) error {
	oldPage, newPage = oldPage.PageAddr(), newPage.PageAddr()
	if err := s.checkData(oldPage); err != nil {
		return err
	}
	if err := s.checkData(newPage); err != nil {
		return err
	}
	if err := s.treeBarrier(); err != nil {
		return err
	}
	switch s.cfg.Encryption {
	case AISE:
		var cb mem.Block
		s.mem.ReadBlock(s.split.BlockAddr(oldPage), &cb)
		s.mem.WriteBlock(s.split.BlockAddr(newPage), &cb)
		if s.tree != nil {
			if err := s.tree.UpdateBlock(s.split.BlockAddr(newPage)); err != nil {
				return err
			}
		}
		for i := 0; i < layout.BlocksPerPage; i++ {
			oa := oldPage + layout.Addr(i*layout.BlockSize)
			na := newPage + layout.Addr(i*layout.BlockSize)
			var blk mem.Block
			s.mem.ReadBlock(oa, &blk)
			s.mem.WriteBlock(na, &blk)
			if s.cfg.Integrity == MerkleTree {
				if err := s.tree.UpdateBlock(na); err != nil {
					return err
				}
			}
		}
		if s.cfg.Integrity == BonsaiMT {
			oldBase, macLen := s.pageMACSpan(oldPage)
			newBase, _ := s.pageMACSpan(newPage)
			macs := make([]byte, macLen)
			s.mem.Read(oldBase, macs)
			s.mem.Write(newBase, macs)
		}
		// The source frame is vacated: re-initialized as encrypted zeros
		// under a fresh LPID with consistent metadata.
		return s.vacateFrame(oldPage)
	case CtrPhys:
		s.stats.PageReencrypts++
		for i := 0; i < layout.BlocksPerPage; i++ {
			oa := oldPage + layout.Addr(i*layout.BlockSize)
			na := newPage + layout.Addr(i*layout.BlockSize)
			var ct, plain, nct mem.Block
			s.mem.ReadBlock(oa, &ct)
			s.ctrMode.DecryptBlock(&plain, &ct, encrypt.SeedInput{PhysAddr: oa, Counter: s.perBlock.Get(oa)})
			v, _ := s.perBlock.Increment(na)
			s.ctrMode.EncryptBlock(&nct, &plain, encrypt.SeedInput{PhysAddr: na, Counter: v})
			s.mem.WriteBlock(na, &nct)
		}
		return nil
	case NoEncryption, DirectEncryption, CtrGlobal32, CtrGlobal64:
		for i := 0; i < layout.BlocksPerPage; i++ {
			oa := oldPage + layout.Addr(i*layout.BlockSize)
			na := newPage + layout.Addr(i*layout.BlockSize)
			var blk mem.Block
			s.mem.ReadBlock(oa, &blk)
			s.mem.WriteBlock(na, &blk)
			if s.global != nil {
				s.global.SetStored(na, s.global.Stored(oa))
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: %v pages cannot be relocated by physical address", ErrUnsupported, s.cfg.Encryption)
	}
}

// CounterBlockOf returns the split counter block covering a page, for
// examples and the VM substrate. It is only meaningful under AISE.
func (s *SecureMemory) CounterBlockOf(a layout.Addr) (counter.Block, error) {
	if s.split == nil {
		return counter.Block{}, fmt.Errorf("%w: %v has no per-page counter blocks", ErrUnsupported, s.cfg.Encryption)
	}
	return s.split.Load(a), nil
}
