package core

import "encoding/json"

// statsJSON is the canonical machine-readable shape of Stats. Every
// serializer in the repository (the shard pool's service stats, the
// secmemd stats endpoint, cmd/experiments exports) goes through this one
// definition so field names never drift apart.
type statsJSON struct {
	BlockReads     uint64 `json:"block_reads"`
	BlockWrites    uint64 `json:"block_writes"`
	PadGens        uint64 `json:"pad_gens"`
	MACOps         uint64 `json:"mac_ops"`
	TreeUpdates    uint64 `json:"tree_updates"`
	TreeVerifies   uint64 `json:"tree_verifies"`
	PageReencrypts uint64 `json:"page_reencrypts"`
	FullReencrypts uint64 `json:"full_reencrypts"`
	SwapOuts       uint64 `json:"swap_outs"`
	SwapIns        uint64 `json:"swap_ins"`

	CtrCacheHits      uint64 `json:"ctr_cache_hits"`
	CtrCacheMisses    uint64 `json:"ctr_cache_misses"`
	TreeNodeCacheHits uint64 `json:"tree_node_cache_hits"`
	TreeNodeCacheMiss uint64 `json:"tree_node_cache_misses"`

	TreeBatches        uint64 `json:"tree_batches"`
	TreeBatchedLeaves  uint64 `json:"tree_batched_leaves"`
	TreeNodesHashed    uint64 `json:"tree_nodes_hashed"`
	TreeNodesCoalesced uint64 `json:"tree_nodes_coalesced"`
	TreeWBHits         uint64 `json:"tree_wb_cache_hits"`
	TreeWBMisses       uint64 `json:"tree_wb_cache_misses"`
	TreeWBWritebacks   uint64 `json:"tree_wb_writebacks"`
	TreeWBFlushes      uint64 `json:"tree_wb_flushes"`
}

// MarshalJSON renders the counters under stable snake_case keys.
func (s Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(statsJSON(s))
}

// UnmarshalJSON parses the shape written by MarshalJSON.
func (s *Stats) UnmarshalJSON(b []byte) error {
	var sj statsJSON
	if err := json.Unmarshal(b, &sj); err != nil {
		return err
	}
	*s = Stats(sj)
	return nil
}

// Add returns the field-wise sum of two Stats, for aggregating counters
// across controllers (the shard pool's service-level view).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		BlockReads:     s.BlockReads + o.BlockReads,
		BlockWrites:    s.BlockWrites + o.BlockWrites,
		PadGens:        s.PadGens + o.PadGens,
		MACOps:         s.MACOps + o.MACOps,
		TreeUpdates:    s.TreeUpdates + o.TreeUpdates,
		PageReencrypts: s.PageReencrypts + o.PageReencrypts,
		FullReencrypts: s.FullReencrypts + o.FullReencrypts,
		TreeVerifies:   s.TreeVerifies + o.TreeVerifies,
		SwapOuts:       s.SwapOuts + o.SwapOuts,
		SwapIns:        s.SwapIns + o.SwapIns,

		CtrCacheHits:      s.CtrCacheHits + o.CtrCacheHits,
		CtrCacheMisses:    s.CtrCacheMisses + o.CtrCacheMisses,
		TreeNodeCacheHits: s.TreeNodeCacheHits + o.TreeNodeCacheHits,
		TreeNodeCacheMiss: s.TreeNodeCacheMiss + o.TreeNodeCacheMiss,

		TreeBatches:        s.TreeBatches + o.TreeBatches,
		TreeBatchedLeaves:  s.TreeBatchedLeaves + o.TreeBatchedLeaves,
		TreeNodesHashed:    s.TreeNodesHashed + o.TreeNodesHashed,
		TreeNodesCoalesced: s.TreeNodesCoalesced + o.TreeNodesCoalesced,
		TreeWBHits:         s.TreeWBHits + o.TreeWBHits,
		TreeWBMisses:       s.TreeWBMisses + o.TreeWBMisses,
		TreeWBWritebacks:   s.TreeWBWritebacks + o.TreeWBWritebacks,
		TreeWBFlushes:      s.TreeWBFlushes + o.TreeWBFlushes,
	}
}
