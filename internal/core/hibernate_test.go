package core

import (
	"bytes"
	"errors"
	"testing"

	"aisebmt/internal/mem"
)

func hibernateConfig() Config {
	return Config{
		DataBytes: 128 << 10, MACBits: 128, Key: testKey,
		Encryption: AISE, Integrity: BonsaiMT, SwapSlots: 8,
	}
}

func TestHibernateResumeRoundTrip(t *testing.T) {
	sm, err := New(hibernateConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(0x3c)
	if err := sm.WriteBlock(0x6000, &want, Meta{}); err != nil {
		t.Fatal(err)
	}

	var img bytes.Buffer
	chip, err := sm.Hibernate(&img)
	if err != nil {
		t.Fatal(err)
	}
	if len(chip.Root) == 0 {
		t.Fatal("chip state has no root")
	}

	sm2, err := Resume(hibernateConfig(), chip, &img)
	if err != nil {
		t.Fatal(err)
	}
	var got mem.Block
	if err := sm2.ReadBlock(0x6000, &got, Meta{}); err != nil {
		t.Fatalf("read after resume: %v", err)
	}
	if got != want {
		t.Error("data corrupted across hibernation")
	}
	if err := sm2.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll after resume: %v", err)
	}
	// The resumed controller keeps working, including LPID continuity.
	fresh := pattern(0x44)
	if err := sm2.WriteBlock(0x7000, &fresh, Meta{}); err != nil {
		t.Fatal(err)
	}
	cb, err := sm2.CounterBlockOf(0x7000)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := sm.CounterBlockOf(0x6000)
	if err != nil {
		t.Fatal(err)
	}
	if cb.LPID <= pre.LPID {
		t.Errorf("post-resume LPID %d not beyond pre-hibernation %d", cb.LPID, pre.LPID)
	}
}

func TestHibernationImageTamperDetected(t *testing.T) {
	sm, err := New(hibernateConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(0x11)
	if err := sm.WriteBlock(0x6000, &want, Meta{}); err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	chip, err := sm.Hibernate(&img)
	if err != nil {
		t.Fatal(err)
	}
	// The attacker edits the image on disk while the machine is off:
	// flip a bit inside the stored ciphertext of block 0x6000.
	raw := img.Bytes()
	ct := sm.Memory().Snapshot(0x6000)
	idx := bytes.Index(raw, ct[:])
	if idx < 0 {
		t.Fatal("ciphertext not found in image")
	}
	raw[idx+5] ^= 0x40
	sm2, err := Resume(hibernateConfig(), chip, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var got mem.Block
	rerr := sm2.ReadBlock(0x6000, &got, Meta{})
	if !errors.Is(rerr, ErrTampered) {
		t.Errorf("tampered hibernation image read: %v", rerr)
	}
}

func TestResumeValidation(t *testing.T) {
	sm, err := New(hibernateConfig())
	if err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	chip, err := sm.Hibernate(&img)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong-size config: the image does not fit.
	bad := hibernateConfig()
	bad.DataBytes *= 2
	if _, err := Resume(bad, chip, bytes.NewReader(img.Bytes())); err == nil {
		t.Error("resume into a different-size memory accepted")
	}
	// Corrupt root length.
	badChip := chip
	badChip.Root = []byte{1, 2, 3}
	if _, err := Resume(hibernateConfig(), badChip, bytes.NewReader(img.Bytes())); err == nil {
		t.Error("short root accepted")
	}
	// Garbage image.
	if _, err := Resume(hibernateConfig(), chip, bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage image accepted")
	}
}

func TestMemorySerializeRoundTrip(t *testing.T) {
	m := mem.New(1 << 16)
	var b1, b2 mem.Block
	b1[0], b2[63] = 0xaa, 0xbb
	m.WriteBlock(0x40, &b1)
	m.WriteBlock(0xfc0, &b2)
	var buf bytes.Buffer
	if err := m.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := mem.New(1 << 16)
	if err := m2.Deserialize(&buf); err != nil {
		t.Fatal(err)
	}
	if m2.Snapshot(0x40) != b1 || m2.Snapshot(0xfc0) != b2 {
		t.Error("blocks corrupted across serialization")
	}
	if m2.Snapshot(0x80) != (mem.Block{}) {
		t.Error("unpopulated block not zero after restore")
	}
	if m2.PopulatedBlocks() != 2 {
		t.Errorf("populated = %d, want 2", m2.PopulatedBlocks())
	}
}
