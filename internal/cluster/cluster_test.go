package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
	"aisebmt/internal/persist"
	"aisebmt/internal/server"
	"aisebmt/internal/shard"
)

var testKey = []byte("cluster-test-key")

// testShardCfg builds the identical pool geometry every member runs:
// 2 shards × 8 pages, full AISE + Bonsai protection.
func testShardCfg() shard.Config {
	return shard.Config{
		Shards:     2,
		QueueDepth: 16,
		BatchMax:   8,
		Core: core.Config{
			DataBytes:  2 * 8 * layout.PageSize,
			MACBits:    64,
			Key:        testKey,
			Encryption: core.AISE,
			Integrity:  core.BonsaiMT,
			SwapSlots:  8,
		},
	}
}

// world simulates the network's failure modes for a test cluster: nodes
// marked down refuse probes and dials, and cut pairs model a partition.
// The data plane is real loopback TCP; only probe/dial decisions and
// listener lifecycle are intercepted.
type world struct {
	mu     sync.Mutex
	down   map[string]bool
	cut    map[[2]string]bool
	byAddr map[string]string // any listen addr -> member ID
}

func newWorld() *world {
	return &world{down: map[string]bool{}, cut: map[[2]string]bool{}, byAddr: map[string]string{}}
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

func (w *world) setDown(id string, v bool) {
	w.mu.Lock()
	w.down[id] = v
	w.mu.Unlock()
}

func (w *world) partition(a, b string, v bool) {
	w.mu.Lock()
	w.cut[pairKey(a, b)] = v
	w.mu.Unlock()
}

func (w *world) blocked(from, toID string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.down[toID] || w.cut[pairKey(from, toID)]
}

func (w *world) probe(from string, m Member) error {
	if w.blocked(from, m.ID) {
		return fmt.Errorf("probe: %s unreachable from %s", m.ID, from)
	}
	return nil
}

func (w *world) dial(from, addr string) (net.Conn, error) {
	w.mu.Lock()
	toID := w.byAddr[addr]
	w.mu.Unlock()
	if toID != "" && w.blocked(from, toID) {
		return nil, fmt.Errorf("dial: %s unreachable from %s", toID, from)
	}
	return net.DialTimeout("tcp", addr, 2*time.Second)
}

// trackListener lets the harness sever every accepted connection at
// once, simulating a node crash without cooperating shutdown.
type trackListener struct {
	net.Listener
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func track(ln net.Listener) *trackListener {
	return &trackListener{Listener: ln, conns: map[net.Conn]struct{}{}}
}

func (t *trackListener) Accept() (net.Conn, error) {
	c, err := t.Listener.Accept()
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.conns[c] = struct{}{}
	t.mu.Unlock()
	return c, nil
}

func (t *trackListener) kill() {
	t.Listener.Close()
	t.mu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.conns = map[net.Conn]struct{}{}
	t.mu.Unlock()
}

// testNode is one member's full stack: store, pool, Node, wire server.
type testNode struct {
	id     string
	dir    string
	store  *persist.Store
	node   *Node
	srv    *server.Server
	wireLn *trackListener
	dead   bool
}

type testCluster struct {
	t       *testing.T
	w       *world
	members []Member
	nodes   map[string]*testNode
	dir     string
}

// startCluster boots n members on loopback listeners with fast failover
// tuning (probe 25ms, promote after 3 misses).
func startCluster(t *testing.T, n int, proxy bool) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, w: newWorld(), nodes: map[string]*testNode{}, dir: t.TempDir()}
	type pre struct {
		wire, repl net.Listener
	}
	pres := make([]pre, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i+1)
		wire, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		repl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		pres[i] = pre{wire, repl}
		m := Member{
			ID:     id,
			Wire:   wire.Addr().String(),
			Health: "127.0.0.1:1", // never probed: tests inject w.probe
			Repl:   repl.Addr().String(),
		}
		tc.members = append(tc.members, m)
		tc.w.byAddr[m.Wire] = id
		tc.w.byAddr[m.Repl] = id
	}
	for i, m := range tc.members {
		tc.nodes[m.ID] = tc.boot(m, pres[i].wire, pres[i].repl, proxy, nil)
	}
	t.Cleanup(tc.shutdown)
	return tc
}

// boot builds one member's stack on the given listeners. A non-nil iv
// boots the member from a fetched view (the join bootstrap) instead of
// the static member list.
func (tc *testCluster) boot(m Member, wireLn, replLn net.Listener, proxy bool, iv *View) *testNode {
	tc.t.Helper()
	dir := filepath.Join(tc.dir, m.ID, "data")
	st, err := persist.Open(persist.Options{Dir: dir, Key: testKey, Fsync: persist.FsyncAlways})
	if err != nil {
		tc.t.Fatal(err)
	}
	pool, _, err := st.Recover(testShardCfg())
	if err != nil {
		tc.t.Fatal(err)
	}
	node, err := NewNode(Config{
		Self:          m.ID,
		Members:       tc.members,
		InitialView:   iv,
		Pool:          pool,
		Store:         st,
		ShardCfg:      testShardCfg(),
		Key:           testKey,
		DataDir:       filepath.Join(tc.dir, m.ID),
		Fsync:         persist.FsyncAlways,
		ReplListener:  replLn,
		Proxy:         proxy,
		Dialer:        tc.w.dial,
		Probe:         tc.w.probe,
		ProbeEvery:    25 * time.Millisecond,
		FailAfter:     3,
		IOTimeout:     2 * time.Second,
		AttachBackoff: 10 * time.Millisecond,
		Logf:          tc.t.Logf,
	})
	if err != nil {
		tc.t.Fatal(err)
	}
	srv := server.New(node, server.Options{Timeout: time.Second})
	tln := track(wireLn)
	go srv.Serve(tln)
	return &testNode{id: m.ID, dir: dir, store: st, node: node, srv: srv, wireLn: tln}
}

// kill crashes a member: listeners and live connections sever, probes
// and dials to it fail, nothing is flushed or closed gracefully.
func (tc *testCluster) kill(id string) {
	n := tc.nodes[id]
	n.dead = true
	tc.w.setDown(id, true)
	n.node.Halt()
	n.wireLn.kill()
}

func (tc *testCluster) shutdown() {
	for _, n := range tc.nodes {
		if n.dead {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		n.srv.Shutdown(ctx)
		cancel()
		n.store.Close()
	}
}

func (tc *testCluster) client() *SmartClient {
	c, err := NewSmartClient(tc.members, 2*time.Second)
	if err != nil {
		tc.t.Fatal(err)
	}
	tc.t.Cleanup(func() { c.Close() })
	return c
}

// retry runs op with backoff until success or the deadline; returns the
// last error on timeout. Only cluster-retryable errors are retried.
func retry(deadline time.Duration, op func() error) error {
	var err error
	end := time.Now().Add(deadline)
	wait := 5 * time.Millisecond
	for time.Now().Before(end) {
		if err = op(); err == nil || !Retryable(err) {
			return err
		}
		time.Sleep(wait)
		if wait *= 2; wait > 100*time.Millisecond {
			wait = 100 * time.Millisecond
		}
	}
	return err
}

func blockAddr(page uint64, block int) layout.Addr {
	return layout.Addr(page*layout.PageSize + uint64(block)*layout.BlockSize)
}

func fillByte(addr layout.Addr, v byte) []byte {
	b := make([]byte, layout.BlockSize)
	for i := range b {
		b[i] = v ^ byte(addr>>6)
	}
	return b
}

// TestClusterReplicatedWrites: a 3-node cluster serves the full address
// space through smart routing, and every write lands on the owner with
// a synchronous standby ack behind it.
func TestClusterReplicatedWrites(t *testing.T) {
	tc := startCluster(t, 3, false)
	c := tc.client()
	const pages = 16
	for p := uint64(0); p < pages; p++ {
		a := blockAddr(p, int(p)%4)
		if err := retry(5*time.Second, func() error { return c.Write(a, fillByte(a, 0x41), core.Meta{}) }); err != nil {
			t.Fatalf("write page %d: %v", p, err)
		}
	}
	for p := uint64(0); p < pages; p++ {
		a := blockAddr(p, int(p)%4)
		got, err := c.Read(a, layout.BlockSize, core.Meta{})
		if err != nil {
			t.Fatalf("read page %d: %v", p, err)
		}
		want := fillByte(a, 0x41)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("page %d byte %d: got %#x want %#x", p, i, got[i], want[i])
			}
		}
	}
	// Replication really ran: every node with at least one owned page
	// that was written shipped segments.
	for _, n := range tc.nodes {
		if got := n.node.met.segShipped.Load(); got == 0 {
			t.Errorf("node %s shipped no segments", n.id)
		}
	}
}

// TestClusterDumbClientRedirect: a plain wire client pointed at the
// wrong node gets StatusNotOwner carrying the owner's address.
func TestClusterDumbClientRedirect(t *testing.T) {
	tc := startCluster(t, 3, false)
	ring := NewRing([]string{"n1", "n2", "n3"})
	// Find a page n1 does not own.
	var page uint64
	for p := uint64(0); p < 64; p++ {
		if ring.OwnerPage(p) != "n1" {
			page = p
			break
		}
	}
	owner := ring.OwnerPage(page)
	cl, err := server.Dial(tc.members[0].Wire, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	a := blockAddr(page, 0)
	werr := cl.Write(a, fillByte(a, 1), core.Meta{})
	addr, ok := server.NotOwnerAddr(werr)
	if !ok {
		t.Fatalf("write to non-owner: got %v, want NotOwner", werr)
	}
	var want string
	for _, m := range tc.members {
		if m.ID == owner {
			want = m.Wire
		}
	}
	if addr != want {
		t.Fatalf("redirect to %q, want owner %s at %q", addr, owner, want)
	}
}

// TestClusterProxyMode: with proxying on, any node serves any page for
// a dumb client by forwarding to the owner.
func TestClusterProxyMode(t *testing.T) {
	tc := startCluster(t, 3, true)
	cl, err := server.Dial(tc.members[0].Wire, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for p := uint64(0); p < 8; p++ {
		a := blockAddr(p, 1)
		if err := retry(5*time.Second, func() error { return cl.Write(a, fillByte(a, 0x5a), core.Meta{}) }); err != nil {
			t.Fatalf("proxied write page %d: %v", p, err)
		}
		got, err := cl.Read(a, layout.BlockSize, core.Meta{})
		if err != nil {
			t.Fatalf("proxied read page %d: %v", p, err)
		}
		if got[0] != fillByte(a, 0x5a)[0] {
			t.Fatalf("proxied read page %d returned wrong data", p)
		}
	}
}

// TestClusterFailover is the tentpole invariant: kill an owner under
// load and every acknowledged write must survive into the promoted
// standby, served by the dead node's follower.
func TestClusterFailover(t *testing.T) {
	tc := startCluster(t, 3, false)
	c := tc.client()
	ring := NewRing([]string{"n1", "n2", "n3"})

	// Shadow model: last acknowledged value per address.
	acked := map[layout.Addr]byte{}
	writeAll := func(tag byte, budget time.Duration) {
		for p := uint64(0); p < 16; p++ {
			a := blockAddr(p, int(p)%4)
			v := tag ^ byte(p)
			if err := retry(budget, func() error { return c.Write(a, fillByte(a, v), core.Meta{}) }); err != nil {
				t.Fatalf("write page %d: %v", p, err)
			}
			acked[a] = v
		}
	}
	writeAll(0x10, 5*time.Second)

	victim := ring.OwnerPage(0)
	tc.kill(victim)
	t.Logf("killed %s", victim)

	// Recovery-to-first-byte on the victim's range: a write to page 0
	// must succeed once the follower promotes (probe 25ms × 3 misses).
	start := time.Now()
	a0 := blockAddr(0, 0)
	if err := retry(10*time.Second, func() error { return c.Write(a0, fillByte(a0, 0x77), core.Meta{}) }); err != nil {
		t.Fatalf("write to dead owner's range never recovered: %v", err)
	}
	acked[a0] = 0x77
	t.Logf("recovery to first byte: %s", time.Since(start))

	// Full sweep under the new topology, then verify the shadow model:
	// zero acknowledged writes lost.
	writeAll(0x20, 10*time.Second)
	for a, v := range acked {
		got, err := c.Read(a, layout.BlockSize, core.Meta{})
		if err != nil {
			t.Fatalf("read %#x after failover: %v", uint64(a), err)
		}
		want := fillByte(a, v)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("addr %#x byte %d: got %#x want %#x — acked write lost", uint64(a), i, got[i], want[i])
			}
		}
	}

	// Exactly one surviving node promoted the victim's range.
	promotions := 0
	for id, n := range tc.nodes {
		if n.dead {
			continue
		}
		if got := n.node.met.failovers.Load(); got > 0 {
			promotions += int(got)
			t.Logf("node %s promoted %d range(s)", id, got)
		}
	}
	if promotions != 1 {
		t.Fatalf("want exactly 1 promotion, got %d", promotions)
	}
}

// TestClusterPartitionFencing: an owner partitioned from the rest of
// the cluster stops acknowledging (stalled replication), its follower
// promotes, and after the partition heals the deposed owner answers
// NotOwner — the fencing epoch prevents split-brain on both sides.
func TestClusterPartitionFencing(t *testing.T) {
	tc := startCluster(t, 3, false)
	c := tc.client()
	ring := NewRing([]string{"n1", "n2", "n3"})
	victim := ring.OwnerPage(0)
	a := blockAddr(0, 0)

	if err := retry(5*time.Second, func() error { return c.Write(a, fillByte(a, 1), core.Meta{}) }); err != nil {
		t.Fatal(err)
	}

	// Cut the victim off from both peers (clients still reach it).
	for _, m := range tc.members {
		if m.ID != victim {
			tc.w.partition(victim, m.ID, true)
		}
	}
	// Sever its replication stream so the next write actually exercises
	// the stalled path rather than riding the established connection.
	vic := tc.nodes[victim]
	vic.node.ship.close()

	// A direct write to the partitioned owner must not be acknowledged:
	// its stream is down and it cannot re-attach across the partition.
	err := c.DirectWrite(victim, a, fillByte(a, 2), core.Meta{})
	if err == nil {
		t.Fatal("partitioned owner acknowledged a write with replication down")
	}
	if !Retryable(err) {
		t.Fatalf("stalled write should be retryable, got %v", err)
	}

	// The follower promotes (it cannot probe the victim) and serves.
	if err := retry(10*time.Second, func() error { return c.Write(a, fillByte(a, 3), core.Meta{}) }); err != nil {
		t.Fatalf("follower never took over the partitioned range: %v", err)
	}

	// Heal. The victim's shipper re-attaches, is told it is fenced, and
	// must answer NotOwner from then on.
	for _, m := range tc.members {
		if m.ID != victim {
			tc.w.partition(victim, m.ID, false)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := c.DirectWrite(victim, a, fillByte(a, 4), core.Meta{})
		if _, ok := server.NotOwnerAddr(err); ok {
			break
		}
		var se *server.StatusError
		if errors.As(err, &se) && se.Status == server.StatusNotOwner {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deposed owner still answers %v, want NotOwner", err)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The promoted value (3) survived; the fenced write (2, 4) did not.
	got, err := c.Read(a, layout.BlockSize, core.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if want := fillByte(a, 3); got[0] != want[0] {
		t.Fatalf("read %#x, want the promoted value %#x", got[0], want[0])
	}
}
