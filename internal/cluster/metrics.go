package cluster

import "aisebmt/internal/obs"

// metrics is the secmemd_cluster_* family, registered on the daemon's
// observability registry (or a throwaway one when observability is off,
// so call sites never nil-check). Counters follow the repo's metric
// conventions and pass cmd/metricslint over a live node's /metrics.
type metrics struct {
	members     *obs.Gauge
	ownedArcs   *obs.Gauge
	attached    *obs.Gauge
	promoted    *obs.Gauge
	standbys    *obs.Gauge
	deposed     *obs.Gauge
	segShipped  *obs.Counter
	segApplied  *obs.Counter
	baseShipped *obs.Counter
	baseApplied *obs.Counter
	failovers   *obs.Counter
	fenceRej    *obs.Counter
	fencedWr    *obs.Counter
	notOwner    *obs.Counter
	attachTries *obs.Counter
	resyncs     *obs.Counter

	// Lifecycle: re-replication of promoted ranges, membership views,
	// handoffs and fenced rejoins.
	rereplAttached *obs.Gauge
	rereplWindowMs *obs.Gauge
	rereplTries    *obs.Counter
	rereplUnrepl   *obs.Counter
	rereplStalled  *obs.Counter
	rereplMoves    *obs.Counter
	viewEpoch      *obs.Gauge
	viewRefused    *obs.Counter
	handoffs       *obs.Counter
	rejoins        *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &metrics{
		members:     reg.Gauge("secmemd_cluster_members", "Configured cluster members."),
		ownedArcs:   reg.Gauge("secmemd_cluster_ring_arcs_owned", "Ring arcs this node owns."),
		attached:    reg.Gauge("secmemd_cluster_follower_attached", "1 when this node's segment stream is attached to a follower."),
		promoted:    reg.Gauge("secmemd_cluster_promoted_ranges", "Dead peers whose ranges this node serves after failover."),
		standbys:    reg.Gauge("secmemd_cluster_standbys", "Warm standbys this node holds for peers."),
		deposed:     reg.Gauge("secmemd_cluster_deposed", "1 after this node's follower was promoted over it."),
		segShipped:  reg.Counter("secmemd_cluster_segments_shipped_total", "Sealed WAL segments shipped to the follower."),
		segApplied:  reg.Counter("secmemd_cluster_segments_applied_total", "Sealed WAL segments applied to standbys."),
		baseShipped: reg.Counter("secmemd_cluster_baselines_shipped_total", "Baselines exported and shipped to followers."),
		baseApplied: reg.Counter("secmemd_cluster_baselines_applied_total", "Baselines verified and imported as standbys."),
		failovers:   reg.Counter("secmemd_cluster_failovers_total", "Standbys this node promoted after an owner death."),
		fenceRej:    reg.Counter("secmemd_cluster_fence_rejections_total", "Replication frames refused from deposed owners."),
		fencedWr:    reg.Counter("secmemd_cluster_fenced_writes_total", "Local mutations refused by the ownership write fence."),
		notOwner:    reg.Counter("secmemd_cluster_not_owner_total", "Requests answered with a NotOwner redirect."),
		attachTries: reg.Counter("secmemd_cluster_attach_attempts_total", "Follower attach attempts by the segment shipper."),
		resyncs:     reg.Counter("secmemd_cluster_resyncs_total", "Streams torn down for a fresh baseline (checkpoint rotation or continuity loss)."),

		rereplAttached: reg.Gauge("secmemd_cluster_rerepl_attached", "Promoted or handed-off ranges whose re-replication stream is attached to a standby."),
		rereplWindowMs: reg.Gauge("secmemd_cluster_rerepl_window_ms", "Duration of the last closed single-copy window (promotion or stream loss to standby attach), in milliseconds."),
		rereplTries:    reg.Counter("secmemd_cluster_rerepl_attach_attempts_total", "Standby attach attempts by re-replication shippers."),
		rereplUnrepl:   reg.Counter("secmemd_cluster_rerepl_unreplicated_writes_total", "Batches acknowledged within the re-replication grace window while no standby was attached."),
		rereplStalled:  reg.Counter("secmemd_cluster_rerepl_stalled_writes_total", "Batches refused repl-stalled after the re-replication grace window expired."),
		rereplMoves:    reg.Counter("secmemd_cluster_rerepl_placement_moves_total", "Re-replication streams dropped to move a standby back to the preferred ring successor."),
		viewEpoch:      reg.Gauge("secmemd_cluster_view_epoch", "Membership view epoch this node has applied and sealed."),
		viewRefused:    reg.Counter("secmemd_cluster_view_refusals_total", "Membership views refused (epoch regression, seal failure, or structural rejection)."),
		handoffs:       reg.Counter("secmemd_cluster_handoffs_total", "Range handoffs this node completed as the old holder (leave/move)."),
		rejoins:        reg.Counter("secmemd_cluster_rejoins_total", "Streams accepted for this node's own range after it was fenced (deposed-member rejoin as follower)."),
	}
}
