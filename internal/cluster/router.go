package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
	"aisebmt/internal/obs"
	"aisebmt/internal/server"
	"aisebmt/internal/shard"
)

// forwarder moves requests to their owning node over pooled wire-client
// connections, following NotOwner redirects and falling back to the
// owner's successors when it is unreachable (its follower may have
// promoted the range). It backs both a Node in proxy mode and the
// standalone router.
type forwarder struct {
	timeout time.Duration

	mu sync.Mutex
	ms *Membership
	// resolve maps a ring owner (a lineage in cluster nodes) to the
	// member currently assigned to serve it; nil means identity (the
	// router's static view, where owners are members).
	resolve  func(string) string
	idle     map[string][]*server.Client
	redirect map[string]string // owner ID -> learned wire addr
	closed   bool
}

func newForwarder(ms *Membership, timeout time.Duration) *forwarder {
	return &forwarder{
		ms:       ms,
		timeout:  timeout,
		idle:     map[string][]*server.Client{},
		redirect: map[string]string{},
	}
}

// swap installs the routing structures of a newly applied membership
// view; in-flight requests finish on the old one.
func (f *forwarder) swap(ms *Membership) {
	f.mu.Lock()
	f.ms = ms
	f.mu.Unlock()
}

// snapshot returns the current membership and resolver.
func (f *forwarder) snapshot() (*Membership, func(string) string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ms, f.resolve
}

// maxHops bounds one request's walk across redirects and successor
// fallbacks; a 3-node cluster resolves in 2.
const maxHops = 4

func (f *forwarder) get(addr string) (*server.Client, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, shard.ErrClosed
	}
	if s := f.idle[addr]; len(s) > 0 {
		c := s[len(s)-1]
		f.idle[addr] = s[:len(s)-1]
		f.mu.Unlock()
		return c, nil
	}
	f.mu.Unlock()
	c, err := server.Dial(addr, f.timeout)
	if err != nil {
		return nil, err
	}
	c.SetRequestDeadline(f.timeout)
	return c, nil
}

func (f *forwarder) put(addr string, c *server.Client) {
	f.mu.Lock()
	if !f.closed && len(f.idle[addr]) < 8 {
		f.idle[addr] = append(f.idle[addr], c)
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	c.Close()
}

func (f *forwarder) learn(ownerID, addr string) {
	f.mu.Lock()
	m, _ := f.ms.Member(ownerID)
	if addr == m.Wire {
		delete(f.redirect, ownerID)
	} else {
		f.redirect[ownerID] = addr
	}
	f.mu.Unlock()
}

// targets is the deterministic probe order for a page owned by ownerID:
// any learned redirect first, then the owner itself, then its
// successors (the promotion order).
func (f *forwarder) targets(ms *Membership, ownerID string) []string {
	f.mu.Lock()
	learned := f.redirect[ownerID]
	f.mu.Unlock()
	var out []string
	if learned != "" {
		out = append(out, learned)
	}
	m, _ := ms.Member(ownerID)
	out = append(out, m.Wire)
	for _, s := range ms.Successors(ownerID) {
		out = append(out, s.Wire)
	}
	return out
}

// do runs op against the node serving page p, walking redirects and
// fallbacks up to maxHops. A definitive status from a node is returned
// as-is (the caller's retry policy sees it); exhausting the walk maps to
// the retryable ErrUnavailable.
func (f *forwarder) do(p uint64, op func(c *server.Client) error) error {
	ms, resolve := f.snapshot()
	ownerID := ms.ring.OwnerPage(p)
	if resolve != nil {
		ownerID = resolve(ownerID)
	}
	targets := f.targets(ms, ownerID)
	tried := map[string]bool{}
	var lastErr error
	hops := 0
	for i := 0; i < len(targets) && hops < maxHops; i++ {
		addr := targets[i]
		if addr == "" || tried[addr] {
			continue
		}
		tried[addr] = true
		hops++
		c, err := f.get(addr)
		if err != nil {
			lastErr = err
			continue
		}
		err = op(c)
		if err == nil {
			f.put(addr, c)
			f.learn(ownerID, addr)
			return nil
		}
		if na, ok := server.NotOwnerAddr(err); ok {
			f.put(addr, c)
			// Splice the redirect in as the immediate next target.
			targets = append(targets[:i+1], append([]string{na}, targets[i+1:]...)...)
			lastErr = err
			continue
		}
		var se *server.StatusError
		if errors.As(err, &se) {
			f.put(addr, c)
			if se.Status.Retryable() {
				// A transient shed: another candidate may hold a promoted
				// copy of this range — keep walking before giving up.
				lastErr = err
				continue
			}
			// The serving node's definitive verdict stands.
			return err
		}
		// Transport failure: the connection is dead, the node may be too.
		c.Close()
		lastErr = err
	}
	var se *server.StatusError
	if errors.As(lastErr, &se) {
		return lastErr
	}
	return fmt.Errorf("%w: no node served page %d (owner %s): %v", server.ErrUnavailable, p, ownerID, lastErr)
}

// withMember runs op against one specific member (no routing).
func (f *forwarder) withMember(m Member, op func(c *server.Client) error) error {
	c, err := f.get(m.Wire)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", server.ErrUnavailable, m.ID, err)
	}
	err = op(c)
	var se *server.StatusError
	if err == nil || errors.As(err, &se) {
		f.put(m.Wire, c)
		return err
	}
	c.Close()
	return fmt.Errorf("%w: %s: %v", server.ErrUnavailable, m.ID, err)
}

func (f *forwarder) close() {
	f.mu.Lock()
	f.closed = true
	for _, s := range f.idle {
		for _, c := range s {
			c.Close()
		}
	}
	f.idle = map[string][]*server.Client{}
	f.mu.Unlock()
}

// Read forwards a read to the owner of a's page.
func (f *forwarder) Read(ctx context.Context, a layout.Addr, dst []byte, meta core.Meta) error {
	return f.do(uint64(a)/layout.PageSize, func(c *server.Client) error {
		b, err := c.Read(a, len(dst), meta)
		if err != nil {
			return err
		}
		copy(dst, b)
		return nil
	})
}

// Write forwards a write to the owner of a's page.
func (f *forwarder) Write(ctx context.Context, a layout.Addr, src []byte, meta core.Meta) error {
	return f.do(uint64(a)/layout.PageSize, func(c *server.Client) error {
		return c.Write(a, src, meta)
	})
}

// RouterOptions configures a standalone router.
type RouterOptions struct {
	// Timeout bounds each forwarded request (default 5s).
	Timeout time.Duration
	// ProbeEvery is the member health poll period (default 1s).
	ProbeEvery time.Duration
	// Obs registers router metrics; nil is allowed.
	Obs *obs.Service
	// Logf receives member up/down transitions.
	Logf func(format string, args ...any)
}

// RouterBackend implements server.Backend by forwarding every request to
// the owning cluster node. It holds no state of its own, so any number
// of routers can run in front of one cluster; clients that speak the
// plain single-daemon protocol get location transparency, and smart
// clients can bypass it entirely.
type RouterBackend struct {
	ms   *Membership
	fwd  *forwarder
	opts RouterOptions

	up     []atomic32
	closed chan struct{}
	wg     sync.WaitGroup
}

// atomic32 avoids importing sync/atomic twice for one flag slice.
type atomic32 struct {
	mu sync.Mutex
	v  bool
}

func (a *atomic32) set(v bool) { a.mu.Lock(); a.v = v; a.mu.Unlock() }
func (a *atomic32) get() bool  { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

// NewRouter builds a router over the member list and starts its health
// poller.
func NewRouter(members []Member, opts RouterOptions) (*RouterBackend, error) {
	ms, err := NewMembership(members)
	if err != nil {
		return nil, err
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.ProbeEvery <= 0 {
		opts.ProbeEvery = time.Second
	}
	r := &RouterBackend{
		ms:     ms,
		fwd:    newForwarder(ms, opts.Timeout),
		opts:   opts,
		up:     make([]atomic32, len(ms.ids)),
		closed: make(chan struct{}),
	}
	for i := range r.up {
		r.up[i].set(true)
	}
	r.wg.Add(1)
	go r.poll()
	return r, nil
}

// poll marks members up or down from their /healthz, for ShardStates
// (one synthetic "shard" per member in the router's health view).
func (r *RouterBackend) poll() {
	defer r.wg.Done()
	probe := func(m Member) bool {
		c, err := server.Dial(m.Wire, r.opts.ProbeEvery)
		if err != nil {
			return false
		}
		c.Close()
		return true
	}
	tick := time.NewTicker(r.opts.ProbeEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.closed:
			return
		case <-tick.C:
		}
		for i, id := range r.ms.ids {
			m, _ := r.ms.Member(id)
			now := probe(m)
			if was := r.up[i].get(); was != now {
				if r.opts.Logf != nil {
					state := "down"
					if now {
						state = "up"
					}
					r.opts.Logf("router: member %s is %s", id, state)
				}
			}
			r.up[i].set(now)
		}
	}
}

// Read implements server.Backend.
func (r *RouterBackend) Read(ctx context.Context, a layout.Addr, dst []byte, meta core.Meta) error {
	return r.fwd.Read(ctx, a, dst, meta)
}

// Write implements server.Backend.
func (r *RouterBackend) Write(ctx context.Context, a layout.Addr, src []byte, meta core.Meta) error {
	return r.fwd.Write(ctx, a, src, meta)
}

// Verify fans out to every member; the first failure wins.
func (r *RouterBackend) Verify(ctx context.Context) error {
	for _, id := range r.ms.ids {
		m, _ := r.ms.Member(id)
		if err := r.fwd.withMember(m, func(c *server.Client) error { return c.Verify() }); err != nil {
			return fmt.Errorf("member %s: %w", id, err)
		}
	}
	return nil
}

// Roots concatenates every member's roots in sorted member order;
// unreachable members contribute nothing (attestation of a partial
// cluster is visibly shorter).
func (r *RouterBackend) Roots() [][]byte {
	var out [][]byte
	for _, id := range r.ms.ids {
		m, _ := r.ms.Member(id)
		r.fwd.withMember(m, func(c *server.Client) error {
			roots, err := c.Roots()
			if err == nil {
				out = append(out, roots...)
			}
			return err
		})
	}
	return out
}

// Stats sums the reachable members' stats.
func (r *RouterBackend) Stats() shard.ServiceStats {
	var out shard.ServiceStats
	for _, id := range r.ms.ids {
		m, _ := r.ms.Member(id)
		r.fwd.withMember(m, func(c *server.Client) error {
			st, err := c.Stats()
			if err != nil {
				return err
			}
			out.Shards += st.Shards
			out.Enqueued += st.Enqueued
			out.Rejected += st.Rejected
			out.Expired += st.Expired
			out.Batches += st.Batches
			out.BatchedOps += st.BatchedOps
			out.CoalescedWrites += st.CoalescedWrites
			out.Faults += st.Faults
			out.Repairs += st.Repairs
			out.RepairFailures += st.RepairFailures
			out.QuarantineRefused += st.QuarantineRefused
			out.ShardStates = append(out.ShardStates, st.ShardStates...)
			out.PerShard = append(out.PerShard, st.PerShard...)
			return nil
		})
	}
	return out
}

// SwapOut implements server.Backend by routing to the page's owner.
func (r *RouterBackend) SwapOut(ctx context.Context, a layout.Addr, slot int) (*core.PageImage, error) {
	var img *core.PageImage
	err := r.fwd.do(uint64(a)/layout.PageSize, func(c *server.Client) error {
		var e error
		img, e = c.SwapOut(a, slot)
		return e
	})
	return img, err
}

// SwapIn implements server.Backend by routing to the page's owner.
func (r *RouterBackend) SwapIn(ctx context.Context, img *core.PageImage, a layout.Addr, slot int) error {
	return r.fwd.do(uint64(a)/layout.PageSize, func(c *server.Client) error {
		return c.SwapIn(img, a, slot)
	})
}

// Cordon is node-local; a router cannot address one member's shard.
func (r *RouterBackend) Cordon(int) error { return core.ErrUnsupported }

// Uncordon is node-local; a router cannot address one member's shard.
func (r *RouterBackend) Uncordon(int) error { return core.ErrUnsupported }

// Hibernate is node-local.
func (r *RouterBackend) Hibernate(io.Writer) ([]core.ChipState, error) {
	return nil, core.ErrUnsupported
}

// ShardStates reports one synthetic state per member: serving while its
// wire port answers, down otherwise. The health endpoint's readiness
// ("at least one shard serving") then means "at least one member up".
func (r *RouterBackend) ShardStates() []shard.ShardState {
	out := make([]shard.ShardState, len(r.ms.ids))
	for i := range r.ms.ids {
		if r.up[i].get() {
			out[i] = shard.StateServing
		} else {
			out[i] = shard.StateDown
		}
	}
	return out
}

// ShardFault reports no latched fault; member outages show in ShardStates.
func (r *RouterBackend) ShardFault(int) (shard.FaultKind, error) { return 0, nil }

// Close stops the poller and drops pooled connections.
func (r *RouterBackend) Close() error {
	select {
	case <-r.closed:
	default:
		close(r.closed)
	}
	r.wg.Wait()
	r.fwd.close()
	return nil
}
