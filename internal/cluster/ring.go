// Package cluster federates secmemd daemons: a consistent-hash ring maps
// page numbers to owner nodes, a synchronous replication stream ships
// each owner's sealed WAL segments to a designated follower, and an
// epoch-fenced failover promotes the follower when an owner dies. The
// fencing epoch rides inside the sealed segments and anchors of the
// persistence layer, so a deposed owner stays deposed across restarts and
// cannot roll the cluster back to pre-failover state.
package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"

	"aisebmt/internal/layout"
)

// ringReplicas is how many virtual nodes each member projects onto the
// ring. More replicas smooth the ownership split between members at the
// cost of a larger table; at 96 the max/min ownership ratio across a
// handful of nodes stays within a few percent.
const ringReplicas = 96

// Ring is a consistent-hash ring over static cluster membership. Pages
// hash onto a 64-bit circle; a page's owner is the member whose next
// virtual node follows it. Membership is fixed at construction — failover
// re-routes via delegation (the dead owner's pages are served by its
// designated follower), not by rebuilding the ring, so assignments stay
// stable across node deaths and recoveries.
type Ring struct {
	ids    []string // members, sorted
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node int // index into ids
}

// fnv64 is FNV-1a followed by a splitmix64 finalizer. Bare FNV-1a does
// not avalanche: short keys that differ only in their last bytes (page
// numbers, "id#replica" strings) land in a narrow band of the circle and
// the ring degenerates to one owner. The finalizer diffuses every input
// bit across the word. Both stages are fixed constants — stable across
// runs and platforms, so ring assignments can be pinned in tests and
// depended on across daemon restarts.
func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// NewRing builds the ring for the given member IDs (order-insensitive;
// duplicates are an error expressed as a panic, since membership comes
// from validated configuration).
func NewRing(ids []string) *Ring {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			panic(fmt.Sprintf("cluster: duplicate node ID %q", sorted[i]))
		}
	}
	r := &Ring{ids: sorted, points: make([]ringPoint, 0, len(sorted)*ringReplicas)}
	for ni, id := range sorted {
		for rep := 0; rep < ringReplicas; rep++ {
			r.points = append(r.points, ringPoint{
				hash: fnv64([]byte(fmt.Sprintf("%s#%d", id, rep))),
				node: ni,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Members returns the ring's member IDs, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.ids...) }

// OwnerPage returns the member owning page number p.
func (r *Ring) OwnerPage(p uint64) string {
	var key [8]byte
	binary.BigEndian.PutUint64(key[:], p)
	h := fnv64(key[:])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point succeeds the last hash
	}
	return r.ids[r.points[i].node]
}

// Owner returns the member owning the page containing physical address a.
func (r *Ring) Owner(a layout.Addr) string {
	return r.OwnerPage(uint64(a) / layout.PageSize)
}

// Ranges returns how many of the ring's arcs each member owns, keyed by
// ID — the granularity at which ownership moves, exported as a gauge.
func (r *Ring) Ranges() map[string]int {
	out := make(map[string]int, len(r.ids))
	for _, p := range r.points {
		out[r.ids[p.node]]++
	}
	return out
}
