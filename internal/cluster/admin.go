package cluster

import (
	"encoding/json"
	"fmt"
	"time"
)

// This file is the ring-change protocol: sealed membership views ratchet
// through an epoch, and each moving range is handed off through the same
// verified baseline + segment catch-up machinery that failover trusts.
// One admin operation should run at a time, cluster-wide — epochs refuse
// regressions and collisions fail closed, but concurrent operators can
// make each other's operations abort.

// applyView installs a newer membership view: seals it to disk, ratchets
// the anchor's membership epoch, swaps the routing structures, and acts
// on serving changes relative to the previously applied view (promote a
// range handed to us; depose one handed away). Idempotent at the same
// epoch; regressions are refused.
func (n *Node) applyView(v *View) error {
	n.viewMu.Lock()
	defer n.viewMu.Unlock()
	select {
	case <-n.closed:
		return fmt.Errorf("cluster: node closed")
	default:
	}
	cur := n.curView()
	if v.Epoch < cur.Epoch {
		n.met.viewRefused.Inc()
		return fmt.Errorf("cluster: view epoch %d regresses applied epoch %d", v.Epoch, cur.Epoch)
	}
	if v.Epoch == cur.Epoch {
		return nil
	}
	ms, err := v.membership()
	if err != nil {
		n.met.viewRefused.Inc()
		return fmt.Errorf("cluster: refused view %d: %w", v.Epoch, err)
	}
	if _, ok := ms.Member(n.self.ID); !ok && !v.isRemoved(n.self.ID) {
		n.met.viewRefused.Inc()
		return fmt.Errorf("cluster: view %d neither lists nor removes this member", v.Epoch)
	}
	if err := saveView(n.cfg.DataDir, n.cfg.Key, v); err != nil {
		return fmt.Errorf("cluster: persist view %d: %w", v.Epoch, err)
	}
	n.cfg.Store.SetMemEpoch(v.Epoch)
	n.met.viewEpoch.Set(int64(v.Epoch))

	if v.isRemoved(n.self.ID) {
		// Expelled. Stop serving everything; keep the old routing
		// structures so redirects still resolve. A restart refuses to
		// come back (the view is sealed, the epoch is anchored).
		n.view.Store(v)
		n.logf("cluster: this member was removed from the cluster at epoch %d", v.Epoch)
		if n.selfLineage != "" {
			n.becomeDeposed(v.servingMember(n.selfLineage))
		}
		n.mu.Lock()
		var prs []string
		for l := range n.promoted {
			prs = append(prs, l)
		}
		n.mu.Unlock()
		for _, l := range prs {
			n.deposeRange(l, v.servingMember(l))
		}
		return nil
	}

	n.view.Store(v)
	n.ms.Store(ms)
	n.fwd.swap(ms)
	n.met.members.Set(int64(len(v.Members)))
	if n.selfLineage != "" {
		n.met.ownedArcs.Set(int64(ms.Ring().Ranges()[n.selfLineage]))
	}
	n.logf("cluster: applied membership view %d (%d members, %d lineages)", v.Epoch, len(v.Members), len(v.Lineages))

	// Serving transitions: only ranges whose assignment changed in this
	// ratchet. Failover promotions are discovered, never written into
	// views, so an unchanged assignment must not disturb them.
	for _, l := range v.Lineages {
		was, now := cur.servingMember(l), v.servingMember(l)
		if was == now {
			continue
		}
		switch {
		case now == n.self.ID:
			// Handed to us; the handoff shipped a standby here first.
			if err := n.promote(l); err != nil {
				n.logf("cluster: promote handed-off range %s: %v", l, err)
			}
		case was == n.self.ID:
			if l == n.selfLineage {
				n.mu.Lock()
				ship := n.ship
				n.mu.Unlock()
				if ship != nil {
					ship.depose()
				}
				n.becomeDeposed(now)
			} else {
				n.deposeRange(l, now)
			}
		}
	}

	// Growth: a formerly single-member cluster gained peers — start the
	// machinery NewNode skips for one member.
	if len(v.Members) > 1 {
		if n.selfLineage != "" && v.servingMember(n.selfLineage) == n.self.ID {
			if _, dep := n.isDeposed(); !dep {
				n.mu.Lock()
				start := n.ship == nil
				if start {
					n.ship = newShipper(n, n.selfLineage, n.cfg.Store, true)
				}
				ship := n.ship
				n.mu.Unlock()
				if start {
					// The rotate hook (storeRotated) was wired at boot and
					// picks the new stream up through n.ship.
					n.cfg.Store.SetSegmentSink(ship.sink)
					n.wg.Add(1)
					go ship.run()
				}
			}
		}
		if !n.monitorOn {
			n.monitorOn = true
			n.wg.Add(1)
			go n.monitor()
		}
	}
	return nil
}

// broadcastView pushes a sealed view to every other member, best effort:
// members that are down learn it on their next handshake (epoch in the
// hello) or from the seed they fetch a view from when rejoining.
func (n *Node) broadcastView(v *View) {
	sealed := encodeView(n.cfg.Key, v)
	for _, m := range v.Members {
		if m.ID == n.self.ID {
			continue
		}
		if err := n.pushViewTo(m, sealed); err != nil {
			n.logf("cluster: view %d push to %s: %v", v.Epoch, m.ID, err)
		}
	}
}

// pushViewTo delivers one sealed view over a short-lived repl
// connection.
func (n *Node) pushViewTo(m Member, sealed []byte) error {
	conn, err := n.cfg.Dialer(n.self.ID, m.Repl)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(n.cfg.IOTimeout))
	if err := writeFrame(conn, msgView, sealed); err != nil {
		return err
	}
	typ, p, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != msgViewAck {
		return fmt.Errorf("unexpected frame %d for view ack", typ)
	}
	a, err := decodeAck(p)
	if err != nil {
		return err
	}
	if a.Code != ackOK {
		return fmt.Errorf("refused: %s", a.Msg)
	}
	return nil
}

// handoff moves one range this node serves to target: pin the range's
// shipper to the target, wait for the verified baseline + catch-up to
// attach there, then push the new view over the attached stream — the
// target's ack is the ownership flip (it promotes the standby under a
// higher fence; our next segment would bounce off it, so no write is
// ever acknowledged by both sides).
func (n *Node) handoff(l, target string) error {
	cur := n.curView()
	if _, ok := cur.member(target); !ok {
		return fmt.Errorf("cluster: handoff target %s is not a member", target)
	}
	if target == n.self.ID {
		return fmt.Errorf("cluster: cannot hand off %s to self", l)
	}
	var s *shipper
	if l == n.selfLineage {
		if _, dep := n.isDeposed(); dep {
			return fmt.Errorf("cluster: not serving own range %s", l)
		}
		n.mu.Lock()
		s = n.ship
		n.mu.Unlock()
	} else {
		n.mu.Lock()
		if n.promoted[l] == nil || n.rangeDeposed[l] != "" {
			n.mu.Unlock()
			return fmt.Errorf("cluster: range %s is not served here", l)
		}
		s = n.shippers[l]
		n.mu.Unlock()
	}
	if s == nil {
		return fmt.Errorf("cluster: no replication stream for range %s", l)
	}

	s.retarget(target)
	flipped := false
	defer func() {
		if !flipped {
			// Failed or timed out (e.g. the joiner died mid-handoff):
			// resume normal successor shipping; ownership never moved.
			s.retarget("")
		}
	}()
	deadline := time.Now().Add(8 * n.cfg.IOTimeout)
	for s.attachedTo() != target {
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: handoff of %s: %s did not attach in time", l, target)
		}
		select {
		case <-n.closed:
			return fmt.Errorf("cluster: node closed")
		case <-time.After(10 * time.Millisecond):
		}
	}

	nv := n.curView().clone()
	nv.Epoch++
	nv.Serving[l] = target
	if err := s.pushView(encodeView(n.cfg.Key, nv)); err != nil {
		return fmt.Errorf("cluster: handoff of %s: view push: %w", l, err)
	}
	flipped = true
	if err := n.applyView(nv); err != nil {
		// The target has flipped; our copy is fenced either way — the
		// next segment we might ship answers ackFenced and deposes us.
		return fmt.Errorf("cluster: handoff of %s: local apply: %w", l, err)
	}
	n.met.handoffs.Inc()
	n.logf("cluster: handed range %s to %s at epoch %d", l, target, nv.Epoch)
	n.broadcastView(nv)
	return nil
}

// servedRanges lists the ranges this node currently serves (its own
// lineage plus adopted ones).
func (n *Node) servedRanges() []string {
	var out []string
	if n.selfLineage != "" && n.curView().servingMember(n.selfLineage) == n.self.ID {
		if _, dep := n.isDeposed(); !dep {
			out = append(out, n.selfLineage)
		}
	}
	n.mu.Lock()
	for l := range n.promoted {
		if n.rangeDeposed[l] == "" {
			out = append(out, l)
		}
	}
	n.mu.Unlock()
	return out
}

// pickHandoffTarget chooses where a leaving member sends range l: the
// first live successor of the range's lineage that is not this node.
func (n *Node) pickHandoffTarget(l string) string {
	for _, m := range n.membership().Successors(l) {
		if m.ID == n.self.ID {
			continue
		}
		if n.cfg.Probe(n.self.ID, m) == nil {
			return m.ID
		}
	}
	return ""
}

// ClusterView implements server.ClusterBackend: the applied view as
// JSON, for operators.
func (n *Node) ClusterView() ([]byte, error) {
	return json.Marshal(n.curView())
}

// ClusterJoin adds a member (spec: "id=wire/health/repl") to the ring.
// The new member founds no lineage — no data moves; it immediately hosts
// standbys and is a handoff and re-replication target. The joining
// daemon itself boots afterwards with -cluster-join pointed at any seed
// member and fetches this view.
func (n *Node) ClusterJoin(spec string) ([]byte, error) {
	mems, err := ParseMembers(spec)
	if err != nil {
		return nil, err
	}
	if len(mems) != 1 {
		return nil, fmt.Errorf("cluster: join takes exactly one member spec")
	}
	m := mems[0]
	n.adminMu.Lock()
	defer n.adminMu.Unlock()
	cur := n.curView()
	if cur.isRemoved(m.ID) {
		return nil, fmt.Errorf("cluster: member ID %s was removed and cannot be reused; pick a fresh ID", m.ID)
	}
	if _, ok := cur.member(m.ID); ok {
		return nil, fmt.Errorf("cluster: member %s already in the ring", m.ID)
	}
	nv := cur.clone()
	nv.Epoch++
	nv.Members = append(nv.Members, m)
	if err := n.applyView(nv); err != nil {
		return nil, err
	}
	n.logf("cluster: member %s joined at epoch %d", m.ID, nv.Epoch)
	n.broadcastView(nv)
	return json.Marshal(nv)
}

// ClusterLeave gracefully retires this member: every range it serves is
// handed off through a verified baseline + catch-up, then a final epoch
// drops it from the ring and marks it removed. Must be sent to the
// leaving member itself (it drives its own handoffs). The process keeps
// running as a redirect-only shell afterwards; stop it at leisure.
func (n *Node) ClusterLeave(id string) ([]byte, error) {
	if id == "" {
		id = n.self.ID
	}
	if id != n.self.ID {
		return nil, fmt.Errorf("cluster: leave must be sent to the leaving member %s", id)
	}
	n.adminMu.Lock()
	defer n.adminMu.Unlock()
	if len(n.curView().Members) < 2 {
		return nil, fmt.Errorf("cluster: the last member cannot leave")
	}
	for _, l := range n.servedRanges() {
		target := n.pickHandoffTarget(l)
		if target == "" {
			return nil, fmt.Errorf("cluster: no live handoff target for range %s", l)
		}
		if err := n.handoff(l, target); err != nil {
			return nil, err
		}
	}
	cur := n.curView()
	nv := cur.clone()
	nv.Epoch++
	keep := nv.Members[:0]
	for _, m := range nv.Members {
		if m.ID != n.self.ID {
			keep = append(keep, m)
		}
	}
	nv.Members = keep
	nv.Removed = append(nv.Removed, n.self.ID)
	if err := n.applyView(nv); err != nil {
		return nil, err
	}
	n.logf("cluster: left the ring at epoch %d", nv.Epoch)
	n.broadcastView(nv)
	return json.Marshal(nv)
}

// ClusterRemove expels a dead member without its cooperation. Any
// lineage the view still assigns to it must already be served here
// (failover promoted it), so the new view records reality; run the
// removal on the promoting node. The removed ID is burned: its streams
// and restarts are refused from now on.
func (n *Node) ClusterRemove(id string) ([]byte, error) {
	if id == n.self.ID {
		return nil, fmt.Errorf("cluster: use leave to retire this member")
	}
	n.adminMu.Lock()
	defer n.adminMu.Unlock()
	cur := n.curView()
	if _, ok := cur.member(id); !ok {
		return nil, fmt.Errorf("cluster: unknown member %s", id)
	}
	nv := cur.clone()
	nv.Epoch++
	for _, l := range nv.Lineages {
		if nv.servingMember(l) != id {
			continue
		}
		n.mu.Lock()
		serving := n.promoted[l] != nil && n.rangeDeposed[l] == ""
		n.mu.Unlock()
		if !serving {
			return nil, fmt.Errorf("cluster: range %s of %s is not served here; run remove on its current holder", l, id)
		}
		nv.Serving[l] = n.self.ID
	}
	keep := nv.Members[:0]
	for _, m := range nv.Members {
		if m.ID != id {
			keep = append(keep, m)
		}
	}
	nv.Members = keep
	nv.Removed = append(nv.Removed, id)
	if err := n.applyView(nv); err != nil {
		return nil, err
	}
	n.logf("cluster: removed member %s at epoch %d", id, nv.Epoch)
	n.broadcastView(nv)
	return json.Marshal(nv)
}
