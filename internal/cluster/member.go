package cluster

import (
	"fmt"
	"sort"
	"strings"

	"aisebmt/internal/layout"
)

// Member is one node of a static cluster: a stable ID (the ring key) and
// the three addresses it serves on. Wire is the client-facing data plane
// (the length-prefixed secmemd protocol), Health the HTTP sidecar with
// /healthz and /readyz, and Repl the replication stream listener that
// this member's predecessor ships sealed WAL segments to.
type Member struct {
	ID     string
	Wire   string
	Health string
	Repl   string
}

// ParseMembers parses the -cluster flag format: a comma-separated list
// of "id=wire/health/repl" entries, e.g.
//
//	n1=127.0.0.1:7070/127.0.0.1:9090/127.0.0.1:8080,n2=...
//
// IDs must be unique and every address non-empty: a member that cannot
// be probed or replicated to is a configuration error, not a runtime
// surprise.
func ParseMembers(s string) ([]Member, error) {
	var out []Member
	seen := map[string]bool{}
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		id, addrs, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: member %q: want id=wire/health/repl", ent)
		}
		parts := strings.Split(addrs, "/")
		if len(parts) != 3 {
			return nil, fmt.Errorf("cluster: member %q: want 3 addresses wire/health/repl, got %d", ent, len(parts))
		}
		m := Member{ID: strings.TrimSpace(id), Wire: parts[0], Health: parts[1], Repl: parts[2]}
		if m.ID == "" || m.Wire == "" || m.Health == "" || m.Repl == "" {
			return nil, fmt.Errorf("cluster: member %q: empty id or address", ent)
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("cluster: duplicate member ID %q", m.ID)
		}
		seen[m.ID] = true
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	return out, nil
}

// Membership is the resolved cluster view: the consistent-hash ring over
// the member IDs plus address lookup and the successor order failover
// arbitration runs on.
type Membership struct {
	ring *Ring
	byID map[string]Member
	ids  []string // sorted; successor order
}

// NewMembership builds the view. Every ring operation and the follower
// assignment derive from it, so two nodes constructed from the same
// member list agree on ownership and on who promotes whom.
func NewMembership(members []Member) (*Membership, error) {
	ids := make([]string, len(members))
	byID := make(map[string]Member, len(members))
	for i, m := range members {
		ids[i] = m.ID
		if _, dup := byID[m.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate member ID %q", m.ID)
		}
		byID[m.ID] = m
	}
	sort.Strings(ids)
	return &Membership{ring: NewRing(ids), byID: byID, ids: ids}, nil
}

// Ring exposes the membership's consistent-hash ring.
func (ms *Membership) Ring() *Ring { return ms.ring }

// Member returns the member with the given ID.
func (ms *Membership) Member(id string) (Member, bool) {
	m, ok := ms.byID[id]
	return m, ok
}

// Owner returns the member owning the page containing address a.
func (ms *Membership) Owner(a layout.Addr) Member {
	return ms.byID[ms.ring.Owner(a)]
}

// OwnerPage returns the member owning page p.
func (ms *Membership) OwnerPage(p uint64) Member {
	return ms.byID[ms.ring.OwnerPage(p)]
}

// Successors returns the other members in deterministic successor order
// starting after id (sorted-ID order, wrapping). The first entry is id's
// designated follower; an owner whose follower is unreachable walks
// further down the same list, and failover arbitration promotes the
// first *live* successor, so both sides of a failover agree on who acts.
func (ms *Membership) Successors(id string) []Member {
	at := sort.SearchStrings(ms.ids, id)
	out := make([]Member, 0, len(ms.ids)-1)
	for off := 1; off < len(ms.ids)+1; off++ {
		sid := ms.ids[(at+off)%len(ms.ids)]
		if sid == id {
			continue
		}
		out = append(out, ms.byID[sid])
	}
	if len(out) > len(ms.ids)-1 {
		out = out[:len(ms.ids)-1]
	}
	return out
}
