package cluster

// The replication stream protocol. One TCP connection per (owner →
// follower) pair carries, in order: a hello exchange that settles
// fencing, one sealed baseline, then sealed WAL segments, each
// acknowledged before the owner acks its client. Frames are
// length-prefixed like the data-plane wire protocol, but the payloads
// are the persist layer's sealed encodings — the transport adds no
// trust, and a forged or replayed frame dies in DecodeSegment /
// DecodeBaseline, not here.
//
//	frame := len(u32 BE, payload length) | type(u8) | payload
//
// Acks carry a code plus a short message; on ackFenced the message is
// the member ID the sender believes holds the range now, which the
// deposed owner uses to answer NotOwner redirects.

import (
	"encoding/binary"
	"fmt"
	"io"
)

const (
	msgHello       = 1
	msgHelloAck    = 2
	msgBaseline    = 3
	msgBaselineAck = 4
	msgSegment     = 5
	msgSegmentAck  = 6

	ackOK     = 0
	ackFenced = 1 // sender's fencing epoch is superseded; stop shipping
	ackResync = 2 // continuity lost (owner checkpointed); re-baseline
	ackError  = 3 // structural/verification failure; re-baseline

	// maxReplFrame bounds one frame. Baselines carry a full snapshot plus
	// WAL tails, so the bound is generous; segments are a few pages.
	maxReplFrame = 1 << 30
)

// hello opens the stream: the owner identifies itself and declares its
// fencing epoch and shard count before shipping anything expensive.
type hello struct {
	ID     string
	Fence  uint64
	Shards uint32
}

// ack answers hello, baseline and segment frames.
type ack struct {
	Code uint8
	Msg  string
}

func writeFrame(w io.Writer, typ uint8, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (uint8, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxReplFrame {
		return 0, nil, fmt.Errorf("cluster: repl frame of %d bytes exceeds limit", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return 0, nil, err
	}
	return hdr[4], p, nil
}

func encodeHello(h hello) []byte {
	b := make([]byte, 0, 2+len(h.ID)+8+4)
	b = binary.BigEndian.AppendUint16(b, uint16(len(h.ID)))
	b = append(b, h.ID...)
	b = binary.BigEndian.AppendUint64(b, h.Fence)
	b = binary.BigEndian.AppendUint32(b, h.Shards)
	return b
}

func decodeHello(b []byte) (hello, error) {
	var h hello
	if len(b) < 2 {
		return h, fmt.Errorf("cluster: hello truncated")
	}
	n := int(binary.BigEndian.Uint16(b[:2]))
	if len(b) != 2+n+12 {
		return h, fmt.Errorf("cluster: hello length mismatch")
	}
	h.ID = string(b[2 : 2+n])
	h.Fence = binary.BigEndian.Uint64(b[2+n : 2+n+8])
	h.Shards = binary.BigEndian.Uint32(b[2+n+8:])
	return h, nil
}

func encodeAck(a ack) []byte {
	b := make([]byte, 0, 1+2+len(a.Msg))
	b = append(b, a.Code)
	b = binary.BigEndian.AppendUint16(b, uint16(len(a.Msg)))
	b = append(b, a.Msg...)
	return b
}

func decodeAck(b []byte) (ack, error) {
	var a ack
	if len(b) < 3 {
		return a, fmt.Errorf("cluster: ack truncated")
	}
	a.Code = b[0]
	n := int(binary.BigEndian.Uint16(b[1:3]))
	if len(b) != 3+n {
		return a, fmt.Errorf("cluster: ack length mismatch")
	}
	a.Msg = string(b[3:])
	return a, nil
}
