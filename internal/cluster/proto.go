package cluster

// The replication stream protocol. One TCP connection per (owner →
// follower) pair carries, in order: a hello exchange that settles
// fencing, one sealed baseline, then sealed WAL segments, each
// acknowledged before the owner acks its client. Frames are
// length-prefixed like the data-plane wire protocol, but the payloads
// are the persist layer's sealed encodings — the transport adds no
// trust, and a forged or replayed frame dies in DecodeSegment /
// DecodeBaseline, not here.
//
//	frame := len(u32 BE, payload length) | type(u8) | payload
//
// Acks carry a code plus a short message; on ackFenced the message is
// the member ID the sender believes holds the range now, which the
// deposed owner uses to answer NotOwner redirects.

import (
	"encoding/binary"
	"fmt"
	"io"
)

const (
	msgHello       = 1
	msgHelloAck    = 2
	msgBaseline    = 3
	msgBaselineAck = 4
	msgSegment     = 5
	msgSegmentAck  = 6
	// msgView carries a sealed membership view: pushed by the member that
	// ratcheted it (as the first frame of a short-lived connection, or
	// mid-stream during a range handoff), answered with msgViewAck.
	msgView    = 7
	msgViewAck = 8
	// msgViewReq asks the peer for its current sealed view; the answer is
	// a msgView frame. A joining daemon bootstraps its membership this
	// way from any seed member.
	msgViewReq = 9
	// msgRangeReq asks the peer what it holds for a range (payload: the
	// range's lineage ID); the msgRangeAck answer carries "serving",
	// "standby" or "none". Failover monitors use it to arbitrate which
	// standby holder promotes.
	msgRangeReq = 10
	msgRangeAck = 11

	ackOK     = 0
	ackFenced = 1 // sender's fencing epoch is superseded; stop shipping
	ackResync = 2 // continuity lost (owner checkpointed); re-baseline
	ackError  = 3 // structural/verification failure; re-baseline

	// maxReplFrame bounds one frame. Baselines carry a full snapshot plus
	// WAL tails, so the bound is generous; segments are a few pages.
	maxReplFrame = 1 << 30
)

// hello opens the stream: the shipping member identifies itself, names
// the range (lineage) it is replicating — empty means its own — and
// declares the range's fencing epoch, its shard count and its membership
// view epoch before shipping anything expensive.
type hello struct {
	ID        string
	Range     string
	Fence     uint64
	Shards    uint32
	ViewEpoch uint64
}

// ack answers hello, baseline and segment frames.
type ack struct {
	Code uint8
	Msg  string
}

func writeFrame(w io.Writer, typ uint8, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (uint8, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxReplFrame {
		return 0, nil, fmt.Errorf("cluster: repl frame of %d bytes exceeds limit", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return 0, nil, err
	}
	return hdr[4], p, nil
}

func encodeHello(h hello) []byte {
	b := make([]byte, 0, 4+len(h.ID)+len(h.Range)+20)
	b = binary.BigEndian.AppendUint16(b, uint16(len(h.ID)))
	b = append(b, h.ID...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(h.Range)))
	b = append(b, h.Range...)
	b = binary.BigEndian.AppendUint64(b, h.Fence)
	b = binary.BigEndian.AppendUint32(b, h.Shards)
	b = binary.BigEndian.AppendUint64(b, h.ViewEpoch)
	return b
}

func decodeHello(b []byte) (hello, error) {
	var h hello
	str := func() (string, bool) {
		if len(b) < 2 {
			return "", false
		}
		n := int(binary.BigEndian.Uint16(b[:2]))
		if len(b) < 2+n {
			return "", false
		}
		s := string(b[2 : 2+n])
		b = b[2+n:]
		return s, true
	}
	var ok bool
	if h.ID, ok = str(); !ok {
		return h, fmt.Errorf("cluster: hello truncated")
	}
	if h.Range, ok = str(); !ok {
		return h, fmt.Errorf("cluster: hello truncated")
	}
	if len(b) != 20 {
		return h, fmt.Errorf("cluster: hello length mismatch")
	}
	h.Fence = binary.BigEndian.Uint64(b[:8])
	h.Shards = binary.BigEndian.Uint32(b[8:12])
	h.ViewEpoch = binary.BigEndian.Uint64(b[12:20])
	return h, nil
}

func encodeAck(a ack) []byte {
	b := make([]byte, 0, 1+2+len(a.Msg))
	b = append(b, a.Code)
	b = binary.BigEndian.AppendUint16(b, uint16(len(a.Msg)))
	b = append(b, a.Msg...)
	return b
}

func decodeAck(b []byte) (ack, error) {
	var a ack
	if len(b) < 3 {
		return a, fmt.Errorf("cluster: ack truncated")
	}
	a.Code = b[0]
	n := int(binary.BigEndian.Uint16(b[1:3]))
	if len(b) != 3+n {
		return a, fmt.Errorf("cluster: ack length mismatch")
	}
	a.Msg = string(b[3:])
	return a, nil
}
