package cluster

import (
	"errors"
	"fmt"
	"time"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
	"aisebmt/internal/server"
	"aisebmt/internal/shard"
)

// SmartClient is a ring-aware wire client: it computes each page's owner
// locally, dials nodes lazily, follows NotOwner redirects, and when an
// owner is unreachable walks its successor list — the same order
// failover promotes in — so it finds a promoted range without any
// cluster-wide coordination. Like server.Client it is NOT safe for
// concurrent use; give each worker its own.
type SmartClient struct {
	ms      *Membership
	timeout time.Duration
	dial    func(addr string) (*server.Client, error)

	conns    map[string]*server.Client
	redirect map[string]string // owner ID -> learned wire addr
}

// NewSmartClient builds a client over the member list. timeout bounds
// each dial and each request.
func NewSmartClient(members []Member, timeout time.Duration) (*SmartClient, error) {
	ms, err := NewMembership(members)
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c := &SmartClient{
		ms:       ms,
		timeout:  timeout,
		conns:    map[string]*server.Client{},
		redirect: map[string]string{},
	}
	c.dial = func(addr string) (*server.Client, error) {
		cl, err := server.Dial(addr, c.timeout)
		if err != nil {
			return nil, err
		}
		cl.SetRequestDeadline(c.timeout)
		return cl, nil
	}
	return c, nil
}

// Owner returns the member ID owning address a (per the static ring;
// failover delegation is discovered, not computed).
func (c *SmartClient) Owner(a layout.Addr) string { return c.ms.ring.Owner(a) }

// Members returns the cluster membership the client routes over.
func (c *SmartClient) Members() []Member {
	out := make([]Member, 0, len(c.ms.ids))
	for _, id := range c.ms.ids {
		out = append(out, c.ms.byID[id])
	}
	return out
}

func (c *SmartClient) conn(addr string) (*server.Client, error) {
	if cl := c.conns[addr]; cl != nil {
		return cl, nil
	}
	cl, err := c.dial(addr)
	if err != nil {
		return nil, err
	}
	c.conns[addr] = cl
	return cl, nil
}

func (c *SmartClient) drop(addr string) {
	if cl := c.conns[addr]; cl != nil {
		cl.Close()
		delete(c.conns, addr)
	}
}

// stallRetries is how many times do() re-asks the SAME node that
// answered Overloaded before walking on: an overloaded answer usually
// means the serving node is the right one but momentarily stalled
// (replication stream re-attaching after a rotation or a promotion's
// re-replication catching up), so a short jittered wait at the correct
// node beats hopping to a successor that will just answer NotOwner.
const stallRetries = 2

// stallBackoff returns the jittered wait before stall retry attempt k
// (0-based): ~25ms, ~50ms, spread over [base/2, base).
func stallBackoff(k int) time.Duration {
	base := 25 * time.Millisecond << uint(k)
	return base/2 + time.Duration(int64(time.Now().UnixNano())%int64(base/2))
}

// do walks the candidates for page p: learned redirect, ring owner, then
// successors, following NotOwner answers. The walk is bounded by the
// ring size (a redirect chain can legitimately visit a handoff's old and
// new holder plus successors, but can never need more distinct nodes
// than the cluster has) — and the `tried` set breaks redirect loops:
// a node that already answered is never dialed twice in one walk.
func (c *SmartClient) do(p uint64, op func(cl *server.Client) error) error {
	ownerID := c.ms.ring.OwnerPage(p)
	var targets []string
	if learned := c.redirect[ownerID]; learned != "" {
		targets = append(targets, learned)
	}
	m, _ := c.ms.Member(ownerID)
	targets = append(targets, m.Wire)
	for _, s := range c.ms.Successors(ownerID) {
		targets = append(targets, s.Wire)
	}
	maxWalk := len(c.ms.ids) + 1 // every member once, plus one learned redirect
	tried := map[string]bool{}
	var lastErr error
	hops := 0
	for i := 0; i < len(targets) && hops < maxWalk; i++ {
		addr := targets[i]
		if addr == "" || tried[addr] {
			continue
		}
		tried[addr] = true
		hops++
		cl, err := c.conn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		stalls := 0
	again:
		err = op(cl)
		if err == nil {
			if addr == m.Wire {
				delete(c.redirect, ownerID)
			} else {
				c.redirect[ownerID] = addr
			}
			return nil
		}
		if na, ok := server.NotOwnerAddr(err); ok {
			targets = append(targets[:i+1], append([]string{na}, targets[i+1:]...)...)
			lastErr = err
			continue
		}
		if st, ok := statusOf(err); ok {
			if st == server.StatusOverloaded && stalls < stallRetries {
				// Shed retryably by the node itself (admission control, a
				// stalled replication stream, a promotion in flight): this IS
				// the serving node, so wait out the stall here first.
				time.Sleep(stallBackoff(stalls))
				stalls++
				goto again
			}
			if st.Retryable() {
				// Still transient after the stall retries (or a shed of a
				// different kind): another candidate may hold a promoted
				// copy of this range — keep walking before giving up.
				lastErr = err
				continue
			}
			// A definitive verdict; surface it to the caller.
			return err
		}
		// Transport error: connection (and possibly node) dead.
		c.drop(addr)
		lastErr = err
	}
	if _, ok := statusOf(lastErr); ok {
		return lastErr
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no candidates")
	}
	return fmt.Errorf("%w: page %d (owner %s): %v", server.ErrUnavailable, p, ownerID, lastErr)
}

func statusOf(err error) (server.Status, bool) {
	var se *server.StatusError
	if errors.As(err, &se) {
		return se.Status, true
	}
	return 0, false
}

// Read fetches n plaintext bytes at addr from the serving node.
func (c *SmartClient) Read(a layout.Addr, n int, meta core.Meta) ([]byte, error) {
	var out []byte
	err := c.do(uint64(a)/layout.PageSize, func(cl *server.Client) error {
		b, e := cl.Read(a, n, meta)
		if e == nil {
			out = b
		}
		return e
	})
	return out, err
}

// Write stores data at addr on the serving node.
func (c *SmartClient) Write(a layout.Addr, data []byte, meta core.Meta) error {
	return c.do(uint64(a)/layout.PageSize, func(cl *server.Client) error {
		return cl.Write(a, data, meta)
	})
}

// DirectWrite writes via a specific member with no redirect-following or
// fallback — the fencing probe: a deposed owner must answer NotOwner.
func (c *SmartClient) DirectWrite(memberID string, a layout.Addr, data []byte, meta core.Meta) error {
	m, ok := c.ms.Member(memberID)
	if !ok {
		return fmt.Errorf("cluster: unknown member %q", memberID)
	}
	cl, err := c.conn(m.Wire)
	if err != nil {
		return err
	}
	err = cl.Write(a, data, meta)
	if err != nil {
		if _, ok := statusOf(err); !ok {
			c.drop(m.Wire)
		}
	}
	return err
}

// Close drops every connection.
func (c *SmartClient) Close() error {
	var first error
	for addr, cl := range c.conns {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
		delete(c.conns, addr)
	}
	return first
}

// Retryable reports whether err is worth a backoff retry against the
// cluster: a retryable wire status, or the client-side unavailable
// wrapper (owner dead, promotion pending).
func Retryable(err error) bool {
	return server.Retryable(err) || errors.Is(err, server.ErrUnavailable) || errors.Is(err, shard.ErrReplStalled)
}
