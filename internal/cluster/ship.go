package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"aisebmt/internal/persist"
	"aisebmt/internal/shard"
)

// shipper is the owner side of the replication stream: it attaches to
// the first reachable successor (handshake, then a verified baseline),
// and from then on the store's segment sink ships every committed batch
// and waits for the follower's ack before the batch is acknowledged to
// the client. Replication is strictly synchronous — while no follower is
// attached the sink fails batches with shard.ErrReplStalled, which the
// wire maps to a retryable status. An owner that cannot replicate
// accepts nothing, so a promoted follower is never missing an
// acknowledged write.
type shipper struct {
	n *Node

	mu     sync.Mutex
	conn   net.Conn
	bw     *bufio.Writer
	br     *bufio.Reader
	target Member
	// attached is true while segments can be shipped; fenced is terminal
	// (a follower refused our fencing epoch — we are deposed).
	attached bool
	fenced   bool

	kick chan struct{}
}

func newShipper(n *Node) *shipper {
	return &shipper{n: n, kick: make(chan struct{}, 1)}
}

// wake nudges the attach loop (after a detach) without blocking.
func (s *shipper) wake() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// run is the attach loop: whenever the stream is down it sweeps the
// successor list in order and attaches to the first member that accepts
// a handshake and a baseline. Exponential backoff between sweeps.
func (s *shipper) run() {
	defer s.n.wg.Done()
	backoff := s.n.cfg.AttachBackoff
	for {
		select {
		case <-s.n.closed:
			return
		default:
		}
		s.mu.Lock()
		down := !s.attached && !s.fenced
		s.mu.Unlock()
		if !down {
			select {
			case <-s.n.closed:
				return
			case <-s.kick:
			}
			continue
		}
		if s.attachSweep() {
			backoff = s.n.cfg.AttachBackoff
			continue
		}
		select {
		case <-s.n.closed:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// attachSweep tries each successor once, in deterministic order.
// Returns true once attached (or once fenced — there is nothing left to
// retry; the node is deposed).
func (s *shipper) attachSweep() bool {
	for _, m := range s.n.ms.Successors(s.n.self.ID) {
		select {
		case <-s.n.closed:
			return true
		default:
		}
		s.n.met.attachTries.Inc()
		err := s.attach(m)
		if err == nil {
			return true
		}
		s.mu.Lock()
		fenced := s.fenced
		s.mu.Unlock()
		if fenced {
			return true
		}
		s.n.logf("cluster: attach %s -> %s: %v", s.n.self.ID, m.ID, err)
	}
	return false
}

// attach runs the handshake and ships a fresh baseline to m. On success
// the stream is installed and the node's ownership gate opens.
func (s *shipper) attach(m Member) error {
	conn, err := s.n.cfg.Dialer(s.n.self.ID, m.Repl)
	if err != nil {
		return err
	}
	bw, br := bufio.NewWriterSize(conn, 64<<10), bufio.NewReader(conn)
	fail := func(err error) error {
		conn.Close()
		return err
	}
	deadline := func() { conn.SetDeadline(time.Now().Add(s.n.cfg.IOTimeout)) }

	deadline()
	h := hello{ID: s.n.self.ID, Fence: s.n.cfg.Store.Fence(), Shards: uint32(s.n.shards)}
	if err := writeFrame(bw, msgHello, encodeHello(h)); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	typ, p, err := readFrame(br)
	if err != nil {
		return fail(err)
	}
	if typ != msgHelloAck {
		return fail(fmt.Errorf("cluster: unexpected frame %d for hello ack", typ))
	}
	a, err := decodeAck(p)
	if err != nil {
		return fail(err)
	}
	switch a.Code {
	case ackOK:
	case ackFenced:
		conn.Close()
		s.becomeFenced(a.Msg)
		return nil
	default:
		return fail(fmt.Errorf("cluster: %s refused handshake: code %d %s", m.ID, a.Code, a.Msg))
	}

	// The baseline is exported after the handshake settles fencing, so a
	// deposed owner never pays the export. Export takes the checkpoint
	// lock and each shard writer lock briefly; commits resume as soon as
	// each shard's tail is captured.
	bl, err := s.n.cfg.Store.ExportBaseline()
	if err != nil {
		return fail(fmt.Errorf("cluster: export baseline: %w", err))
	}
	enc := persist.EncodeBaseline(s.n.cfg.Key, bl)
	// A baseline is snapshot-sized; allow it more time than one segment
	// round trip.
	conn.SetDeadline(time.Now().Add(4 * s.n.cfg.IOTimeout))
	if err := writeFrame(bw, msgBaseline, enc); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	typ, p, err = readFrame(br)
	if err != nil {
		return fail(err)
	}
	if typ != msgBaselineAck {
		return fail(fmt.Errorf("cluster: unexpected frame %d for baseline ack", typ))
	}
	if a, err = decodeAck(p); err != nil {
		return fail(err)
	}
	switch a.Code {
	case ackOK:
	case ackFenced:
		conn.Close()
		s.becomeFenced(a.Msg)
		return nil
	default:
		return fail(fmt.Errorf("cluster: %s refused baseline: code %d %s", m.ID, a.Code, a.Msg))
	}
	conn.SetDeadline(time.Time{})

	s.mu.Lock()
	s.conn, s.bw, s.br, s.target, s.attached = conn, bw, br, m, true
	s.mu.Unlock()
	s.n.met.baseShipped.Inc()
	s.n.met.attached.Set(1)
	s.n.logf("cluster: %s attached follower %s (epoch %d, fence %d)", s.n.self.ID, m.ID, bl.Epoch, bl.Fence)
	s.n.resolveReady()
	return nil
}

// becomeFenced records a terminal fencing refusal: the stream stays
// permanently down and the node flips to deposed.
func (s *shipper) becomeFenced(holder string) {
	s.mu.Lock()
	s.fenced = true
	s.attached = false
	s.mu.Unlock()
	s.n.met.attached.Set(0)
	s.n.becomeDeposed(holder)
}

// detachLocked drops the stream (s.mu held) and wakes the attach loop.
func (s *shipper) detachLocked() {
	if s.conn != nil {
		s.conn.Close()
		s.conn, s.bw, s.br = nil, nil, nil
	}
	s.attached = false
	s.n.met.attached.Set(0)
	s.wake()
}

// sink ships one committed batch and waits for the follower's verdict.
// It is called by persist.Store.Commit with the shard's writer lock
// held, before the batch is acknowledged — so it must only move bytes:
// no baseline export (deadlock on the same locks), no blocking beyond
// the IO timeout. A non-nil return fails the batch; the store rewinds
// its log as if the commit never happened.
func (s *shipper) sink(seg *persist.Segment) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fenced {
		return shard.ErrNotOwner
	}
	if !s.attached {
		return shard.ErrReplStalled
	}
	enc := persist.EncodeSegment(s.n.cfg.Key, seg)
	s.conn.SetDeadline(time.Now().Add(s.n.cfg.IOTimeout))
	if err := writeFrame(s.bw, msgSegment, enc); err != nil {
		s.detachLocked()
		return fmt.Errorf("%w: %v", shard.ErrReplStalled, err)
	}
	if err := s.bw.Flush(); err != nil {
		s.detachLocked()
		return fmt.Errorf("%w: %v", shard.ErrReplStalled, err)
	}
	typ, p, err := readFrame(s.br)
	if err != nil {
		s.detachLocked()
		return fmt.Errorf("%w: %v", shard.ErrReplStalled, err)
	}
	if typ != msgSegmentAck {
		s.detachLocked()
		return fmt.Errorf("%w: unexpected frame %d", shard.ErrReplStalled, typ)
	}
	a, err := decodeAck(p)
	if err != nil {
		s.detachLocked()
		return fmt.Errorf("%w: %v", shard.ErrReplStalled, err)
	}
	switch a.Code {
	case ackOK:
		s.n.met.segShipped.Inc()
		return nil
	case ackFenced:
		s.detachLocked()
		s.fenced = true
		// becomeDeposed takes n.mu only; safe under s.mu.
		s.n.becomeDeposed(a.Msg)
		return shard.ErrNotOwner
	case ackResync:
		// Continuity lost (usually our own checkpoint rotated the log
		// epoch). Drop the stream; the attach loop re-baselines.
		s.n.met.resyncs.Inc()
		s.detachLocked()
		return shard.ErrReplStalled
	default:
		s.detachLocked()
		return fmt.Errorf("%w: follower: %s", shard.ErrReplStalled, a.Msg)
	}
}

// close tears the stream down for node shutdown.
func (s *shipper) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.detachLocked()
}
