package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"aisebmt/internal/persist"
	"aisebmt/internal/shard"
)

// shipper is the sending side of one range's replication stream: it
// attaches to the first reachable successor (handshake, then a verified
// baseline), and from then on the range's store hands it every committed
// batch, which it ships and waits to be acknowledged before the batch is
// acknowledged to the client.
//
// One shipper instance serves two roles distinguished by own:
//
//   - the node's own range (own=true): replication is strictly
//     synchronous from the first byte — while no follower is attached the
//     sink fails batches with shard.ErrReplStalled, so an owner that
//     cannot replicate accepts nothing and a promoted follower is never
//     missing an acknowledged write.
//
//   - a re-replication stream for a promoted or handed-off range
//     (own=false): immediately after promotion no standby for the new
//     fencing epoch exists anywhere, so refusing writes buys no safety —
//     the sink acknowledges them unreplicated (they are locally durable)
//     for a bounded grace window while the attach loop establishes a
//     standby. Once a standby has attached the strict rule returns: a
//     detached stream stalls writes, because a standby that missed
//     traffic is exactly the stale copy a failover must never promote.
//
// pin, when set, restricts the attach sweep to one member: a range
// handoff ships its baseline to the designated target, not to whichever
// successor answers first.
type shipper struct {
	n *Node
	// rangeID is the lineage this stream replicates; st is its store
	// (the node's own store, or the promoted range's).
	rangeID string
	st      *persist.Store
	own     bool

	mu     sync.Mutex
	conn   net.Conn
	bw     *bufio.Writer
	br     *bufio.Reader
	target Member
	pin    string
	// attached is true while segments can be shipped; fenced is terminal
	// (a peer refused our fencing epoch — the range is served elsewhere).
	attached bool
	fenced   bool
	// grace bounds the unreplicated-ack window for re-replication
	// streams; zero for own streams and after the first attach.
	grace time.Time
	// windowStart marks when the current single-copy window opened
	// (shipper creation or detach), for the window-duration metric.
	windowStart time.Time

	kick chan struct{}
}

func newShipper(n *Node, rangeID string, st *persist.Store, own bool) *shipper {
	s := &shipper{
		n:           n,
		rangeID:     rangeID,
		st:          st,
		own:         own,
		windowStart: time.Now(),
		kick:        make(chan struct{}, 1),
	}
	if !own {
		s.grace = time.Now().Add(n.cfg.RereplGrace)
	}
	return s
}

// wake nudges the attach loop (after a detach) without blocking.
func (s *shipper) wake() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// jitter spreads d over [d/2, d) so detached shippers across the cluster
// do not hammer the same successor in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	ns := time.Now().UnixNano()
	span := int64(d) / 2
	return time.Duration(int64(d)/2 + (ns^(ns>>17))%span)
}

// run is the attach loop: whenever the stream is down it sweeps the
// candidate list in order and attaches to the first member that accepts
// a handshake and a baseline. Jittered exponential backoff between
// sweeps.
func (s *shipper) run() {
	defer s.n.wg.Done()
	backoff := s.n.cfg.AttachBackoff
	for {
		select {
		case <-s.n.closed:
			return
		default:
		}
		s.mu.Lock()
		down := !s.attached && !s.fenced
		s.mu.Unlock()
		if !down {
			select {
			case <-s.n.closed:
				return
			case <-s.kick:
			}
			continue
		}
		if s.attachSweep() {
			backoff = s.n.cfg.AttachBackoff
			continue
		}
		select {
		case <-s.n.closed:
			return
		case <-time.After(jitter(backoff)):
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// candidates is the attach order: the pinned target alone when a handoff
// is in flight, otherwise this node's successors — so a re-replication
// stream lands the standby on the new holder's own ring successor, and a
// deposed member coming back (it sits in the successor list too) is
// re-attached without operator intervention.
func (s *shipper) candidates() []Member {
	s.mu.Lock()
	pin := s.pin
	s.mu.Unlock()
	if pin != "" {
		if m, ok := s.n.membership().Member(pin); ok {
			return []Member{m}
		}
		return nil
	}
	return s.n.membership().Successors(s.n.self.ID)
}

// attachSweep tries each candidate once, in deterministic order.
// Returns true once attached (or once fenced — there is nothing left to
// retry; the range is served elsewhere).
func (s *shipper) attachSweep() bool {
	for _, m := range s.candidates() {
		select {
		case <-s.n.closed:
			return true
		default:
		}
		if m.ID == s.n.self.ID {
			continue
		}
		if s.own {
			s.n.met.attachTries.Inc()
		} else {
			s.n.met.rereplTries.Inc()
		}
		err := s.attach(m)
		if err == nil {
			return true
		}
		s.mu.Lock()
		fenced := s.fenced
		s.mu.Unlock()
		if fenced {
			return true
		}
		s.n.logf("cluster: attach %s[%s] -> %s: %v", s.n.self.ID, s.rangeID, m.ID, err)
	}
	return false
}

// attach runs the handshake and ships a fresh baseline to m. On success
// the stream is installed; for an own stream the node's ownership gate
// also opens.
func (s *shipper) attach(m Member) error {
	conn, err := s.n.cfg.Dialer(s.n.self.ID, m.Repl)
	if err != nil {
		return err
	}
	bw, br := bufio.NewWriterSize(conn, 64<<10), bufio.NewReader(conn)
	fail := func(err error) error {
		conn.Close()
		return err
	}
	deadline := func() { conn.SetDeadline(time.Now().Add(s.n.cfg.IOTimeout)) }

	deadline()
	h := hello{ID: s.n.self.ID, Fence: s.st.Fence(), Shards: uint32(s.n.shards), ViewEpoch: s.n.curView().Epoch}
	if !s.own {
		h.Range = s.rangeID
	}
	if err := writeFrame(bw, msgHello, encodeHello(h)); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	typ, p, err := readFrame(br)
	if err != nil {
		return fail(err)
	}
	if typ != msgHelloAck {
		return fail(fmt.Errorf("cluster: unexpected frame %d for hello ack", typ))
	}
	a, err := decodeAck(p)
	if err != nil {
		return fail(err)
	}
	switch a.Code {
	case ackOK:
	case ackFenced:
		conn.Close()
		s.becomeFenced(a.Msg)
		return nil
	default:
		return fail(fmt.Errorf("cluster: %s refused handshake: code %d %s", m.ID, a.Code, a.Msg))
	}

	// The baseline is exported after the handshake settles fencing, so a
	// deposed owner never pays the export. Export takes the checkpoint
	// lock and each shard writer lock briefly; commits resume as soon as
	// each shard's tail is captured.
	bl, err := s.st.ExportBaseline()
	if err != nil {
		return fail(fmt.Errorf("cluster: export baseline: %w", err))
	}
	enc := persist.EncodeBaseline(s.n.cfg.Key, bl)
	// A baseline is snapshot-sized; allow it more time than one segment
	// round trip.
	conn.SetDeadline(time.Now().Add(4 * s.n.cfg.IOTimeout))
	if err := writeFrame(bw, msgBaseline, enc); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	typ, p, err = readFrame(br)
	if err != nil {
		return fail(err)
	}
	if typ != msgBaselineAck {
		return fail(fmt.Errorf("cluster: unexpected frame %d for baseline ack", typ))
	}
	if a, err = decodeAck(p); err != nil {
		return fail(err)
	}
	switch a.Code {
	case ackOK:
	case ackFenced:
		conn.Close()
		s.becomeFenced(a.Msg)
		return nil
	default:
		return fail(fmt.Errorf("cluster: %s refused baseline: code %d %s", m.ID, a.Code, a.Msg))
	}
	conn.SetDeadline(time.Time{})

	s.mu.Lock()
	s.conn, s.bw, s.br, s.target, s.attached = conn, bw, br, m, true
	// The single-copy window closes; from here on the strict synchronous
	// rule applies even to re-replication streams (a standby exists that
	// a failover could promote, so it must see every acknowledged write).
	s.grace = time.Time{}
	window := time.Since(s.windowStart)
	s.mu.Unlock()
	s.n.met.baseShipped.Inc()
	if s.own {
		s.n.met.attached.Set(1)
	} else {
		s.n.rereplDelta(1)
		s.n.met.rereplWindowMs.Set(window.Milliseconds())
	}
	s.n.logf("cluster: %s[%s] attached follower %s (epoch %d, fence %d, window %s)",
		s.n.self.ID, s.rangeID, m.ID, bl.Epoch, bl.Fence, window.Round(time.Millisecond))
	if s.own {
		s.n.resolveReady()
	}
	return nil
}

// becomeFenced records a terminal fencing refusal: the stream stays
// permanently down and the range flips to deposed here.
func (s *shipper) becomeFenced(holder string) {
	s.mu.Lock()
	s.fenced = true
	s.attached = false
	s.mu.Unlock()
	if s.own {
		s.n.met.attached.Set(0)
		s.n.becomeDeposed(holder)
	} else {
		s.n.deposeRange(s.rangeID, holder)
	}
}

// detachLocked drops the stream (s.mu held) and wakes the attach loop.
// For re-replication streams it reopens the window clock — but not the
// grace window: an attached standby existed, so writes must stall until
// a fresh one does.
func (s *shipper) detachLocked() {
	if s.conn != nil {
		s.conn.Close()
		s.conn, s.bw, s.br = nil, nil, nil
	}
	if s.attached {
		s.windowStart = time.Now()
		if !s.own {
			s.n.rereplDelta(-1)
		}
	}
	s.attached = false
	if s.own {
		s.n.met.attached.Set(0)
	}
	s.wake()
}

// retarget pins (or with "" unpins) the attach sweep to one member and
// drops any current stream so the next attach lands there. Used by range
// handoffs.
func (s *shipper) retarget(memberID string) {
	s.mu.Lock()
	s.pin = memberID
	if s.attached && s.target.ID != memberID {
		s.detachLocked()
	} else {
		s.wake()
	}
	s.mu.Unlock()
}

// depose terminally stops this stream: the range it replicated is now
// served elsewhere (handed off), so there is nothing left to ship.
func (s *shipper) depose() {
	s.mu.Lock()
	s.fenced = true
	s.detachLocked()
	s.mu.Unlock()
}

// attachedTo reports the attached peer's ID, or "".
func (s *shipper) attachedTo() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.attached {
		return ""
	}
	return s.target.ID
}

// reevaluate re-checks an attached stream's placement against the ring:
// a stream that attached to a fallback successor (the preferred one was
// unreachable during the sweep — a boot or failover race) is dropped as
// soon as a better-placed successor answers probes again, so the next
// sweep lands the standby where the arbitration walk looks for it
// first. The common case — already attached to the first live successor
// — pays no probe at all; probes are spent only on members ahead of the
// current target in ring order. Pinned (handoff), fenced and detached
// streams are left alone.
func (s *shipper) reevaluate() {
	s.mu.Lock()
	target := s.target.ID
	skip := !s.attached || s.fenced || s.pin != ""
	s.mu.Unlock()
	if skip {
		return
	}
	for _, m := range s.n.membership().Successors(s.n.self.ID) {
		if m.ID == s.n.self.ID {
			continue
		}
		if m.ID == target {
			return // already on the most-preferred reachable successor
		}
		if s.n.cfg.Probe(s.n.self.ID, m) != nil {
			continue
		}
		// m is alive and preferred over the current target: drop the
		// stream so the attach sweep re-places the standby there.
		s.mu.Lock()
		if s.attached && s.target.ID == target {
			s.n.met.rereplMoves.Inc()
			s.n.logf("cluster: %s[%s] standby parked on fallback %s; preferred successor %s reachable — re-placing",
				s.n.self.ID, s.rangeID, target, m.ID)
			s.detachLocked()
		}
		s.mu.Unlock()
		return
	}
}

// rotated is the store's checkpoint-rotation hook: the WAL epoch just
// advanced, so the attached stream's continuity is gone. Restart it
// proactively from a fresh post-rotation baseline instead of letting the
// next commit (possibly mid-handoff) die on the follower's continuity
// check and stall a client write.
func (s *shipper) rotated(uint64) {
	s.mu.Lock()
	if s.attached {
		s.n.met.resyncs.Inc()
		s.detachLocked()
	}
	s.mu.Unlock()
}

// pushView sends a sealed membership view over the attached stream and
// waits for the peer's ack — the commit point of a range handoff: once
// the target acks, it has promoted the standby and serves the range.
func (s *shipper) pushView(sealed []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.attached {
		return fmt.Errorf("cluster: stream down")
	}
	s.conn.SetDeadline(time.Now().Add(s.n.cfg.IOTimeout))
	if err := writeFrame(s.bw, msgView, sealed); err != nil {
		s.detachLocked()
		return err
	}
	if err := s.bw.Flush(); err != nil {
		s.detachLocked()
		return err
	}
	typ, p, err := readFrame(s.br)
	if err != nil {
		s.detachLocked()
		return err
	}
	s.conn.SetDeadline(time.Time{})
	if typ != msgViewAck {
		s.detachLocked()
		return fmt.Errorf("cluster: unexpected frame %d for view ack", typ)
	}
	a, err := decodeAck(p)
	if err != nil {
		s.detachLocked()
		return err
	}
	if a.Code != ackOK {
		return fmt.Errorf("cluster: view refused: code %d %s", a.Code, a.Msg)
	}
	return nil
}

// sink ships one committed batch and waits for the follower's verdict.
// It is called by persist.Store.Commit with the shard's writer lock
// held, before the batch is acknowledged — so it must only move bytes:
// no baseline export (deadlock on the same locks), no blocking beyond
// the IO timeout. A non-nil return fails the batch; the store rewinds
// its log as if the commit never happened.
func (s *shipper) sink(seg *persist.Segment) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fenced {
		return shard.ErrNotOwner
	}
	if !s.attached {
		if !s.grace.IsZero() && time.Now().Before(s.grace) {
			// Re-replication grace: no standby for this fencing epoch
			// exists anywhere yet, so the write is acknowledged on local
			// durability alone while the attach loop closes the window.
			s.n.met.rereplUnrepl.Inc()
			return nil
		}
		if !s.own {
			s.n.met.rereplStalled.Inc()
		}
		return shard.ErrReplStalled
	}
	enc := persist.EncodeSegment(s.n.cfg.Key, seg)
	s.conn.SetDeadline(time.Now().Add(s.n.cfg.IOTimeout))
	if err := writeFrame(s.bw, msgSegment, enc); err != nil {
		s.detachLocked()
		return fmt.Errorf("%w: %v", shard.ErrReplStalled, err)
	}
	if err := s.bw.Flush(); err != nil {
		s.detachLocked()
		return fmt.Errorf("%w: %v", shard.ErrReplStalled, err)
	}
	typ, p, err := readFrame(s.br)
	if err != nil {
		s.detachLocked()
		return fmt.Errorf("%w: %v", shard.ErrReplStalled, err)
	}
	if typ != msgSegmentAck {
		s.detachLocked()
		return fmt.Errorf("%w: unexpected frame %d", shard.ErrReplStalled, typ)
	}
	a, err := decodeAck(p)
	if err != nil {
		s.detachLocked()
		return fmt.Errorf("%w: %v", shard.ErrReplStalled, err)
	}
	switch a.Code {
	case ackOK:
		s.n.met.segShipped.Inc()
		return nil
	case ackFenced:
		s.detachLocked()
		s.fenced = true
		// becomeDeposed/deposeRange take n.mu only; safe under s.mu.
		if s.own {
			s.n.becomeDeposed(a.Msg)
		} else {
			s.n.deposeRange(s.rangeID, a.Msg)
		}
		return shard.ErrNotOwner
	case ackResync:
		// Continuity lost (usually our own checkpoint rotated the log
		// epoch). Drop the stream; the attach loop re-baselines.
		s.n.met.resyncs.Inc()
		s.detachLocked()
		return shard.ErrReplStalled
	default:
		s.detachLocked()
		return fmt.Errorf("%w: follower: %s", shard.ErrReplStalled, a.Msg)
	}
}

// close tears the stream down for node shutdown.
func (s *shipper) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.detachLocked()
}
