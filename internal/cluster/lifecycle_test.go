package cluster

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
	"aisebmt/internal/persist"
	"aisebmt/internal/server"
)

// Lifecycle tests: automatic re-replication after failover, ring
// membership changes (join/leave), fenced rejoin of deposed members, and
// the edge cases between them. They share the crash harness from
// cluster_test.go and verify every scenario against a shadow model of
// acknowledged writes — the invariant under test is always "zero
// acknowledged writes lost, exactly one owner".

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	end := time.Now().Add(d)
	for time.Now().Before(end) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", msg)
}

// lineageSuccessors returns the ring-order successor IDs of id over the
// static member list — the deterministic attach / promotion order.
func (tc *testCluster) lineageSuccessors(id string) []string {
	ms, err := NewMembership(tc.members)
	if err != nil {
		tc.t.Fatal(err)
	}
	var out []string
	for _, m := range ms.Successors(id) {
		out = append(out, m.ID)
	}
	return out
}

// pagesOwnedBy lists pages (of the first `limit`) the lineage ring
// assigns to lineage l.
func pagesOwnedBy(lineages []string, l string, limit uint64) []uint64 {
	ring := NewRing(lineages)
	var out []uint64
	for p := uint64(0); p < limit; p++ {
		if ring.OwnerPage(p) == l {
			out = append(out, p)
		}
	}
	return out
}

// restart reboots a crashed founding member on its original addresses
// and data directory — the stale-data-dir rejoin path. The old in-process
// stack is abandoned exactly as a SIGKILL would leave it.
func (tc *testCluster) restart(id string) *testNode {
	tc.t.Helper()
	var m Member
	for _, x := range tc.members {
		if x.ID == id {
			m = x
		}
	}
	if m.ID == "" {
		tc.t.Fatalf("restart: unknown member %s", id)
	}
	wire, err := net.Listen("tcp", m.Wire)
	if err != nil {
		tc.t.Fatalf("restart %s: rebind wire: %v", id, err)
	}
	repl, err := net.Listen("tcp", m.Repl)
	if err != nil {
		tc.t.Fatalf("restart %s: rebind repl: %v", id, err)
	}
	tc.w.setDown(id, false)
	n := tc.boot(m, wire, repl, false, nil)
	tc.nodes[id] = n
	return n
}

// join admits a fresh member id through a live seed's admin op and boots
// its daemon from the fetched view, like secmemd -cluster-join does.
func (tc *testCluster) join(id, seed string) *testNode {
	tc.t.Helper()
	wire, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tc.t.Fatal(err)
	}
	repl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tc.t.Fatal(err)
	}
	m := Member{ID: id, Wire: wire.Addr().String(), Health: "127.0.0.1:1", Repl: repl.Addr().String()}
	tc.w.mu.Lock()
	tc.w.byAddr[m.Wire] = id
	tc.w.byAddr[m.Repl] = id
	tc.w.mu.Unlock()
	spec := fmt.Sprintf("%s=%s/%s/%s", m.ID, m.Wire, m.Health, m.Repl)
	if _, err := tc.nodes[seed].node.ClusterJoin(spec); err != nil {
		tc.t.Fatalf("ClusterJoin(%s): %v", spec, err)
	}
	v, err := FetchView(tc.members0(seed).Repl, testKey, 2*time.Second)
	if err != nil {
		tc.t.Fatalf("FetchView from %s: %v", seed, err)
	}
	if _, ok := v.member(id); !ok {
		tc.t.Fatalf("joined view %d does not list %s", v.Epoch, id)
	}
	n := tc.boot(m, wire, repl, false, v)
	tc.nodes[id] = n
	return n
}

func (tc *testCluster) members0(id string) Member {
	for _, m := range tc.members {
		if m.ID == id {
			return m
		}
	}
	tc.t.Fatalf("unknown member %s", id)
	return Member{}
}

// TestLifecycleRereplAfterFailover: after a promotion the new owner
// automatically re-establishes a standby for the adopted range on its
// own successor, closing the single-copy window without operator help.
func TestLifecycleRereplAfterFailover(t *testing.T) {
	tc := startCluster(t, 3, false)
	c := tc.client()
	lineages := []string{"n1", "n2", "n3"}
	ring := NewRing(lineages)
	acked := map[layout.Addr]byte{}

	for p := uint64(0); p < 16; p++ {
		a := blockAddr(p, int(p)%4)
		v := byte(0x30) ^ byte(p)
		if err := retry(5*time.Second, func() error { return c.Write(a, fillByte(a, v), core.Meta{}) }); err != nil {
			t.Fatalf("write page %d: %v", p, err)
		}
		acked[a] = v
	}

	victim := ring.OwnerPage(0)
	succ := tc.lineageSuccessors(victim)
	promoter, third := succ[0], succ[1]
	tc.kill(victim)

	a0 := blockAddr(0, 0)
	if err := retry(10*time.Second, func() error { return c.Write(a0, fillByte(a0, 0x71), core.Meta{}) }); err != nil {
		t.Fatalf("victim range never recovered: %v", err)
	}
	acked[a0] = 0x71

	// The promoted range re-replicates: the promoter's stream attaches a
	// standby for the victim's lineage on the remaining member.
	pn, tn := tc.nodes[promoter], tc.nodes[third]
	waitFor(t, 10*time.Second, func() bool { return tn.node.holdsStandby(victim) },
		fmt.Sprintf("%s never received a re-replication standby for %s", third, victim))
	waitFor(t, 5*time.Second, func() bool { return pn.node.met.rereplAttached.Load() == 1 },
		"re-replication attach gauge never rose")
	if got := pn.node.met.rereplTries.Load(); got == 0 {
		t.Error("rerepl attach attempts counter never incremented")
	}

	// Writes keep flowing synchronously and nothing acknowledged is lost.
	for p := uint64(0); p < 16; p++ {
		a := blockAddr(p, int(p)%4)
		v := byte(0x40) ^ byte(p)
		if err := retry(10*time.Second, func() error { return c.Write(a, fillByte(a, v), core.Meta{}) }); err != nil {
			t.Fatalf("post-failover write page %d: %v", p, err)
		}
		acked[a] = v
	}
	for a, v := range acked {
		got, err := c.Read(a, layout.BlockSize, core.Meta{})
		if err != nil {
			t.Fatalf("read %#x: %v", uint64(a), err)
		}
		if want := fillByte(a, v); got[0] != want[0] {
			t.Fatalf("addr %#x: got %#x want %#x — acked write lost", uint64(a), got[0], want[0])
		}
	}
}

// TestLifecycleRereplSurvivesStandbyDeath: kill the member that received
// the re-replication standby while the promoted range depends on it; the
// stream must walk on to the next successor and re-close the window.
func TestLifecycleRereplSurvivesStandbyDeath(t *testing.T) {
	tc := startCluster(t, 4, false)
	c := tc.client()
	lineages := []string{"n1", "n2", "n3", "n4"}
	ring := NewRing(lineages)
	acked := map[layout.Addr]byte{}

	victimPages := pagesOwnedBy(lineages, ring.OwnerPage(0), 16)
	writeVictim := func(tag byte, budget time.Duration) {
		for _, p := range victimPages {
			a := blockAddr(p, int(p)%4)
			v := tag ^ byte(p)
			if err := retry(budget, func() error { return c.Write(a, fillByte(a, v), core.Meta{}) }); err != nil {
				t.Fatalf("write page %d: %v", p, err)
			}
			acked[a] = v
		}
	}
	writeVictim(0x50, 5*time.Second)

	victim := ring.OwnerPage(0)
	promoter := tc.lineageSuccessors(victim)[0]
	tc.kill(victim)

	a0 := blockAddr(victimPages[0], 0)
	if err := retry(10*time.Second, func() error { return c.Write(a0, fillByte(a0, 0x51), core.Meta{}) }); err != nil {
		t.Fatalf("victim range never recovered: %v", err)
	}
	acked[a0] = 0x51

	// The standby for the promoted range lands on the promoter's first
	// live successor. Kill it — mid-re-replication from the cluster's
	// point of view — and the stream must re-attach to the survivor.
	var standbyHolder string
	waitFor(t, 10*time.Second, func() bool {
		for id, n := range tc.nodes {
			if id != promoter && !n.dead && n.node.holdsStandby(victim) {
				standbyHolder = id
				return true
			}
		}
		return false
	}, "no member received the re-replication standby")
	tc.kill(standbyHolder)
	t.Logf("killed standby holder %s during re-replication of %s", standbyHolder, victim)

	var survivor string
	for id, n := range tc.nodes {
		if !n.dead && id != promoter {
			survivor = id
		}
	}
	// An attached stream only notices its peer died when it ships a
	// segment, so keep writing: the writes stall retryably over the break
	// and resume once the stream re-attaches on the survivor.
	writeVictim(0x60, 20*time.Second)
	waitFor(t, 15*time.Second, func() bool { return tc.nodes[survivor].node.holdsStandby(victim) },
		fmt.Sprintf("re-replication stream never re-attached on %s", survivor))
	for a, v := range acked {
		got, err := c.Read(a, layout.BlockSize, core.Meta{})
		if err != nil {
			t.Fatalf("read %#x: %v", uint64(a), err)
		}
		if want := fillByte(a, v); got[0] != want[0] {
			t.Fatalf("addr %#x: got %#x want %#x — acked write lost", uint64(a), got[0], want[0])
		}
	}
}

// TestLifecycleRereplPlacementRevert: a re-replication standby that
// landed on a fallback successor — the preferred one was unreachable
// while the stream swept after a promotion — migrates back to the
// preferred member at the next checkpoint rotation of the promoter's own
// store, and the fallback's stale copy is reaped. Before the rotate-hook
// re-evaluation, an attached stream never re-swept, so the standby sat
// on the fallback forever and failover arbitration kept looking for it
// in the wrong place.
func TestLifecycleRereplPlacementRevert(t *testing.T) {
	tc := startCluster(t, 4, false)
	c := tc.client()
	lineages := []string{"n1", "n2", "n3", "n4"}
	ring := NewRing(lineages)
	acked := map[layout.Addr]byte{}
	writeAll := func(tag byte, budget time.Duration) {
		for p := uint64(0); p < 16; p++ {
			a := blockAddr(p, int(p)%4)
			v := tag ^ byte(p)
			if err := retry(budget, func() error { return c.Write(a, fillByte(a, v), core.Meta{}) }); err != nil {
				t.Fatalf("write page %d: %v", p, err)
			}
			acked[a] = v
		}
	}
	writeAll(0x10, 5*time.Second)

	victim := ring.OwnerPage(0)
	promoter := tc.lineageSuccessors(victim)[0]
	// The promoter's preferred standby target is its first live ring
	// successor; the next live one is the fallback the race parks on.
	var preferred, fallback string
	for _, id := range tc.lineageSuccessors(promoter) {
		if id == victim || id == promoter {
			continue
		}
		if preferred == "" {
			preferred = id
		} else if fallback == "" {
			fallback = id
		}
	}
	t.Logf("victim %s, promoter %s, preferred %s, fallback %s", victim, promoter, preferred, fallback)

	// The race: the preferred successor is unreachable from the promoter
	// exactly while re-replication establishes the adopted range's standby.
	tc.w.partition(promoter, preferred, true)
	tc.kill(victim)
	a0 := blockAddr(0, 0)
	if err := retry(10*time.Second, func() error { return c.Write(a0, fillByte(a0, 0x71), core.Meta{}) }); err != nil {
		t.Fatalf("victim range never recovered: %v", err)
	}
	acked[a0] = 0x71
	waitFor(t, 10*time.Second, func() bool { return tc.nodes[fallback].node.holdsStandby(victim) },
		fmt.Sprintf("standby for %s never landed on fallback %s", victim, fallback))
	// The re-evaluation tick only moves an *attached* stream (a detached
	// one re-sweeps in preferred order by itself); wait out the window
	// between the fallback importing the baseline and the promoter
	// processing its ack.
	pn := tc.nodes[promoter]
	waitFor(t, 10*time.Second, func() bool { return pn.node.met.rereplAttached.Load() >= 1 },
		"re-replication stream never finished attaching to the fallback")

	// Heal. An attached stream has no reason to resweep on its own: the
	// standby stays parked until the next rotation tick re-evaluates it.
	tc.w.partition(promoter, preferred, false)
	if got := pn.node.met.rereplMoves.Load(); got != 0 {
		t.Fatalf("placement moved before the rotation tick (%d moves)", got)
	}
	if err := pn.store.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Writes keep flowing while the stream re-baselines on the preferred
	// member, and the fallback's stale copy is reaped by its monitor.
	writeAll(0x20, 20*time.Second)
	waitFor(t, 15*time.Second, func() bool { return tc.nodes[preferred].node.holdsStandby(victim) },
		fmt.Sprintf("standby for %s never moved to preferred successor %s", victim, preferred))
	if got := pn.node.met.rereplMoves.Load(); got == 0 {
		t.Error("placement move not counted")
	}
	waitFor(t, 15*time.Second, func() bool { return !tc.nodes[fallback].node.holdsStandby(victim) },
		fmt.Sprintf("stale standby on fallback %s never reaped", fallback))

	for a, v := range acked {
		got, err := c.Read(a, layout.BlockSize, core.Meta{})
		if err != nil {
			t.Fatalf("read %#x: %v", uint64(a), err)
		}
		if want := fillByte(a, v); got[0] != want[0] {
			t.Fatalf("addr %#x: got %#x want %#x — acked write lost in the placement move", uint64(a), got[0], want[0])
		}
	}
}

// TestLifecycleJoinLeave: a member joins through the admin op and a
// fetched view, immediately hosts redirects, and a leaving member hands
// every range off with zero acknowledged-write loss. The retired ID is
// burned: a restart under it is refused.
func TestLifecycleJoinLeave(t *testing.T) {
	tc := startCluster(t, 3, false)
	c := tc.client()
	lineages := []string{"n1", "n2", "n3"}
	acked := map[layout.Addr]byte{}
	writeAll := func(tag byte, budget time.Duration) {
		for p := uint64(0); p < 16; p++ {
			a := blockAddr(p, int(p)%4)
			v := tag ^ byte(p)
			if err := retry(budget, func() error { return c.Write(a, fillByte(a, v), core.Meta{}) }); err != nil {
				t.Fatalf("write page %d: %v", p, err)
			}
			acked[a] = v
		}
	}
	writeAll(0x10, 5*time.Second)

	j := tc.join("n9", "n2")
	if j.node.selfLineage != "" {
		t.Fatalf("joiner founded lineage %q, want none", j.node.selfLineage)
	}
	// The join ratcheted every live member to the new epoch.
	for _, id := range lineages {
		waitFor(t, 5*time.Second, func() bool { return tc.nodes[id].node.curView().Epoch == 1 },
			fmt.Sprintf("%s never applied the join epoch", id))
	}
	// A lineage-less member serves nothing from its local pool.
	cl, err := server.Dial(j.node.self.Wire, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	a := blockAddr(0, 0)
	if werr := cl.Write(a, fillByte(a, 1), core.Meta{}); werr == nil {
		t.Fatal("joiner acknowledged a write for a range it does not serve")
	}
	cl.Close()
	writeAll(0x20, 5*time.Second)

	// n1 retires: every range it serves moves through a verified handoff.
	leaver := tc.nodes["n1"]
	if _, err := leaver.node.ClusterLeave("n1"); err != nil {
		t.Fatalf("ClusterLeave: %v", err)
	}
	if got := leaver.node.met.handoffs.Load(); got != 1 {
		t.Errorf("leaver completed %d handoffs, want 1", got)
	}
	final := leaver.node.curView()
	if !final.isRemoved("n1") {
		t.Fatal("final view does not mark n1 removed")
	}
	newHolder := final.servingMember("n1")
	if newHolder == "n1" || newHolder == "" {
		t.Fatalf("lineage n1 still assigned to %q after leave", newHolder)
	}
	t.Logf("lineage n1 handed to %s; final epoch %d", newHolder, final.Epoch)

	// The retired shell redirects, the new holder serves, nothing is lost.
	writeAll(0x30, 10*time.Second)
	for a, v := range acked {
		got, err := c.Read(a, layout.BlockSize, core.Meta{})
		if err != nil {
			t.Fatalf("read %#x after leave: %v", uint64(a), err)
		}
		if want := fillByte(a, v); got[0] != want[0] {
			t.Fatalf("addr %#x: got %#x want %#x — acked write lost in handoff", uint64(a), got[0], want[0])
		}
	}

	// The removed ID is burned: booting it again is refused.
	leaver.dead = true
	tc.shutdownNode(leaver)
	st, err := persist.Open(persist.Options{Dir: leaver.dir, Key: testKey, Fsync: persist.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	pool, _, err := st.Recover(testShardCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	_, err = NewNode(Config{
		Self: "n1", Members: tc.members, Pool: pool, Store: st,
		ShardCfg: testShardCfg(), Key: testKey,
		DataDir: filepath.Join(tc.dir, "n1"), Fsync: persist.FsyncAlways,
	})
	if err == nil || !strings.Contains(err.Error(), "removed") {
		t.Fatalf("removed member rebooted: err=%v, want removed-member refusal", err)
	}
}

// shutdownNode gracefully stops one member outside the cleanup path.
func (tc *testCluster) shutdownNode(n *testNode) {
	tc.t.Helper()
	n.wireLn.kill()
	n.node.Close()
	n.store.Close()
}

// TestLifecycleJoinerDeathMidHandoff: the handoff target dies while the
// baseline is in flight. The handoff times out, ownership never moves,
// and the old holder resumes serving with its normal replication stream.
func TestLifecycleJoinerDeathMidHandoff(t *testing.T) {
	if testing.Short() {
		t.Skip("handoff abort rides out the full attach deadline")
	}
	tc := startCluster(t, 3, false)
	c := tc.client()
	acked := map[layout.Addr]byte{}
	writeAll := func(tag byte, budget time.Duration) {
		for p := uint64(0); p < 16; p++ {
			a := blockAddr(p, int(p)%4)
			v := tag ^ byte(p)
			if err := retry(budget, func() error { return c.Write(a, fillByte(a, v), core.Meta{}) }); err != nil {
				t.Fatalf("write page %d: %v", p, err)
			}
			acked[a] = v
		}
	}
	writeAll(0x10, 5*time.Second)

	tc.join("n9", "n1")
	// Cut the holder off from the joiner, then kill the joiner outright
	// shortly after the handoff pins its stream to it.
	tc.w.partition("n2", "n9", true)
	errc := make(chan error, 1)
	go func() { errc <- tc.nodes["n2"].node.handoff("n2", "n9") }()
	time.Sleep(50 * time.Millisecond)
	tc.kill("n9")

	epochBefore := tc.nodes["n2"].node.curView().Epoch
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("handoff to a dead joiner reported success")
		}
		t.Logf("handoff aborted as expected: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("handoff neither completed nor aborted")
	}
	if got := tc.nodes["n2"].node.curView(); got.servingMember("n2") != "n2" {
		t.Fatalf("ownership of n2 moved to %q despite aborted handoff", got.servingMember("n2"))
	}
	if got := tc.nodes["n2"].node.curView().Epoch; got != epochBefore {
		t.Fatalf("epoch ratcheted %d -> %d by an aborted handoff", epochBefore, got)
	}

	// The holder resumes: its stream re-attaches to a real successor and
	// every acknowledged write is still there.
	writeAll(0x20, 15*time.Second)
	for a, v := range acked {
		got, err := c.Read(a, layout.BlockSize, core.Meta{})
		if err != nil {
			t.Fatalf("read %#x: %v", uint64(a), err)
		}
		if want := fillByte(a, v); got[0] != want[0] {
			t.Fatalf("addr %#x: got %#x want %#x", uint64(a), got[0], want[0])
		}
	}
}

// TestLifecycleFencedRejoin: a deposed member restarts on its stale data
// dir, is fenced by the promoted holder, receives a fresh verified
// baseline as a follower (twice — restarts must be idempotent), and
// finally takes its range back when the holder dies.
func TestLifecycleFencedRejoin(t *testing.T) {
	tc := startCluster(t, 3, false)
	c := tc.client()
	lineages := []string{"n1", "n2", "n3"}
	ring := NewRing(lineages)
	acked := map[layout.Addr]byte{}

	victim := ring.OwnerPage(0)
	succ := tc.lineageSuccessors(victim)
	promoter, third := succ[0], succ[1]
	victimPages := pagesOwnedBy(lineages, victim, 16)
	promoterPages := pagesOwnedBy(lineages, promoter, 16)
	writePages := func(pages []uint64, tag byte, budget time.Duration) {
		for _, p := range pages {
			a := blockAddr(p, int(p)%4)
			v := tag ^ byte(p)
			if err := retry(budget, func() error { return c.Write(a, fillByte(a, v), core.Meta{}) }); err != nil {
				t.Fatalf("write page %d: %v", p, err)
			}
			acked[a] = v
		}
	}
	writePages(victimPages, 0x11, 5*time.Second)
	writePages(promoterPages, 0x12, 5*time.Second)

	tc.kill(victim)
	writePages(victimPages, 0x21, 10*time.Second) // forces promotion on the promoter
	if got := tc.nodes[promoter].node.met.failovers.Load(); got != 1 {
		t.Fatalf("promoter %s recorded %d failovers, want 1", promoter, got)
	}
	// Deterministic topology for the rest: drop the third member so the
	// rejoined victim is the only candidate for every stream. With no
	// live standby target left, the promoted range is single-copy until
	// the victim comes back.
	tc.kill(third)

	// First rejoin: the stale victim restarts, its own stream dials the
	// promoted holder, and the fence answer deposes it — no operator
	// steps.
	vn := tc.restart(victim)
	waitFor(t, 10*time.Second, func() bool { _, dep := vn.node.isDeposed(); return dep },
		"restarted victim never learned it was deposed")
	// Writes break the holder's dead streams (the third member still
	// looks attached until a segment ships) and stall retryably until
	// fresh verified baselines land on the rejoined member.
	writePages(victimPages, 0x31, 20*time.Second)
	writePages(promoterPages, 0x32, 20*time.Second)
	waitFor(t, 15*time.Second, func() bool { return vn.node.met.rejoins.Load() >= 1 },
		"fenced rejoin baseline never arrived")
	waitFor(t, 10*time.Second, func() bool { return vn.node.holdsStandby(victim) },
		"rejoined member holds no standby for its own range")
	// The deposed shell must redirect, not serve, its stale copy.
	a0 := blockAddr(victimPages[0], 0)
	if err := c.DirectWrite(victim, a0, fillByte(a0, 0x7f), core.Meta{}); err == nil {
		t.Fatal("deposed member acknowledged a write on its stale range")
	}

	// Double rejoin: crash and restart the same deposed ID again; the
	// fencing and the baseline import must be idempotent.
	tc.kill(victim)
	vn = tc.restart(victim)
	waitFor(t, 10*time.Second, func() bool { _, dep := vn.node.isDeposed(); return dep },
		"second restart never learned it was deposed")
	writePages(victimPages, 0x51, 20*time.Second)
	writePages(promoterPages, 0x52, 20*time.Second)
	waitFor(t, 15*time.Second, func() bool { return vn.node.met.rejoins.Load() >= 1 },
		"second rejoin of the same ID never completed")
	waitFor(t, 10*time.Second, func() bool {
		return vn.node.holdsStandby(victim) && vn.node.holdsStandby(promoter)
	}, "rejoined member lacks standbys for both live ranges")

	// Failback: the holder dies; the rejoined member promotes the fresh
	// standbys — its own range and the holder's — and serves again.
	tc.kill(promoter)
	writePages(victimPages, 0x61, 15*time.Second)
	writePages(promoterPages, 0x62, 15*time.Second)
	if got := vn.node.met.failovers.Load(); got < 2 {
		t.Errorf("rejoined member promoted %d ranges, want 2", got)
	}
	for a, v := range acked {
		got, err := c.Read(a, layout.BlockSize, core.Meta{})
		if err != nil {
			t.Fatalf("read %#x: %v", uint64(a), err)
		}
		if want := fillByte(a, v); got[0] != want[0] {
			t.Fatalf("addr %#x: got %#x want %#x — a rejoin baseline lost acked writes", uint64(a), got[0], want[0])
		}
	}
}

// TestLifecycleEpochRegression: membership views only ratchet forward —
// a stale view is refused at apply time, and a rolled-back view file is
// refused at boot because the anchor seals the applied epoch.
func TestLifecycleEpochRegression(t *testing.T) {
	tc := startCluster(t, 2, false)
	n1 := tc.nodes["n1"]

	// Ratchet to epoch 1 with a join (the member never boots; it is just
	// ring metadata).
	wire, _ := net.Listen("tcp", "127.0.0.1:0")
	repl, _ := net.Listen("tcp", "127.0.0.1:0")
	defer wire.Close()
	defer repl.Close()
	spec := fmt.Sprintf("nx=%s/127.0.0.1:1/%s", wire.Addr(), repl.Addr())
	if _, err := n1.node.ClusterJoin(spec); err != nil {
		t.Fatalf("ClusterJoin: %v", err)
	}
	if got := n1.node.curView().Epoch; got != 1 {
		t.Fatalf("epoch after join = %d, want 1", got)
	}

	// A regressed view is refused and counted.
	stale := n1.node.curView().clone()
	stale.Epoch = 0
	if err := n1.node.applyView(stale); err == nil {
		t.Fatal("epoch regression applied")
	}
	if got := n1.node.met.viewRefused.Load(); got == 0 {
		t.Error("view refusal not counted")
	}
	// Same epoch re-apply is an idempotent no-op.
	if err := n1.node.applyView(n1.node.curView()); err != nil {
		t.Fatalf("idempotent re-apply: %v", err)
	}

	// Roll the view file back behind the sealed anchor epoch: boot must
	// fail closed. The epoch reaches the anchor at the next checkpoint.
	if err := n1.store.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	n1.dead = true
	tc.shutdownNode(n1)
	if err := os.Remove(filepath.Join(tc.dir, "n1", viewFile)); err != nil {
		t.Fatal(err)
	}
	st, err := persist.Open(persist.Options{Dir: n1.dir, Key: testKey, Fsync: persist.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	pool, _, err := st.Recover(testShardCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if sealed := st.MemEpoch(); sealed != 1 {
		t.Fatalf("sealed membership epoch = %d, want 1", sealed)
	}
	_, err = NewNode(Config{
		Self: "n1", Members: tc.members, Pool: pool, Store: st,
		ShardCfg: testShardCfg(), Key: testKey,
		DataDir: filepath.Join(tc.dir, "n1"), Fsync: persist.FsyncAlways,
	})
	if err == nil || !strings.Contains(err.Error(), "behind sealed") {
		t.Fatalf("rolled-back view booted: err=%v, want sealed-epoch refusal", err)
	}
}

// TestLifecycleCheckpointRotation: a background checkpoint rotates the
// WAL epoch under an attached stream; the rotate hook re-baselines the
// follower proactively and writes keep flowing — the -snapshot-every
// cluster-mode interaction.
func TestLifecycleCheckpointRotation(t *testing.T) {
	tc := startCluster(t, 3, false)
	c := tc.client()
	ring := NewRing([]string{"n1", "n2", "n3"})
	acked := map[layout.Addr]byte{}
	writeAll := func(tag byte, budget time.Duration) {
		for p := uint64(0); p < 16; p++ {
			a := blockAddr(p, int(p)%4)
			v := tag ^ byte(p)
			if err := retry(budget, func() error { return c.Write(a, fillByte(a, v), core.Meta{}) }); err != nil {
				t.Fatalf("write page %d: %v", p, err)
			}
			acked[a] = v
		}
	}
	writeAll(0x10, 5*time.Second)

	owner := ring.OwnerPage(0)
	on := tc.nodes[owner]
	resyncsBefore := on.node.met.resyncs.Load()
	// Simulate the -snapshot-every tick: checkpoint while attached.
	if err := on.store.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if got := on.node.met.resyncs.Load(); got == resyncsBefore {
		t.Error("rotate hook did not restart the attached stream")
	}

	// Writes to the rotated owner's range flow again after the proactive
	// re-baseline — no stranded follower, no dead stream.
	writeAll(0x20, 15*time.Second)
	waitFor(t, 10*time.Second, func() bool { return on.node.met.attached.Load() == 1 },
		"stream never re-attached after rotation")
	for a, v := range acked {
		got, err := c.Read(a, layout.BlockSize, core.Meta{})
		if err != nil {
			t.Fatalf("read %#x: %v", uint64(a), err)
		}
		if want := fillByte(a, v); got[0] != want[0] {
			t.Fatalf("addr %#x: got %#x want %#x", uint64(a), got[0], want[0])
		}
	}
}

// TestSmartClientStallBackoff: the jittered same-target backoff stays
// inside its design bounds and the candidate walk is capped by ring
// size, not a constant.
func TestSmartClientStallBackoff(t *testing.T) {
	for k := 0; k < 2; k++ {
		base := 25 * time.Millisecond << uint(k)
		for i := 0; i < 64; i++ {
			d := stallBackoff(k)
			if d < base/2 || d >= base {
				t.Fatalf("stallBackoff(%d) = %v outside [%v, %v)", k, d, base/2, base)
			}
		}
	}
	members := []Member{
		{ID: "a", Wire: "127.0.0.1:1", Health: "127.0.0.1:1", Repl: "127.0.0.1:1"},
		{ID: "b", Wire: "127.0.0.1:2", Health: "127.0.0.1:1", Repl: "127.0.0.1:2"},
	}
	c, err := NewSmartClient(members, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dials := 0
	c.dial = func(addr string) (*server.Client, error) {
		dials++
		return nil, errors.New("down")
	}
	if err := c.Write(blockAddr(0, 0), fillByte(0, 1), core.Meta{}); err == nil {
		t.Fatal("write against dead cluster succeeded")
	}
	// The walk visits each member at most once: bounded by ring size.
	if dials > len(members)+1 {
		t.Fatalf("walk dialed %d times for a %d-member ring", dials, len(members))
	}
}
