package cluster

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// View is the cluster's membership state at one epoch. The key design
// choice: ring arcs are keyed by *lineages* — the founding member IDs —
// and never move. A lineage's whole range (its pool, its sealed anchors,
// its fencing history) is handed between physical members as a unit via
// the baseline-export machinery, so membership changes reuse exactly the
// replication path that failover already trusts.
//
//   - join adds a physical member with no lineage: it serves nothing but
//     immediately hosts standbys and is a handoff / re-replication target.
//   - move (and leave, which is a move away from the leaving member)
//     reassigns Serving[lineage] after a verified baseline + segment
//     catch-up lands on the target.
//   - remove expels a member permanently; its streams and any re-join
//     are refused from then on.
//
// Views are sealed under a key derived from the processor key; a forged
// or truncated view dies in decodeView. The epoch is additionally sealed
// into every member's persist anchor (anchor v3), so a rolled-back view
// file cannot resurrect an expelled member across a restart.
type View struct {
	Epoch    uint64
	Members  []Member
	Lineages []string
	// Serving maps lineage -> member ID administratively assigned to
	// serve it. Failover promotions are discovered (redirects + successor
	// walk), not written here; only ring-change handoffs reassign it.
	Serving map[string]string
	Removed []string
}

// initialView builds epoch-0 state from a static member list: every
// member is its own lineage and serves it.
func initialView(members []Member) *View {
	v := &View{Members: append([]Member(nil), members...), Serving: map[string]string{}}
	for _, m := range members {
		v.Lineages = append(v.Lineages, m.ID)
		v.Serving[m.ID] = m.ID
	}
	sort.Strings(v.Lineages)
	return v
}

// clone returns a deep copy, the starting point for the next epoch.
func (v *View) clone() *View {
	nv := &View{
		Epoch:    v.Epoch,
		Members:  append([]Member(nil), v.Members...),
		Lineages: append([]string(nil), v.Lineages...),
		Serving:  make(map[string]string, len(v.Serving)),
		Removed:  append([]string(nil), v.Removed...),
	}
	for k, s := range v.Serving {
		nv.Serving[k] = s
	}
	return nv
}

// member looks up a physical member by ID.
func (v *View) member(id string) (Member, bool) {
	for _, m := range v.Members {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

// isRemoved reports whether id was expelled.
func (v *View) isRemoved(id string) bool {
	for _, r := range v.Removed {
		if r == id {
			return true
		}
	}
	return false
}

// servingMember is the member administratively assigned to lineage l
// (the lineage itself when never reassigned).
func (v *View) servingMember(l string) string {
	if s := v.Serving[l]; s != "" {
		return s
	}
	return l
}

// membership builds the routing structures for this view: the ring over
// the lineages, member lookup and successor order over the members.
func (v *View) membership() (*Membership, error) {
	ms, err := NewMembership(v.Members)
	if err != nil {
		return nil, err
	}
	ms.ring = NewRing(v.Lineages)
	return ms, nil
}

func viewSealKey(processorKey []byte) []byte {
	m := hmac.New(sha256.New, processorKey)
	m.Write([]byte("aisebmt/cluster/view/v1"))
	return m.Sum(nil)
}

const viewMagic = "SMVIEW1\x00"

// encodeView serializes and seals a view under the processor key.
func encodeView(key []byte, v *View) []byte {
	b := []byte(viewMagic)
	b = binary.BigEndian.AppendUint64(b, v.Epoch)
	appendStr := func(s string) {
		b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
		b = append(b, s...)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(v.Members)))
	for _, m := range v.Members {
		appendStr(m.ID)
		appendStr(m.Wire)
		appendStr(m.Health)
		appendStr(m.Repl)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(v.Lineages)))
	for _, l := range v.Lineages {
		appendStr(l)
	}
	// Serving is emitted in sorted-lineage order for a deterministic seal.
	keys := make([]string, 0, len(v.Serving))
	for k := range v.Serving {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = binary.BigEndian.AppendUint32(b, uint32(len(keys)))
	for _, k := range keys {
		appendStr(k)
		appendStr(v.Serving[k])
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(v.Removed)))
	for _, r := range v.Removed {
		appendStr(r)
	}
	mac := hmac.New(sha256.New, viewSealKey(key))
	mac.Write(b)
	return mac.Sum(b)
}

// errViewTampered marks a view whose seal or structure failed to verify.
var errViewTampered = errors.New("cluster: membership view tampered or truncated")

// decodeView verifies and decodes a sealed view.
func decodeView(key []byte, b []byte) (*View, error) {
	const macLen = sha256.Size
	if len(b) < len(viewMagic)+8+macLen {
		return nil, errViewTampered
	}
	body, tag := b[:len(b)-macLen], b[len(b)-macLen:]
	mac := hmac.New(sha256.New, viewSealKey(key))
	mac.Write(body)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return nil, errViewTampered
	}
	if string(body[:len(viewMagic)]) != viewMagic {
		return nil, errViewTampered
	}
	p := body[len(viewMagic):]
	ok := true
	u64 := func() uint64 {
		if len(p) < 8 {
			ok = false
			return 0
		}
		x := binary.BigEndian.Uint64(p[:8])
		p = p[8:]
		return x
	}
	u32 := func() uint32 {
		if len(p) < 4 {
			ok = false
			return 0
		}
		x := binary.BigEndian.Uint32(p[:4])
		p = p[4:]
		return x
	}
	str := func() string {
		if len(p) < 2 {
			ok = false
			return ""
		}
		n := int(binary.BigEndian.Uint16(p[:2]))
		if len(p) < 2+n {
			ok = false
			return ""
		}
		s := string(p[2 : 2+n])
		p = p[2+n:]
		return s
	}
	v := &View{Epoch: u64(), Serving: map[string]string{}}
	nm := u32()
	if !ok || nm > 1<<16 {
		return nil, errViewTampered
	}
	for i := uint32(0); i < nm && ok; i++ {
		v.Members = append(v.Members, Member{ID: str(), Wire: str(), Health: str(), Repl: str()})
	}
	nl := u32()
	if !ok || nl > 1<<16 {
		return nil, errViewTampered
	}
	for i := uint32(0); i < nl && ok; i++ {
		v.Lineages = append(v.Lineages, str())
	}
	ns := u32()
	if !ok || ns > 1<<16 {
		return nil, errViewTampered
	}
	for i := uint32(0); i < ns && ok; i++ {
		k, s := str(), str()
		v.Serving[k] = s
	}
	nr := u32()
	if !ok || nr > 1<<16 {
		return nil, errViewTampered
	}
	for i := uint32(0); i < nr && ok; i++ {
		v.Removed = append(v.Removed, str())
	}
	if !ok || len(p) != 0 {
		return nil, errViewTampered
	}
	return v, nil
}

// viewFile is where a node persists its applied view inside its data dir.
const viewFile = "cluster-view.bin"

// saveView atomically persists the sealed view into dir. Best effort on
// fsync granularity — the authoritative rollback guard is the membership
// epoch sealed into the persist anchor, not this file.
func saveView(dir string, key []byte, v *View) error {
	if dir == "" {
		return nil
	}
	tmp := filepath.Join(dir, viewFile+".tmp")
	if err := os.WriteFile(tmp, encodeView(key, v), 0o600); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, viewFile))
}

// loadView reads a previously saved view; (nil, nil) if none exists.
func loadView(dir string, key []byte) (*View, error) {
	if dir == "" {
		return nil, nil
	}
	b, err := os.ReadFile(filepath.Join(dir, viewFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return decodeView(key, b)
}

// MarshalJSON renders the view for operators (admin "view" output).
func (v *View) MarshalJSON() ([]byte, error) {
	type jm struct {
		ID     string `json:"id"`
		Wire   string `json:"wire"`
		Health string `json:"health"`
		Repl   string `json:"repl"`
	}
	out := struct {
		Epoch    uint64            `json:"epoch"`
		Members  []jm              `json:"members"`
		Lineages []string          `json:"lineages"`
		Serving  map[string]string `json:"serving"`
		Removed  []string          `json:"removed,omitempty"`
	}{Epoch: v.Epoch, Lineages: v.Lineages, Serving: map[string]string{}, Removed: v.Removed}
	for _, m := range v.Members {
		out.Members = append(out.Members, jm{m.ID, m.Wire, m.Health, m.Repl})
	}
	for _, l := range v.Lineages {
		out.Serving[l] = v.servingMember(l)
	}
	return json.Marshal(out)
}

// FetchView retrieves a member's current sealed membership view over its
// replication port — how a joining daemon bootstraps its membership from
// any seed member.
func FetchView(addr string, key []byte, timeout time.Duration) (*View, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(timeout))
	if err := writeFrame(c, msgViewReq, nil); err != nil {
		return nil, err
	}
	typ, p, err := readFrame(c)
	if err != nil {
		return nil, err
	}
	if typ != msgView {
		return nil, fmt.Errorf("cluster: unexpected frame %d for view request", typ)
	}
	return decodeView(key, p)
}
