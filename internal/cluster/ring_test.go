package cluster

import (
	"fmt"
	"testing"
)

// TestRingStability is the consistent-hashing contract, table-driven over
// membership changes: adding or removing one member of N must move only
// about 1/N of the pages, and pages that do move must move to (or from)
// the changed member — never between surviving members.
func TestRingStability(t *testing.T) {
	const pages = 4096
	cases := []struct {
		name   string
		before []string
		after  []string
		delta  string // the member added or removed
	}{
		{"add third node", []string{"n1", "n2"}, []string{"n1", "n2", "n3"}, "n3"},
		{"remove third node", []string{"n1", "n2", "n3"}, []string{"n1", "n2"}, "n3"},
		{"add fifth node", []string{"n1", "n2", "n3", "n4"}, []string{"n1", "n2", "n3", "n4", "n5"}, "n5"},
		{"remove first node", []string{"n1", "n2", "n3"}, []string{"n2", "n3"}, "n1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rb, ra := NewRing(tc.before), NewRing(tc.after)
			moved := 0
			for p := uint64(0); p < pages; p++ {
				ob, oa := rb.OwnerPage(p), ra.OwnerPage(p)
				if ob == oa {
					continue
				}
				moved++
				if ob != tc.delta && oa != tc.delta {
					t.Fatalf("page %d moved %s -> %s, neither is the changed member %s", p, ob, oa, tc.delta)
				}
			}
			// Expect ~pages/len(after or before, whichever is larger); allow
			// a factor-of-two band for hash unevenness at 96 replicas.
			n := len(tc.before)
			if len(tc.after) > n {
				n = len(tc.after)
			}
			ideal := pages / n
			if moved < ideal/2 || moved > ideal*2 {
				t.Fatalf("moved %d pages, want within [%d, %d] (~1/%d of %d)", moved, ideal/2, ideal*2, n, pages)
			}
		})
	}
}

// TestRingGoldenAssignments pins concrete page->owner assignments. These
// must never change: daemons restarted with the same membership must
// route identically to daemons that never restarted, and a silent change
// in the hash or replica scheme would misroute every deployed cluster.
func TestRingGoldenAssignments(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"})
	golden := map[uint64]string{
		0:    "n1",
		1:    "n2",
		2:    "n3",
		3:    "n3",
		4:    "n1",
		5:    "n1",
		6:    "n1",
		7:    "n1",
		100:  "n3",
		1000: "n3",
		4095: "n1",
	}
	for p, want := range golden {
		if got := r.OwnerPage(p); got != want {
			t.Errorf("OwnerPage(%d) = %s, want %s", p, got, want)
		}
	}
}

// TestRingBalance checks the split is usable: no member of a 3-node ring
// owns less than half or more than double its fair share of pages.
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"})
	const pages = 8192
	counts := map[string]int{}
	for p := uint64(0); p < pages; p++ {
		counts[r.OwnerPage(p)]++
	}
	fair := pages / 3
	for id, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("%s owns %d of %d pages; fair share is %d", id, c, pages, fair)
		}
	}
	if len(counts) != 3 {
		t.Errorf("only %d members own pages: %v", len(counts), counts)
	}
}

// TestRingOrderInsensitive: construction order must not matter.
func TestRingOrderInsensitive(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"})
	b := NewRing([]string{"n3", "n1", "n2"})
	for p := uint64(0); p < 512; p++ {
		if a.OwnerPage(p) != b.OwnerPage(p) {
			t.Fatalf("page %d: %s vs %s", p, a.OwnerPage(p), b.OwnerPage(p))
		}
	}
}

func TestRingDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate ID did not panic")
		}
	}()
	NewRing([]string{"n1", "n1"})
}

func ExampleRing_Ranges() {
	r := NewRing([]string{"a", "b"})
	ranges := r.Ranges()
	fmt.Println(ranges["a"]+ranges["b"] == 2*ringReplicas)
	// Output: true
}
