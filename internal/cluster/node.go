package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
	"aisebmt/internal/obs"
	"aisebmt/internal/persist"
	"aisebmt/internal/server"
	"aisebmt/internal/shard"
)

// Config wires a Node into a daemon.
type Config struct {
	// Self is this node's member ID; it must appear in Members.
	Self string
	// Members is the static cluster membership.
	Members []Member
	// Pool and Store are the daemon's recovered local pool and its
	// persistence store; the node installs the write fence on the pool
	// and the segment sink on the store.
	Pool  *shard.Pool
	Store *persist.Store
	// ShardCfg is the pool's configuration. Standby pools for peers are
	// built from it (with observability stripped — instruments register
	// once per process, for the local pool).
	ShardCfg shard.Config
	// Key is the processor key; baselines and segments are sealed under
	// the at-rest key derived from it, identically on every member.
	Key []byte
	// DataDir is the daemon's data directory. Promoted standbys open
	// fresh stores in promoted-<owner>-f<fence> subdirectories of it.
	DataDir string
	// Fsync is the durability policy for promoted stores.
	Fsync persist.Policy
	// SnapshotEvery is the background checkpoint period for promoted
	// stores (the node's own store is configured by whoever opened it).
	// Without it an adopted range's WAL grows unbounded and its rotate
	// hook — the stream's proactive re-baseline point — never fires.
	// Zero disables background checkpoints on promoted stores.
	SnapshotEvery time.Duration
	// ReplListener accepts replication streams from peers (the address
	// advertised as this member's Repl). Nil disables the receiver (and
	// with it this node's ability to hold standbys) — single-node rings
	// and router-only tests.
	ReplListener net.Listener
	// Proxy, when true, forwards misrouted requests to the owner instead
	// of answering NotOwner, so dumb clients work against any node.
	Proxy bool

	// Obs registers the secmemd_cluster_* metrics; nil is allowed.
	Obs *obs.Service
	// Logf receives failover and replication lifecycle events.
	Logf func(format string, args ...any)

	// Dialer opens replication/forwarding connections (chaos tests
	// inject partitions here); nil means net.Dial with IOTimeout. The
	// from argument is this node's ID.
	Dialer func(from, addr string) (net.Conn, error)
	// Probe checks a member's liveness; nil means an HTTP GET of
	// http://<health>/healthz. The from argument is this node's ID.
	Probe func(from string, m Member) error
	// ProbeEvery is the failover monitor period (default 250ms).
	ProbeEvery time.Duration
	// FailAfter is how many consecutive failed probes of an owner make
	// its follower promote (default 4).
	FailAfter int
	// IOTimeout bounds each replication send/ack round trip and the
	// attach handshake (default 5s).
	IOTimeout time.Duration
	// AttachBackoff is the shipper's retry delay between failed attach
	// sweeps (default 50ms, doubling with jitter to 1s).
	AttachBackoff time.Duration
	// RereplGrace bounds the single-copy window after a promotion: a
	// promoted range may acknowledge writes unreplicated for this long
	// while re-replication establishes a standby on a successor; past it,
	// writes stall retryably (repl-stalled) until a standby attaches —
	// the last-resort fence. Default 5s.
	RereplGrace time.Duration
	// InitialView, when non-nil, supplies the membership view (a joining
	// daemon fetched it from a seed member) instead of deriving epoch 0
	// from Members. Self must appear in its member list.
	InitialView *View
}

// standby is a warm copy of one range's state: the imported pool plus
// the segment cursors its stream advances. owner is the range (lineage)
// replicated; src is the member shipping the stream — the same as owner
// for a founding owner's own stream, but the promoted or handed-off
// holder for re-replication streams. mu serializes segment application
// against promotion, so a promoted pool is never mutated by a straggling
// replication frame.
type standby struct {
	owner string
	src   string
	mu    sync.Mutex
	pool  *shard.Pool
	curs  []*persist.SegmentCursor
	fence uint64
	// promoted flips under mu when failover adopts the pool; the stream
	// handler answers ackFenced from then on.
	promoted bool
	// live is true while a stream is attached (diagnostic only).
	live bool
}

// promotedRange is a dead peer's range this node now serves: the adopted
// pool bound to its own fresh store under a higher fencing epoch.
type promotedRange struct {
	owner string
	pool  *shard.Pool
	store *persist.Store
	fence uint64
}

// Node federates one secmemd daemon into the cluster. It implements
// server.Backend: requests for pages this node owns hit the local pool,
// requests for ranges it promoted hit the adopted pools, and everything
// else is redirected (or proxied) to the owner. A node does not serve
// its own range until its first follower handshake resolves — attached,
// fenced, or no-followers — so a rebooted deposed owner can never serve
// stale state.
type Node struct {
	cfg  Config
	self Member
	met  *metrics
	ship *shipper // own-range stream; nil for lineage-less (joined) members
	fwd  *forwarder

	// selfLineage is this node's founding ring lineage — its own ID when
	// it founded a range, "" for members that joined later and serve
	// nothing of their own.
	selfLineage string

	shards int // local pool shard count

	// view and ms are the applied membership view and the routing
	// structures derived from it (ring over lineages, successor order
	// over members); both swap atomically when a new view is applied.
	// viewMu serializes ratchets and applies; adminMu serializes
	// admin-initiated membership operations (join/leave/remove/handoff),
	// which may span several ratchets.
	viewMu  sync.Mutex
	adminMu sync.Mutex
	view    atomic.Pointer[View]
	ms      atomic.Pointer[Membership]
	// monitorOn records that the failover monitor goroutine is running
	// (guarded by viewMu after construction).
	monitorOn bool

	// ready is closed once ownership of the local range is resolved.
	ready     chan struct{}
	readyOnce sync.Once

	mu        sync.Mutex
	deposedTo string                    // member ID holding our range after we were fenced
	standbys  map[string]*standby       // keyed by range (lineage)
	promoted  map[string]*promotedRange // keyed by range (lineage)
	fences    map[string]uint64         // highest fencing epoch seen per range
	// shippers are the re-replication streams for ranges this node
	// serves beyond its own (promoted after failover, or received in a
	// handoff), keyed by range.
	shippers map[string]*shipper
	// rangeDeposed records promoted ranges this node lost again (handed
	// off, or fenced by a failback): range -> holder.
	rangeDeposed map[string]string

	// reap receives adopted ranges deposed mid-flight (fenced by a new
	// holder or handed off); a dedicated goroutine tears their stores
	// down outside the commit path that discovered the deposition.
	reap chan *reapItem

	// rereplLive counts re-replication streams currently attached to a
	// standby, mirrored into the rerepl_attached gauge.
	rereplLive atomic.Int64

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	replConnMu sync.Mutex
	replConns  map[net.Conn]struct{}
}

// curView returns the applied membership view.
func (n *Node) curView() *View { return n.view.Load() }

// membership returns the routing structures of the applied view.
func (n *Node) membership() *Membership { return n.ms.Load() }

// NewNode validates cfg, installs the write fence and segment sink, and
// starts the replication receiver, the segment shipper and the failover
// monitor. The returned Node is ready to Publish on a server.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Pool == nil || cfg.Store == nil {
		return nil, errors.New("cluster: Config.Pool and Config.Store are required")
	}
	view := cfg.InitialView
	if view == nil {
		if len(cfg.Members) == 0 {
			return nil, errors.New("cluster: Config.Members or Config.InitialView is required")
		}
		view = initialView(cfg.Members)
	}
	// A persisted view from an earlier incarnation supersedes the boot
	// configuration when newer — membership changes survive restarts.
	if dv, err := loadView(cfg.DataDir, cfg.Key); err != nil {
		return nil, fmt.Errorf("cluster: stored view: %w", err)
	} else if dv != nil && dv.Epoch > view.Epoch {
		view = dv
	}
	if sealed := cfg.Store.MemEpoch(); sealed > view.Epoch {
		// The anchor remembers a newer membership epoch than any view we
		// can see: the view file was rolled back. Fail closed.
		return nil, fmt.Errorf("cluster: membership view epoch %d behind sealed epoch %d", view.Epoch, sealed)
	}
	if view.isRemoved(cfg.Self) {
		return nil, fmt.Errorf("cluster: member %q was removed from the cluster", cfg.Self)
	}
	ms, err := view.membership()
	if err != nil {
		return nil, err
	}
	self, ok := ms.Member(cfg.Self)
	if !ok {
		return nil, fmt.Errorf("cluster: self ID %q not in member list", cfg.Self)
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 250 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 4
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 5 * time.Second
	}
	if cfg.AttachBackoff <= 0 {
		cfg.AttachBackoff = 50 * time.Millisecond
	}
	if cfg.RereplGrace <= 0 {
		cfg.RereplGrace = 5 * time.Second
	}
	var reg *obs.Registry
	if cfg.Obs != nil {
		reg = cfg.Obs.Reg
	}
	n := &Node{
		cfg:          cfg,
		self:         self,
		met:          newMetrics(reg),
		shards:       cfg.Pool.Shards(),
		ready:        make(chan struct{}),
		standbys:     map[string]*standby{},
		promoted:     map[string]*promotedRange{},
		fences:       map[string]uint64{},
		shippers:     map[string]*shipper{},
		rangeDeposed: map[string]string{},
		reap:         make(chan *reapItem, 16),
		closed:       make(chan struct{}),
		replConns:    map[net.Conn]struct{}{},
	}
	n.view.Store(view)
	n.ms.Store(ms)
	for _, l := range view.Lineages {
		if l == cfg.Self {
			n.selfLineage = l
		}
	}
	if cfg.Dialer == nil {
		n.cfg.Dialer = func(_, addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, n.cfg.IOTimeout)
		}
	}
	if cfg.Probe == nil {
		probe := &http.Client{Timeout: n.cfg.ProbeEvery}
		n.cfg.Probe = func(_ string, m Member) error {
			resp, err := probe.Get("http://" + m.Health + "/healthz")
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("cluster: %s /healthz: %s", m.ID, resp.Status)
			}
			return nil
		}
	}
	n.met.members.Set(int64(len(view.Members)))
	n.met.viewEpoch.Set(int64(view.Epoch))
	if n.selfLineage != "" {
		n.met.ownedArcs.Set(int64(ms.Ring().Ranges()[n.selfLineage]))
	}
	n.fwd = newForwarder(ms, n.cfg.IOTimeout)
	n.fwd.resolve = func(l string) string { return n.curView().servingMember(l) }

	cfg.Pool.SetWriteFence(n.writeFence)
	if n.cfg.ReplListener != nil {
		n.wg.Add(1)
		go n.serveRepl(n.cfg.ReplListener)
	}
	ownsRange := n.selfLineage != "" && view.servingMember(n.selfLineage) == n.self.ID
	switch {
	case n.selfLineage != "" && !ownsRange:
		// Our lineage was handed to another member in an earlier epoch:
		// boot deposed — redirects only, until a rejoin stream arrives.
		n.becomeDeposed(view.servingMember(n.selfLineage))
	case !ownsRange:
		// A joined, lineage-less member: nothing of its own to serve or
		// ship; it hosts standbys and answers redirects immediately.
		n.resolveReady()
	case len(view.Members) == 1:
		// No follower exists; the node owns its range unconditionally.
		n.resolveReady()
	default:
		n.ship = newShipper(n, n.selfLineage, cfg.Store, true)
		cfg.Store.SetSegmentSink(n.ship.sink)
		n.wg.Add(1)
		go n.ship.run()
	}
	// The own store's rotate hook is wired even when no own stream exists
	// yet (single member, lineage-less joiner): adopted ranges still need
	// the placement re-evaluation tick it provides.
	cfg.Store.SetRotateHook(n.storeRotated)
	if len(view.Members) > 1 {
		n.monitorOn = true
		n.wg.Add(1)
		go n.monitor()
	}
	n.wg.Add(1)
	go n.reaper()
	return n, nil
}

// reapItem is one deposed adopted range queued for teardown.
type reapItem struct {
	rangeID string
	pr      *promotedRange
	sh      *shipper
}

// reaper tears down adopted stores for ranges this node lost again. The
// deposition is discovered inside a commit (segment ack) or a view
// apply; closing the store there would deadlock on its own locks, so the
// item is queued here instead. Anything still queued at shutdown is
// drained by stop.
func (n *Node) reaper() {
	defer n.wg.Done()
	for {
		select {
		case <-n.closed:
			return
		case it := <-n.reap:
			n.reapOne(it)
		}
	}
}

func (n *Node) reapOne(it *reapItem) {
	it.pr.store.SetSegmentSink(nil)
	it.pr.store.SetRotateHook(nil)
	if it.sh != nil {
		it.sh.close()
	}
	if err := it.pr.store.Checkpoint(); err != nil {
		n.logf("cluster: checkpoint deposed range %s: %v", it.rangeID, err)
	}
	it.pr.pool.Close()
	if err := it.pr.store.Close(); err != nil {
		n.logf("cluster: close deposed range %s: %v", it.rangeID, err)
	}
}

// storeRotated is the own store's checkpoint-rotation hook. The own
// stream's WAL continuity just broke, so it restarts from a fresh
// post-rotation baseline; the tick doubles as the placement
// re-evaluation point for the re-replication streams of adopted ranges
// — a standby that landed on a fallback successor because the preferred
// one was unreachable during a boot or failover race walks back to the
// preferred member once it answers probes again, instead of staying
// parked on the fallback forever.
func (n *Node) storeRotated(epoch uint64) {
	n.mu.Lock()
	ship := n.ship
	shs := make([]*shipper, 0, len(n.shippers))
	for _, sh := range n.shippers {
		shs = append(shs, sh)
	}
	n.mu.Unlock()
	if ship != nil {
		ship.rotated(epoch)
	}
	for _, sh := range shs {
		sh.reevaluate()
	}
}

// rereplDelta adjusts the live re-replication stream count and mirrors
// it into the gauge. Called from shippers, possibly under their stream
// lock — it must take no other locks.
func (n *Node) rereplDelta(d int64) {
	n.met.rereplAttached.Set(n.rereplLive.Add(d))
}

// deposeRange records that an adopted range was fenced away (a new
// holder promoted past us) or handed off. Routing flips to redirects
// immediately; the store teardown happens on the reaper.
func (n *Node) deposeRange(rangeID, holder string) {
	n.mu.Lock()
	pr := n.promoted[rangeID]
	if pr == nil || n.rangeDeposed[rangeID] != "" {
		n.mu.Unlock()
		return
	}
	n.rangeDeposed[rangeID] = holder
	delete(n.promoted, rangeID)
	sh := n.shippers[rangeID]
	delete(n.shippers, rangeID)
	n.met.promoted.Set(int64(len(n.promoted)))
	n.mu.Unlock()
	n.logf("cluster: range %s deposed here; now served by %s", rangeID, holder)
	select {
	case n.reap <- &reapItem{rangeID: rangeID, pr: pr, sh: sh}:
	case <-n.closed:
		// stop drains the queue; anything that never made it into the
		// queue is closed by the graceful path via the maps — but we just
		// removed it, so hand it back for shutdown to find.
		n.mu.Lock()
		if n.promoted[rangeID] == nil {
			n.promoted[rangeID] = pr
		}
		n.mu.Unlock()
	}
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// resolveReady opens the local-range gate.
func (n *Node) resolveReady() {
	n.readyOnce.Do(func() { close(n.ready) })
}

// becomeDeposed records that holder's fencing epoch superseded ours: the
// local range is no longer served here, and own-range requests redirect.
func (n *Node) becomeDeposed(holder string) {
	ms := n.membership()
	n.mu.Lock()
	if n.deposedTo == "" {
		if _, ok := ms.Member(holder); !ok {
			// Unknown or empty holder: best guess is our first successor,
			// the deterministic promotion choice.
			if succ := ms.Successors(n.self.ID); len(succ) > 0 {
				holder = succ[0].ID
			}
		}
		n.deposedTo = holder
		n.met.deposed.Set(1)
		n.logf("cluster: node %s deposed; range now served by %s", n.self.ID, holder)
	}
	n.mu.Unlock()
	// Wake gated requests so they observe the redirect instead of
	// timing out.
	n.resolveReady()
}

// isDeposed reports whether this node was fenced off its own range, and
// by whom.
func (n *Node) isDeposed() (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.deposedTo, n.deposedTo != ""
}

// writeFence vets every local mutation at the commit boundary: after
// this node is deposed — or for any op whose page the ring does not
// assign to it — the batch fails with ErrNotOwner before it is logged or
// executed. Requests that passed routing before a failover die here.
func (n *Node) writeFence(shardIdx int, ops []shard.MutOp) error {
	if n.selfLineage == "" {
		// A joined, lineage-less member serves nothing from its local pool.
		n.met.fencedWr.Inc()
		return shard.ErrNotOwner
	}
	if _, dep := n.isDeposed(); dep {
		n.met.fencedWr.Inc()
		return shard.ErrNotOwner
	}
	ring := n.membership().ring
	for _, op := range ops {
		local := uint64(op.Addr) / layout.PageSize
		global := local*uint64(n.shards) + uint64(shardIdx)
		if ring.OwnerPage(global) != n.selfLineage {
			n.met.fencedWr.Inc()
			return shard.ErrNotOwner
		}
	}
	return nil
}

// rangeFence builds the write fence for an adopted (promoted or handed
// off) range: refused once the range was deposed again, and vetted
// against the ring exactly like the local pool's fence.
func (n *Node) rangeFence(rangeID string) shard.WriteFence {
	return func(shardIdx int, ops []shard.MutOp) error {
		n.mu.Lock()
		lost := n.rangeDeposed[rangeID] != "" || n.promoted[rangeID] == nil
		n.mu.Unlock()
		if lost {
			n.met.fencedWr.Inc()
			return shard.ErrNotOwner
		}
		ring := n.membership().ring
		for _, op := range ops {
			local := uint64(op.Addr) / layout.PageSize
			global := local*uint64(n.shards) + uint64(shardIdx)
			if ring.OwnerPage(global) != rangeID {
				n.met.fencedWr.Inc()
				return shard.ErrNotOwner
			}
		}
		return nil
	}
}

// waitReady blocks until local-range ownership is resolved (follower
// attached, no followers configured, or deposed). The strict gate: a
// node that cannot replicate acks nothing, and a node that might have
// been failed over serves nothing until it knows.
func (n *Node) waitReady(ctx context.Context) error {
	select {
	case <-n.ready:
		return nil
	default:
	}
	select {
	case <-n.ready:
		return nil
	case <-n.closed:
		return shard.ErrClosed
	case <-ctx.Done():
		return fmt.Errorf("cluster: awaiting follower attach: %w", ctx.Err())
	}
}

// route resolves the pool serving address a: the local pool for our own
// range, an adopted pool for ranges we promoted or received in a
// handoff, nil plus a redirect target otherwise. The ring owner is a
// lineage; the serving member is resolved through the view's Serving map
// plus this node's discovered promotions and depositions.
func (n *Node) route(ctx context.Context, a layout.Addr) (*shard.Pool, string, error) {
	l := n.membership().ring.Owner(a)
	if l == n.selfLineage && l != "" {
		// A later view may have reassigned our lineage (handoff); failover
		// promotions are not in views, so fall back to the discovered holder.
		holder := func(to string) string {
			if sm := n.curView().servingMember(l); sm != n.self.ID {
				return sm
			}
			return to
		}
		if to, dep := n.isDeposed(); dep {
			return n.routeAdopted(l, holder(to))
		}
		if err := n.waitReady(ctx); err != nil {
			return nil, "", err
		}
		// Re-check: waitReady also unblocks on deposition.
		if to, dep := n.isDeposed(); dep {
			return n.routeAdopted(l, holder(to))
		}
		return n.cfg.Pool, "", nil
	}
	return n.routeAdopted(l, n.curView().servingMember(l))
}

// routeAdopted resolves a range not served from the local pool: an
// adopted pool when this node promoted (or received) the range and still
// holds it, a redirect otherwise. fallback is the best redirect target
// when this node never held the range.
func (n *Node) routeAdopted(l, fallback string) (*shard.Pool, string, error) {
	n.mu.Lock()
	pr := n.promoted[l]
	lost := n.rangeDeposed[l]
	n.mu.Unlock()
	if pr != nil && lost == "" {
		return pr.pool, "", nil
	}
	if lost != "" {
		return nil, lost, nil
	}
	return nil, fallback, nil
}

// redirect converts a non-local route into the wire answer: a proxy call
// when Proxy is on, a NotOwner error carrying the target's wire address
// otherwise.
func (n *Node) redirect(to string) error {
	n.met.notOwner.Inc()
	m, ok := n.membership().Member(to)
	if !ok {
		return &server.NotOwnerError{Addr: ""}
	}
	return &server.NotOwnerError{Addr: m.Wire}
}

// wrapOwn translates fence refusals on the local pool into the redirect
// clients can follow. Everything else passes through.
func (n *Node) wrapOwn(err error) error {
	if err == nil || !errors.Is(err, shard.ErrNotOwner) {
		return err
	}
	if to, dep := n.isDeposed(); dep {
		return n.redirect(to)
	}
	// Fence refused a misrouted op while we still own our range: the
	// client's ring view must be wrong; point it at the real owner.
	return &server.NotOwnerError{Addr: ""}
}

// Read implements server.Backend.
func (n *Node) Read(ctx context.Context, a layout.Addr, dst []byte, meta core.Meta) error {
	pool, to, err := n.route(ctx, a)
	if err != nil {
		return err
	}
	if pool != nil {
		return n.wrapOwn(pool.Read(ctx, a, dst, meta))
	}
	if n.cfg.Proxy {
		return n.fwd.Read(ctx, a, dst, meta)
	}
	return n.redirect(to)
}

// Write implements server.Backend.
func (n *Node) Write(ctx context.Context, a layout.Addr, src []byte, meta core.Meta) error {
	pool, to, err := n.route(ctx, a)
	if err != nil {
		return err
	}
	if pool != nil {
		return n.wrapOwn(pool.Write(ctx, a, src, meta))
	}
	if n.cfg.Proxy {
		return n.fwd.Write(ctx, a, src, meta)
	}
	return n.redirect(to)
}

// SwapOut implements server.Backend.
func (n *Node) SwapOut(ctx context.Context, a layout.Addr, slot int) (*core.PageImage, error) {
	pool, to, err := n.route(ctx, a)
	if err != nil {
		return nil, err
	}
	if pool == nil {
		return nil, n.redirect(to)
	}
	img, err := pool.SwapOut(ctx, a, slot)
	return img, n.wrapOwn(err)
}

// SwapIn implements server.Backend.
func (n *Node) SwapIn(ctx context.Context, img *core.PageImage, a layout.Addr, slot int) error {
	pool, to, err := n.route(ctx, a)
	if err != nil {
		return err
	}
	if pool == nil {
		return n.redirect(to)
	}
	return n.wrapOwn(pool.SwapIn(ctx, img, a, slot))
}

// Verify sweeps the local pool and every adopted pool.
func (n *Node) Verify(ctx context.Context) error {
	if err := n.cfg.Pool.Verify(ctx); err != nil {
		return err
	}
	n.mu.Lock()
	prs := make([]*promotedRange, 0, len(n.promoted))
	for _, pr := range n.promoted {
		prs = append(prs, pr)
	}
	n.mu.Unlock()
	for _, pr := range prs {
		if err := pr.pool.Verify(ctx); err != nil {
			return fmt.Errorf("promoted range of %s: %w", pr.owner, err)
		}
	}
	return nil
}

// Roots returns the local pool's Merkle roots (adopted ranges attest via
// their own stores).
func (n *Node) Roots() [][]byte { return n.cfg.Pool.Roots() }

// Stats reports the local pool's stats.
func (n *Node) Stats() shard.ServiceStats { return n.cfg.Pool.Stats() }

// Cordon implements server.Backend against the local pool.
func (n *Node) Cordon(i int) error { return n.cfg.Pool.Cordon(i) }

// Uncordon implements server.Backend against the local pool.
func (n *Node) Uncordon(i int) error { return n.cfg.Pool.Uncordon(i) }

// Hibernate implements server.Backend against the local pool.
func (n *Node) Hibernate(w io.Writer) ([]core.ChipState, error) { return n.cfg.Pool.Hibernate(w) }

// ShardStates implements server.Backend against the local pool.
func (n *Node) ShardStates() []shard.ShardState { return n.cfg.Pool.ShardStates() }

// ShardFault implements server.Backend against the local pool.
func (n *Node) ShardFault(i int) (shard.FaultKind, error) { return n.cfg.Pool.ShardFault(i) }

// Close tears the node down: replication stops, standbys are discarded,
// promoted stores are closed durably, and the local pool closes last.
func (n *Node) Close() error {
	n.stop(true)
	return n.cfg.Pool.Close()
}

// Halt stops the node abruptly — replication, receiver and monitor die,
// but pools are left unclosed and nothing is checkpointed. Crash
// simulation for tests; the data directory is what a SIGKILL leaves.
func (n *Node) Halt() { n.stop(false) }

func (n *Node) stop(graceful bool) {
	n.closeOnce.Do(func() {
		close(n.closed)
		n.cfg.Store.SetSegmentSink(nil)
		n.cfg.Store.SetRotateHook(nil)
		n.mu.Lock()
		ship := n.ship
		shps := make([]*shipper, 0, len(n.shippers))
		for _, s := range n.shippers {
			shps = append(shps, s)
		}
		n.mu.Unlock()
		if ship != nil {
			ship.close()
		}
		for _, s := range shps {
			s.close()
		}
		if n.cfg.ReplListener != nil {
			n.cfg.ReplListener.Close()
		}
		n.replConnMu.Lock()
		for c := range n.replConns {
			c.Close()
		}
		n.replConnMu.Unlock()
		n.wg.Wait()
		n.fwd.close()
		if !graceful {
			return
		}
		// Drain depositions the reaper never got to.
	drain:
		for {
			select {
			case it := <-n.reap:
				n.reapOne(it)
			default:
				break drain
			}
		}
		n.mu.Lock()
		sbs, prs := n.standbys, n.promoted
		n.standbys, n.promoted = map[string]*standby{}, map[string]*promotedRange{}
		n.mu.Unlock()
		for _, sb := range sbs {
			sb.pool.Close()
		}
		for _, pr := range prs {
			if err := pr.store.Checkpoint(); err != nil {
				n.logf("cluster: checkpoint promoted range of %s: %v", pr.owner, err)
			}
			pr.pool.Close()
			if err := pr.store.Close(); err != nil {
				n.logf("cluster: close promoted range of %s: %v", pr.owner, err)
			}
		}
	})
}

// promotedDir names the fresh store directory for a promoted range; the
// fencing epoch in the name keeps successive promotions of the same
// owner from colliding.
func (n *Node) promotedDir(owner string, fence uint64) string {
	return filepath.Join(n.cfg.DataDir, fmt.Sprintf("promoted-%s-f%d", owner, fence))
}
