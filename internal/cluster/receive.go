package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"aisebmt/internal/core"
	"aisebmt/internal/persist"
)

// serveRepl accepts replication streams from peers on the node's Repl
// listener. One goroutine per stream; the listener closing (node
// shutdown) ends the loop.
func (n *Node) serveRepl(ln net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		n.replConnMu.Lock()
		n.replConns[conn] = struct{}{}
		n.replConnMu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleRepl(conn)
			n.replConnMu.Lock()
			delete(n.replConns, conn)
			n.replConnMu.Unlock()
			conn.Close()
		}()
	}
}

// handleRepl serves one inbound connection on the repl port. The first
// frame picks the conversation: a view request (answered and done), a
// view push (applied, acked, done), a range-holding query (failover
// arbitration), or a hello opening a replication stream — handshake,
// baseline import, then segment application until the connection dies.
// Fencing is enforced at every stage — a deposed holder gets ackFenced,
// never an apply — and every view, baseline and segment is
// cryptographically verified before it touches anything.
func (n *Node) handleRepl(conn net.Conn) {
	bw, br := bufio.NewWriterSize(conn, 64<<10), bufio.NewReader(conn)
	reply := func(typ uint8, a ack) bool {
		conn.SetWriteDeadline(time.Now().Add(n.cfg.IOTimeout))
		if err := writeFrame(bw, typ, encodeAck(a)); err != nil {
			return false
		}
		return bw.Flush() == nil
	}

	conn.SetReadDeadline(time.Now().Add(n.cfg.IOTimeout))
	typ, p, err := readFrame(br)
	if err != nil {
		return
	}
	switch typ {
	case msgViewReq:
		conn.SetWriteDeadline(time.Now().Add(n.cfg.IOTimeout))
		if writeFrame(bw, msgView, encodeView(n.cfg.Key, n.curView())) == nil {
			bw.Flush()
		}
		return
	case msgView:
		v, verr := decodeView(n.cfg.Key, p)
		if verr != nil {
			n.met.viewRefused.Inc()
			reply(msgViewAck, ack{Code: ackError, Msg: verr.Error()})
			return
		}
		if verr = n.applyView(v); verr != nil {
			reply(msgViewAck, ack{Code: ackError, Msg: verr.Error()})
			return
		}
		reply(msgViewAck, ack{Code: ackOK})
		return
	case msgRangeReq:
		reply(msgRangeAck, ack{Code: ackOK, Msg: n.rangeStanding(string(p))})
		return
	case msgHello:
	default:
		return
	}

	h, err := decodeHello(p)
	if err != nil {
		return
	}
	view := n.curView()
	if view.isRemoved(h.ID) {
		n.met.fenceRej.Inc()
		reply(msgHelloAck, ack{Code: ackError, Msg: "removed member"})
		return
	}
	src, ok := n.membership().Member(h.ID)
	if !ok || src.ID == n.self.ID {
		reply(msgHelloAck, ack{Code: ackError, Msg: "unknown member"})
		return
	}
	rangeID := h.Range
	if rangeID == "" {
		rangeID = h.ID
	}
	if !lineageKnown(view, rangeID) {
		reply(msgHelloAck, ack{Code: ackError, Msg: "unknown range"})
		return
	}
	if int(h.Shards) != n.shards {
		reply(msgHelloAck, ack{Code: ackError, Msg: "shard count mismatch"})
		return
	}
	rejoin := rangeID == n.selfLineage
	if rejoin && h.Fence <= n.cfg.Store.Fence() {
		// Someone claims to replicate our own range without a fencing
		// epoch that supersedes ours: stale or forged. We still hold it.
		n.met.fenceRej.Inc()
		reply(msgHelloAck, ack{Code: ackFenced, Msg: n.self.ID})
		return
	}
	if holder, fenced := n.checkFence(rangeID, h.Fence); fenced {
		n.met.fenceRej.Inc()
		n.logf("cluster: refused handshake from %s for range %s (fence %d)", h.ID, rangeID, h.Fence)
		reply(msgHelloAck, ack{Code: ackFenced, Msg: holder})
		return
	}
	if rejoin {
		// A higher-fence stream for our own lineage is proof we were
		// deposed (promotion or handoff happened while we were away).
		// Attach as a follower of the new holder: fenced rejoin.
		n.becomeDeposed(h.ID)
	}
	if !reply(msgHelloAck, ack{Code: ackOK}) {
		return
	}

	// Baselines are big; give the transfer several IO windows.
	conn.SetReadDeadline(time.Now().Add(4 * n.cfg.IOTimeout))
	typ, p, err = readFrame(br)
	if err != nil || typ != msgBaseline {
		return
	}
	bl, err := persist.DecodeBaseline(n.cfg.Key, p)
	if err != nil {
		reply(msgBaselineAck, ack{Code: ackError, Msg: err.Error()})
		return
	}
	if holder, fenced := n.checkFence(rangeID, bl.Fence); fenced {
		n.met.fenceRej.Inc()
		reply(msgBaselineAck, ack{Code: ackFenced, Msg: holder})
		return
	}
	// Standby pools run without observability: instruments register once
	// per process, for the local pool.
	cfg := n.cfg.ShardCfg
	cfg.Obs = nil
	pool, curs, err := persist.ImportBaseline(n.cfg.Key, cfg, bl)
	if err != nil {
		n.logf("cluster: baseline for %s from %s rejected: %v", rangeID, h.ID, err)
		reply(msgBaselineAck, ack{Code: ackError, Msg: err.Error()})
		return
	}
	sb := &standby{owner: rangeID, src: h.ID, pool: pool, curs: curs, fence: bl.Fence, live: true}
	if !n.installStandby(sb) {
		pool.Close()
		n.met.fenceRej.Inc()
		reply(msgBaselineAck, ack{Code: ackFenced, Msg: n.holderOf(rangeID)})
		return
	}
	if rejoin {
		n.met.rejoins.Inc()
		n.logf("cluster: rejoined as follower of %s for own range (fence %d); pre-fence state discarded", h.ID, bl.Fence)
	}
	n.met.baseApplied.Inc()
	if !reply(msgBaselineAck, ack{Code: ackOK}) {
		return
	}
	n.logf("cluster: standby for %s (from %s) imported (epoch %d, fence %d, %d shards)", rangeID, h.ID, bl.Epoch, bl.Fence, len(curs))

	defer func() {
		sb.mu.Lock()
		sb.live = false
		sb.mu.Unlock()
	}()
	for {
		// Streams idle while the sender takes no writes; only the transfer
		// itself is bounded.
		conn.SetReadDeadline(time.Time{})
		typ, p, err = readFrame(br)
		if err != nil {
			return
		}
		switch typ {
		case msgView:
			// Mid-stream view push: the commit point of a range handoff.
			// Applying it may promote this very standby; the sender treats
			// our ack as the ownership flip.
			v, verr := decodeView(n.cfg.Key, p)
			if verr != nil {
				n.met.viewRefused.Inc()
				reply(msgViewAck, ack{Code: ackError, Msg: verr.Error()})
				return
			}
			if verr = n.applyView(v); verr != nil {
				reply(msgViewAck, ack{Code: ackError, Msg: verr.Error()})
				return
			}
			if !reply(msgViewAck, ack{Code: ackOK}) {
				return
			}
			continue
		case msgSegment:
		default:
			return
		}
		seg, err := persist.DecodeSegment(n.cfg.Key, p)
		if err != nil {
			reply(msgSegmentAck, ack{Code: ackError, Msg: err.Error()})
			return
		}
		code, msg := n.applySegment(rangeID, sb, seg)
		if !reply(msgSegmentAck, ack{Code: code, Msg: msg}) {
			return
		}
		if code == ackFenced {
			return
		}
	}
}

// lineageKnown reports whether l is a ring lineage in v.
func lineageKnown(v *View, l string) bool {
	for _, x := range v.Lineages {
		if x == l {
			return true
		}
	}
	return false
}

// rangeStanding answers the failover arbitration query: what this node
// holds for range l — "serving" (promoted or own), "standby", or "none".
func (n *Node) rangeStanding(l string) string {
	if l == n.selfLineage && l != "" {
		if _, dep := n.isDeposed(); !dep {
			return "serving"
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.promoted[l] != nil && n.rangeDeposed[l] == "" {
		return "serving"
	}
	if n.standbys[l] != nil {
		return "standby"
	}
	return "none"
}

// checkFence records the epoch f claimed for a range and reports whether
// a higher epoch has already superseded it (or the range was promoted
// here). Epochs only ratchet up.
func (n *Node) checkFence(rangeID string, f uint64) (holder string, fenced bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if (n.promoted[rangeID] != nil && n.rangeDeposed[rangeID] == "") || n.fences[rangeID] > f {
		return n.holderLocked(rangeID), true
	}
	if f > n.fences[rangeID] {
		n.fences[rangeID] = f
	}
	return "", false
}

func (n *Node) holderOf(rangeID string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.holderLocked(rangeID)
}

// holderLocked is this node's best knowledge of who serves the range
// now: itself if it promoted the range, the member that fenced it away
// otherwise, or empty (let the client walk successors).
func (n *Node) holderLocked(rangeID string) string {
	if n.promoted[rangeID] != nil && n.rangeDeposed[rangeID] == "" {
		return n.self.ID
	}
	return n.rangeDeposed[rangeID]
}

// installStandby registers a freshly imported standby, replacing any
// previous one for the same range (a reconnecting sender re-baselines).
// It refuses if the range is served here — the sender is deposed, not
// resyncing.
func (n *Node) installStandby(sb *standby) bool {
	n.mu.Lock()
	if n.promoted[sb.owner] != nil && n.rangeDeposed[sb.owner] == "" {
		n.mu.Unlock()
		return false
	}
	old := n.standbys[sb.owner]
	n.standbys[sb.owner] = sb
	n.met.standbys.Set(int64(len(n.standbys)))
	n.mu.Unlock()
	if old != nil {
		old.mu.Lock()
		stale := !old.promoted
		old.mu.Unlock()
		if stale {
			old.pool.Close()
		}
	}
	return true
}

// applySegment validates one shipped batch against the standby's cursor
// and replays it. The standby lock serializes application against
// promotion: once promoted, the answer is ackFenced and nothing touches
// the pool.
func (n *Node) applySegment(rangeID string, sb *standby, seg *persist.Segment) (uint8, string) {
	if holder, fenced := n.checkFence(rangeID, seg.Fence); fenced {
		n.met.fenceRej.Inc()
		return ackFenced, holder
	}
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.promoted {
		n.met.fenceRej.Inc()
		return ackFenced, n.self.ID
	}
	if int(seg.Shard) >= len(sb.curs) {
		return ackError, fmt.Sprintf("segment for shard %d of %d", seg.Shard, len(sb.curs))
	}
	ops, err := sb.curs[seg.Shard].Apply(seg)
	if err != nil {
		switch {
		case errors.Is(err, persist.ErrSegmentEpoch), errors.Is(err, persist.ErrSegmentGap):
			// The sender checkpointed (log epoch rotated) or we missed
			// traffic; the stream must restart from a fresh baseline. The
			// standby keeps its last consistent state meanwhile — every
			// acknowledged write up to this point is already in it.
			n.met.resyncs.Inc()
			return ackResync, err.Error()
		case errors.Is(err, persist.ErrSegmentRollback):
			// The sender is behind what we already hold: a restarted owner
			// replaying old traffic. Never applied; it must re-baseline.
			n.met.resyncs.Inc()
			return ackResync, err.Error()
		default:
			return ackError, err.Error()
		}
	}
	for _, op := range ops {
		if rerr := sb.pool.ReplayOp(int(seg.Shard), op); rerr != nil {
			if errors.Is(rerr, core.ErrTampered) {
				return ackError, fmt.Sprintf("replay: %v", rerr)
			}
			// Deterministic rejection the owner saw too (the op was logged
			// but refused identically on both sides); skip, like recovery.
			continue
		}
	}
	n.met.segApplied.Inc()
	return ackOK, ""
}
