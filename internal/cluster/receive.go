package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"aisebmt/internal/core"
	"aisebmt/internal/persist"
)

// serveRepl accepts replication streams from peers on the node's Repl
// listener. One goroutine per stream; the listener closing (node
// shutdown) ends the loop.
func (n *Node) serveRepl(ln net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		n.replConnMu.Lock()
		n.replConns[conn] = struct{}{}
		n.replConnMu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleRepl(conn)
			n.replConnMu.Lock()
			delete(n.replConns, conn)
			n.replConnMu.Unlock()
			conn.Close()
		}()
	}
}

// handleRepl is the follower side of one stream: handshake, baseline
// import, then segment application until the connection dies. Fencing is
// enforced at every stage — a deposed owner gets ackFenced, never an
// apply — and every baseline and segment is cryptographically verified
// by the persist layer before it touches a standby.
func (n *Node) handleRepl(conn net.Conn) {
	bw, br := bufio.NewWriterSize(conn, 64<<10), bufio.NewReader(conn)
	reply := func(typ uint8, a ack) bool {
		conn.SetWriteDeadline(time.Now().Add(n.cfg.IOTimeout))
		if err := writeFrame(bw, typ, encodeAck(a)); err != nil {
			return false
		}
		return bw.Flush() == nil
	}

	conn.SetReadDeadline(time.Now().Add(n.cfg.IOTimeout))
	typ, p, err := readFrame(br)
	if err != nil || typ != msgHello {
		return
	}
	h, err := decodeHello(p)
	if err != nil {
		return
	}
	owner, ok := n.ms.Member(h.ID)
	if !ok || owner.ID == n.self.ID {
		reply(msgHelloAck, ack{Code: ackError, Msg: "unknown member"})
		return
	}
	if int(h.Shards) != n.shards {
		reply(msgHelloAck, ack{Code: ackError, Msg: "shard count mismatch"})
		return
	}
	if holder, fenced := n.checkFence(owner.ID, h.Fence); fenced {
		n.met.fenceRej.Inc()
		n.logf("cluster: refused handshake from deposed %s (fence %d)", owner.ID, h.Fence)
		reply(msgHelloAck, ack{Code: ackFenced, Msg: holder})
		return
	}
	if !reply(msgHelloAck, ack{Code: ackOK}) {
		return
	}

	// Baselines are big; give the transfer several IO windows.
	conn.SetReadDeadline(time.Now().Add(4 * n.cfg.IOTimeout))
	typ, p, err = readFrame(br)
	if err != nil || typ != msgBaseline {
		return
	}
	bl, err := persist.DecodeBaseline(n.cfg.Key, p)
	if err != nil {
		reply(msgBaselineAck, ack{Code: ackError, Msg: err.Error()})
		return
	}
	if holder, fenced := n.checkFence(owner.ID, bl.Fence); fenced {
		n.met.fenceRej.Inc()
		reply(msgBaselineAck, ack{Code: ackFenced, Msg: holder})
		return
	}
	// Standby pools run without observability: instruments register once
	// per process, for the local pool.
	cfg := n.cfg.ShardCfg
	cfg.Obs = nil
	pool, curs, err := persist.ImportBaseline(n.cfg.Key, cfg, bl)
	if err != nil {
		n.logf("cluster: baseline from %s rejected: %v", owner.ID, err)
		reply(msgBaselineAck, ack{Code: ackError, Msg: err.Error()})
		return
	}
	sb := &standby{owner: owner.ID, pool: pool, curs: curs, fence: bl.Fence, live: true}
	if !n.installStandby(sb) {
		pool.Close()
		n.met.fenceRej.Inc()
		reply(msgBaselineAck, ack{Code: ackFenced, Msg: n.holderOf(owner.ID)})
		return
	}
	n.met.baseApplied.Inc()
	if !reply(msgBaselineAck, ack{Code: ackOK}) {
		return
	}
	n.logf("cluster: standby for %s imported (epoch %d, fence %d, %d shards)", owner.ID, bl.Epoch, bl.Fence, len(curs))

	defer func() {
		sb.mu.Lock()
		sb.live = false
		sb.mu.Unlock()
	}()
	for {
		// Streams idle while the owner takes no writes; only the transfer
		// itself is bounded.
		conn.SetReadDeadline(time.Time{})
		typ, p, err = readFrame(br)
		if err != nil || typ != msgSegment {
			return
		}
		seg, err := persist.DecodeSegment(n.cfg.Key, p)
		if err != nil {
			reply(msgSegmentAck, ack{Code: ackError, Msg: err.Error()})
			return
		}
		code, msg := n.applySegment(owner.ID, sb, seg)
		if !reply(msgSegmentAck, ack{Code: code, Msg: msg}) {
			return
		}
		if code == ackFenced {
			return
		}
	}
}

// checkFence records the epoch f claimed by owner and reports whether a
// higher epoch has already superseded it (or the range was promoted
// here). Epochs only ratchet up.
func (n *Node) checkFence(owner string, f uint64) (holder string, fenced bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.promoted[owner] != nil || n.fences[owner] > f {
		return n.holderLocked(owner), true
	}
	if f > n.fences[owner] {
		n.fences[owner] = f
	}
	return "", false
}

func (n *Node) holderOf(owner string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.holderLocked(owner)
}

// holderLocked is this node's best knowledge of who serves owner's range
// now: itself if it promoted the range, otherwise whoever raised the
// fence (unknown — report self's view as empty and let the client walk
// successors).
func (n *Node) holderLocked(owner string) string {
	if n.promoted[owner] != nil {
		return n.self.ID
	}
	return ""
}

// installStandby registers a freshly imported standby, replacing any
// previous one for the same owner (a reconnecting owner re-baselines).
// It refuses if the range was already promoted here — the owner is
// deposed, not resyncing.
func (n *Node) installStandby(sb *standby) bool {
	n.mu.Lock()
	if n.promoted[sb.owner] != nil {
		n.mu.Unlock()
		return false
	}
	old := n.standbys[sb.owner]
	n.standbys[sb.owner] = sb
	n.met.standbys.Set(int64(len(n.standbys)))
	n.mu.Unlock()
	if old != nil {
		old.mu.Lock()
		stale := !old.promoted
		old.mu.Unlock()
		if stale {
			old.pool.Close()
		}
	}
	return true
}

// applySegment validates one shipped batch against the standby's cursor
// and replays it. The standby lock serializes application against
// promotion: once promoted, the answer is ackFenced and nothing touches
// the pool.
func (n *Node) applySegment(owner string, sb *standby, seg *persist.Segment) (uint8, string) {
	if holder, fenced := n.checkFence(owner, seg.Fence); fenced {
		n.met.fenceRej.Inc()
		return ackFenced, holder
	}
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.promoted {
		n.met.fenceRej.Inc()
		return ackFenced, n.self.ID
	}
	if int(seg.Shard) >= len(sb.curs) {
		return ackError, fmt.Sprintf("segment for shard %d of %d", seg.Shard, len(sb.curs))
	}
	ops, err := sb.curs[seg.Shard].Apply(seg)
	if err != nil {
		switch {
		case errors.Is(err, persist.ErrSegmentEpoch), errors.Is(err, persist.ErrSegmentGap):
			// The owner checkpointed (log epoch rotated) or we missed
			// traffic; the stream must restart from a fresh baseline. The
			// standby keeps its last consistent state meanwhile — every
			// acknowledged write up to this point is already in it.
			n.met.resyncs.Inc()
			return ackResync, err.Error()
		case errors.Is(err, persist.ErrSegmentRollback):
			// The sender is behind what we already hold: a restarted owner
			// replaying old traffic. Never applied; it must re-baseline.
			n.met.resyncs.Inc()
			return ackResync, err.Error()
		default:
			return ackError, err.Error()
		}
	}
	for _, op := range ops {
		if rerr := sb.pool.ReplayOp(int(seg.Shard), op); rerr != nil {
			if errors.Is(rerr, core.ErrTampered) {
				return ackError, fmt.Sprintf("replay: %v", rerr)
			}
			// Deterministic rejection the owner saw too (the op was logged
			// but refused identically on both sides); skip, like recovery.
			continue
		}
	}
	n.met.segApplied.Inc()
	return ackOK, ""
}
