package cluster

import (
	"fmt"
	"time"

	"aisebmt/internal/persist"
)

// monitor is the failover loop: it probes the member shipping each
// standby this node holds, and after FailAfter consecutive failures
// promotes the standby — if, and only if, the arbitration walk says this
// node is the responsible survivor, so concurrent standby holders
// promote at most once per range.
//
// It also reaps stale standbys: a standby whose stream is down while its
// source is demonstrably alive is one the source re-attached somewhere
// else (or is re-baselining after a rotation) — promoting it later could
// resurrect state missing acknowledged writes, so it is discarded; the
// source re-baselines us if it still wants us.
func (n *Node) monitor() {
	defer n.wg.Done()
	fails := map[string]int{}
	tick := time.NewTicker(n.cfg.ProbeEvery)
	defer tick.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-tick.C:
		}
		type watch struct {
			rangeID, src string
			live         bool
		}
		n.mu.Lock()
		watches := make([]watch, 0, len(n.standbys))
		for rid, sb := range n.standbys {
			sb.mu.Lock()
			live := sb.live
			sb.mu.Unlock()
			watches = append(watches, watch{rangeID: rid, src: sb.src, live: live})
		}
		n.mu.Unlock()
		ms := n.membership()
		for _, w := range watches {
			m, known := ms.Member(w.src)
			up := known && n.cfg.Probe(n.self.ID, m) == nil
			if up {
				fails[w.rangeID] = 0
				if !w.live {
					// Alive but not streaming to us: it re-attached elsewhere
					// or is rotating. Our copy can silently go stale — drop it.
					n.dropStandby(w.rangeID, w.src)
				}
				continue
			}
			fails[w.rangeID]++
			if fails[w.rangeID] < n.cfg.FailAfter {
				continue
			}
			if !n.mayPromote(w.rangeID, w.src) {
				// A member ahead of us in the walk is alive and holds this
				// range; it is responsible. Keep counting — if it dies too,
				// responsibility walks down to us.
				continue
			}
			fails[w.rangeID] = 0
			if err := n.promote(w.rangeID); err != nil {
				n.logf("cluster: promote %s: %v", w.rangeID, err)
			}
		}
		// Forget ranges we no longer watch.
		for rid := range fails {
			if n.holdsStandby(rid) {
				continue
			}
			delete(fails, rid)
		}
	}
}

func (n *Node) holdsStandby(rangeID string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.standbys[rangeID] != nil
}

// dropStandby discards the standby for rangeID if its source is still
// src and it is not promoted.
func (n *Node) dropStandby(rangeID, src string) {
	n.mu.Lock()
	sb := n.standbys[rangeID]
	if sb == nil || sb.src != src {
		n.mu.Unlock()
		return
	}
	sb.mu.Lock()
	if sb.live || sb.promoted {
		sb.mu.Unlock()
		n.mu.Unlock()
		return
	}
	sb.mu.Unlock()
	delete(n.standbys, rangeID)
	n.met.standbys.Set(int64(len(n.standbys)))
	n.mu.Unlock()
	sb.pool.Close()
	n.logf("cluster: dropped stale standby for %s (source %s alive elsewhere)", rangeID, src)
}

// mayPromote is the arbitration walk for promoting the standby of
// rangeID after its source src died: walk src's successors in ring
// order; the first member that is alive AND involved with the range
// (serving it or holding a standby) is responsible. Members that are
// alive but hold nothing are skipped — they could never promote, and
// treating them as responsible would strand the range. We query
// involvement over the repl port; an unreachable member counts as dead.
func (n *Node) mayPromote(rangeID, src string) bool {
	ms := n.membership()
	for _, m := range ms.Successors(src) {
		if m.ID == n.self.ID {
			return true
		}
		if n.cfg.Probe(n.self.ID, m) != nil {
			continue
		}
		switch n.queryRange(m, rangeID) {
		case "serving", "standby":
			return false
		}
	}
	return true
}

// queryRange asks m what it holds for rangeID over the repl port;
// returns "serving", "standby", "none" or "" (unreachable).
func (n *Node) queryRange(m Member, rangeID string) string {
	conn, err := n.cfg.Dialer(n.self.ID, m.Repl)
	if err != nil {
		return ""
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(n.cfg.IOTimeout))
	if err := writeFrame(conn, msgRangeReq, []byte(rangeID)); err != nil {
		return ""
	}
	typ, p, err := readFrame(conn)
	if err != nil || typ != msgRangeAck {
		return ""
	}
	a, err := decodeAck(p)
	if err != nil || a.Code != ackOK {
		return ""
	}
	return a.Msg
}

// promote adopts the standby held for rangeID: the fencing epoch
// ratchets past everything its previous holder ever shipped, the standby
// pool is bound to a fresh durable store with that fence (and the
// current membership epoch) sealed into its anchor, and the node starts
// serving the range. From this instant the deposed holder's handshake
// and segments answer ackFenced everywhere the fence has been seen, and
// its own write fence kills anything already in its queues.
//
// Immediately after adoption the range is a single copy, so promote also
// starts its re-replication shipper: a bounded grace window lets writes
// through on local durability alone while the shipper lands a standby on
// this node's own ring successor; then the strict synchronous rule
// returns.
func (n *Node) promote(rangeID string) error {
	n.mu.Lock()
	sb := n.standbys[rangeID]
	if sb == nil || (n.promoted[rangeID] != nil && n.rangeDeposed[rangeID] == "") {
		n.mu.Unlock()
		return nil
	}
	delete(n.standbys, rangeID)
	n.met.standbys.Set(int64(len(n.standbys)))
	fence := n.fences[rangeID]
	if sb.fence > fence {
		fence = sb.fence
	}
	fence++
	n.fences[rangeID] = fence
	n.mu.Unlock()

	sb.mu.Lock()
	sb.promoted = true
	st, err := persist.Open(persist.Options{
		Dir:           n.promotedDir(rangeID, fence),
		Key:           n.cfg.Key,
		Fsync:         n.cfg.Fsync,
		SnapshotEvery: n.cfg.SnapshotEvery,
		Logf:          n.cfg.Logf,
	})
	if err == nil {
		st.SetFence(fence)
		st.SetMemEpoch(n.curView().Epoch)
		err = st.Adopt(sb.pool)
		if err != nil {
			st.Close()
		}
	}
	sb.mu.Unlock()
	if err != nil {
		// The range stays unserved (clients bounce off NotOwner and
		// retries stall) rather than served without durability.
		return fmt.Errorf("adopt standby of %s under fence %d: %w", rangeID, fence, err)
	}

	sh := newShipper(n, rangeID, st, false)
	sb.pool.SetWriteFence(n.rangeFence(rangeID))
	n.mu.Lock()
	n.promoted[rangeID] = &promotedRange{owner: rangeID, pool: sb.pool, store: st, fence: fence}
	delete(n.rangeDeposed, rangeID)
	n.shippers[rangeID] = sh
	n.met.promoted.Set(int64(len(n.promoted)))
	n.mu.Unlock()
	st.SetSegmentSink(sh.sink)
	st.SetRotateHook(sh.rotated)
	n.wg.Add(1)
	go sh.run()
	n.met.failovers.Inc()
	n.logf("cluster: promoted standby of %s under fence %d; range served here, re-replicating (grace %s)",
		rangeID, fence, n.cfg.RereplGrace)
	return nil
}
