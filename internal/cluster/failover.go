package cluster

import (
	"fmt"
	"time"

	"aisebmt/internal/persist"
)

// monitor is the failover loop: it probes every peer this node holds a
// standby for, and after FailAfter consecutive failures promotes the
// standby — if, and only if, this node is the dead owner's first live
// successor, so concurrent followers arbitrate deterministically by
// ring order and at most one of them acts.
func (n *Node) monitor() {
	defer n.wg.Done()
	fails := map[string]int{}
	tick := time.NewTicker(n.cfg.ProbeEvery)
	defer tick.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-tick.C:
		}
		n.mu.Lock()
		owners := make([]string, 0, len(n.standbys))
		for o := range n.standbys {
			owners = append(owners, o)
		}
		n.mu.Unlock()
		for _, o := range owners {
			m, _ := n.ms.Member(o)
			if err := n.cfg.Probe(n.self.ID, m); err != nil {
				fails[o]++
			} else {
				fails[o] = 0
			}
			if fails[o] < n.cfg.FailAfter {
				continue
			}
			if !n.firstLiveSuccessor(o) {
				// A member between the dead owner and us is alive; it (or
				// its own follower chain) is responsible. Keep counting —
				// if it dies too, responsibility walks down to us.
				continue
			}
			fails[o] = 0
			if err := n.promote(o); err != nil {
				n.logf("cluster: promote %s: %v", o, err)
			}
		}
	}
}

// firstLiveSuccessor reports whether every member between owner and this
// node in successor order is unreachable — the arbitration rule that
// keeps two standby holders from both promoting.
func (n *Node) firstLiveSuccessor(owner string) bool {
	for _, m := range n.ms.Successors(owner) {
		if m.ID == n.self.ID {
			return true
		}
		if n.cfg.Probe(n.self.ID, m) == nil {
			return false
		}
	}
	return true
}

// promote adopts the standby held for owner: the fencing epoch ratchets
// past everything the owner ever shipped, the standby pool is bound to a
// fresh durable store with that fence sealed into its anchor, and the
// node starts serving the range. From this instant the deposed owner's
// handshake and segments answer ackFenced everywhere the fence has been
// seen, and its own write fence kills anything already in its queues.
func (n *Node) promote(owner string) error {
	n.mu.Lock()
	sb := n.standbys[owner]
	if sb == nil || n.promoted[owner] != nil {
		n.mu.Unlock()
		return nil
	}
	delete(n.standbys, owner)
	n.met.standbys.Set(int64(len(n.standbys)))
	fence := n.fences[owner]
	if sb.fence > fence {
		fence = sb.fence
	}
	fence++
	n.fences[owner] = fence
	n.mu.Unlock()

	sb.mu.Lock()
	sb.promoted = true
	st, err := persist.Open(persist.Options{
		Dir:   n.promotedDir(owner, fence),
		Key:   n.cfg.Key,
		Fsync: n.cfg.Fsync,
		Logf:  n.cfg.Logf,
	})
	if err == nil {
		st.SetFence(fence)
		err = st.Adopt(sb.pool)
		if err != nil {
			st.Close()
		}
	}
	sb.mu.Unlock()
	if err != nil {
		// The range stays unserved (clients bounce off NotOwner and
		// retries stall) rather than served without durability.
		return fmt.Errorf("adopt standby of %s under fence %d: %w", owner, fence, err)
	}

	n.mu.Lock()
	n.promoted[owner] = &promotedRange{owner: owner, pool: sb.pool, store: st, fence: fence}
	n.met.promoted.Set(int64(len(n.promoted)))
	n.mu.Unlock()
	n.met.failovers.Inc()
	n.logf("cluster: promoted standby of %s under fence %d; range served here", owner, fence)
	return nil
}
