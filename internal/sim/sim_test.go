package sim

import (
	"testing"

	"aisebmt/internal/trace"
)

func run(t *testing.T, s Scheme, bench string) Result {
	t.Helper()
	p, ok := trace.ProfileByName(bench)
	if !ok {
		t.Fatalf("no profile %q", bench)
	}
	r, err := RunScheme(s, DefaultMachine(), p, 30000, 100000, 99)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDeterministic(t *testing.T) {
	a := run(t, SchemeAISEBMT(128), "art")
	b := run(t, SchemeAISEBMT(128), "art")
	if a != b {
		t.Errorf("same inputs, different results:\n%+v\n%+v", a, b)
	}
}

func TestBaselineCheapest(t *testing.T) {
	base := run(t, Baseline(), "swim")
	for _, s := range []Scheme{SchemeAISE(), SchemeGlobal64(), SchemeAISEMT(128), SchemeAISEBMT(128), SchemeGlobal64MT(128)} {
		r := run(t, s, "swim")
		if r.Cycles <= base.Cycles {
			t.Errorf("%s (%d cycles) not slower than baseline (%d)", s.Name, r.Cycles, base.Cycles)
		}
	}
}

// TestPaperOrdering checks the headline qualitative result on a
// memory-bound benchmark: AISE ≤ global32 ≤ global64 for encryption, and
// AISE+BMT ≪ AISE+MT ≤ global64+MT for combined protection.
func TestPaperOrdering(t *testing.T) {
	base := run(t, Baseline(), "art")
	ovh := func(s Scheme) float64 { return run(t, s, "art").Overhead(base) }
	aise := ovh(SchemeAISE())
	g32 := ovh(SchemeGlobal32())
	g64 := ovh(SchemeGlobal64())
	bmt := ovh(SchemeAISEBMT(128))
	mt := ovh(SchemeAISEMT(128))
	g64mt := ovh(SchemeGlobal64MT(128))
	if !(aise < g32 && g32 < g64) {
		t.Errorf("encryption ordering violated: AISE %.3f, g32 %.3f, g64 %.3f", aise, g32, g64)
	}
	if !(bmt < mt && mt < g64mt) {
		t.Errorf("integrity ordering violated: BMT %.3f, MT %.3f, g64MT %.3f", bmt, mt, g64mt)
	}
	if bmt > mt/2 {
		t.Errorf("BMT (%.3f) should be far below MT (%.3f)", bmt, mt)
	}
}

// TestCachePollution reproduces Figure 9's shape: the standard tree evicts
// data from L2 while the Bonsai tree barely does.
func TestCachePollution(t *testing.T) {
	base := run(t, Baseline(), "equake")
	mt := run(t, SchemeAISEMT(128), "equake")
	bmt := run(t, SchemeAISEBMT(128), "equake")
	if base.L2DataShare < 0.999 {
		t.Errorf("baseline data share = %.3f, want 1.0", base.L2DataShare)
	}
	if mt.L2DataShare > 0.85 {
		t.Errorf("MT data share = %.3f; expected substantial pollution", mt.L2DataShare)
	}
	if bmt.L2DataShare < 0.90 {
		t.Errorf("BMT data share = %.3f; Bonsai nodes should be tiny", bmt.L2DataShare)
	}
	if bmt.L2DataShare <= mt.L2DataShare {
		t.Error("BMT pollutes at least as much as MT")
	}
}

// TestMissRateAndBus reproduces Figure 10's shape: MT raises the data miss
// rate and bus utilization; BMT nearly does not.
func TestMissRateAndBus(t *testing.T) {
	base := run(t, Baseline(), "mgrid")
	mt := run(t, SchemeAISEMT(128), "mgrid")
	bmt := run(t, SchemeAISEBMT(128), "mgrid")
	if mt.L2MissRate <= base.L2MissRate {
		t.Errorf("MT miss rate %.3f not above base %.3f", mt.L2MissRate, base.L2MissRate)
	}
	if bmt.L2MissRate >= mt.L2MissRate {
		t.Errorf("BMT miss rate %.3f not below MT %.3f", bmt.L2MissRate, mt.L2MissRate)
	}
	if mt.BusUtilization <= base.BusUtilization {
		t.Error("MT bus utilization not above base")
	}
	if bmt.BusUtilization >= mt.BusUtilization {
		t.Error("BMT bus utilization not below MT")
	}
}

// TestMACSizeSensitivity reproduces Figure 11's shape: MT degrades steeply
// with MAC width; BMT stays nearly flat.
func TestMACSizeSensitivity(t *testing.T) {
	base := run(t, Baseline(), "applu")
	mt32 := run(t, SchemeAISEMT(32), "applu").Overhead(base)
	mt256 := run(t, SchemeAISEMT(256), "applu").Overhead(base)
	bmt32 := run(t, SchemeAISEBMT(32), "applu").Overhead(base)
	bmt256 := run(t, SchemeAISEBMT(256), "applu").Overhead(base)
	if mt256 <= mt32 {
		t.Errorf("MT: 256-bit (%.3f) not worse than 32-bit (%.3f)", mt256, mt32)
	}
	if mt256-mt32 <= 2*(bmt256-bmt32) {
		t.Errorf("MT growth (%.3f) should far exceed BMT growth (%.3f)", mt256-mt32, bmt256-bmt32)
	}
}

func TestCounterCacheReach(t *testing.T) {
	// AISE's split counters cover 64x more data per cached block than
	// 64-bit global counters; its hit rate must be higher.
	aise := run(t, SchemeAISE(), "art")
	g64 := run(t, SchemeGlobal64(), "art")
	if aise.CtrHitRate <= g64.CtrHitRate {
		t.Errorf("AISE ctr hit %.3f not above global64 %.3f", aise.CtrHitRate, g64.CtrHitRate)
	}
}

func TestPreciseVerifyCostsMore(t *testing.T) {
	s := SchemeAISEMT(128)
	imprecise := run(t, s, "equake")
	s.PreciseVerify = true
	s.Name = "AISE+MT-precise"
	precise := run(t, s, "equake")
	if precise.Cycles <= imprecise.Cycles {
		t.Errorf("precise verification (%d) not slower than timely (%d)", precise.Cycles, imprecise.Cycles)
	}
}

func TestCachingDataMACsHurts(t *testing.T) {
	// The paper's §5.2 design choice: data MACs have low reuse; caching
	// them pollutes L2. The ablation must show no benefit on a
	// memory-bound workload.
	s := SchemeAISEBMT(128)
	uncached := run(t, s, "art")
	s.CacheDataMACs = true
	s.Name = "AISE+BMT-macs-cached"
	cached := run(t, s, "art")
	if cached.L2DataShare >= uncached.L2DataShare {
		t.Errorf("caching MACs did not reduce data share (%.3f vs %.3f)", cached.L2DataShare, uncached.L2DataShare)
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := New(Scheme{Name: "bad", Integrity: IntegBMT}, DefaultMachine()); err == nil {
		t.Error("BMT without encryption accepted")
	}
	if _, err := New(Scheme{Name: "bad", MACBits: 99}, DefaultMachine()); err == nil {
		t.Error("bad MAC width accepted")
	}
	if _, err := New(Scheme{Name: "bad", Encryption: Encryption(42)}, DefaultMachine()); err == nil {
		t.Error("unknown encryption accepted")
	}
	if _, err := New(Scheme{Name: "bad", Integrity: Integrity(42)}, DefaultMachine()); err == nil {
		t.Error("unknown integrity accepted")
	}
}

func TestOverheadMath(t *testing.T) {
	base := Result{Cycles: 100}
	r := Result{Cycles: 125}
	if got := r.Overhead(base); got < 0.249 || got > 0.251 {
		t.Errorf("Overhead = %f, want 0.25", got)
	}
	if (Result{Cycles: 5}).Overhead(Result{}) != 0 {
		t.Error("zero-base overhead not guarded")
	}
}

func TestExposureOnlyWithEncryption(t *testing.T) {
	base := run(t, Baseline(), "mcf")
	if base.ExposureCycles != 0 {
		t.Error("baseline recorded decryption exposure")
	}
	enc := run(t, SchemeAISE(), "mcf")
	if enc.ExposureCycles == 0 {
		t.Error("AISE on mcf recorded no exposure at all")
	}
}

func TestSchemeNamesPopulated(t *testing.T) {
	for _, s := range []Scheme{Baseline(), SchemeGlobal32(), SchemeGlobal64(), SchemeAISE(), SchemeAISEMT(128), SchemeAISEBMT(128), SchemeGlobal64MT(128)} {
		if s.Name == "" {
			t.Error("scheme with empty name")
		}
	}
}

// TestResultInvariants: structural sanity across every scheme on one
// benchmark — access counts, bounded rates, non-negative work counters.
func TestResultInvariants(t *testing.T) {
	schemes := []Scheme{Baseline(), SchemeDirect(), SchemeGlobal32(), SchemeGlobal64(),
		SchemeAISE(), SchemeAISEPred(), SchemeMACOnly(128), SchemeLogHash(10000),
		SchemeAISEMT(128), SchemeAISEBMT(128), SchemeGlobal64MT(128)}
	for _, s := range schemes {
		r := run(t, s, "equake")
		if r.MemAccesses != 100000 {
			t.Errorf("%s: accesses = %d, want 100000", s.Name, r.MemAccesses)
		}
		if r.Instructions <= r.MemAccesses {
			t.Errorf("%s: instructions = %d not above accesses", s.Name, r.Instructions)
		}
		if r.Cycles == 0 {
			t.Errorf("%s: zero cycles", s.Name)
		}
		if r.BusUtilization < 0 || r.BusUtilization > 1 {
			t.Errorf("%s: bus utilization %f", s.Name, r.BusUtilization)
		}
		if r.L2MissRate < 0 || r.L2MissRate > 1 {
			t.Errorf("%s: miss rate %f", s.Name, r.L2MissRate)
		}
		if r.L2DataShare < 0 || r.L2DataShare > 1 {
			t.Errorf("%s: data share %f", s.Name, r.L2DataShare)
		}
		if r.CtrHitRate < 0 || r.CtrHitRate > 1 {
			t.Errorf("%s: ctr hit rate %f", s.Name, r.CtrHitRate)
		}
	}
}
