package sim

import (
	"testing"

	"aisebmt/internal/trace"
)

// TestDirectEncryptionWorst reproduces §2's claim that direct encryption
// exposes the full cipher latency: it must cost more than AISE on a
// memory-bound benchmark.
func TestDirectEncryptionWorst(t *testing.T) {
	base := run(t, Baseline(), "swim")
	direct := run(t, SchemeDirect(), "swim")
	aise := run(t, SchemeAISE(), "swim")
	if direct.Overhead(base) <= aise.Overhead(base) {
		t.Errorf("direct %.3f not above AISE %.3f", direct.Overhead(base), aise.Overhead(base))
	}
	if direct.ExposureCycles == 0 {
		t.Error("direct encryption recorded no exposure")
	}
}

// TestCounterPredictionHelps: speculative pads must reduce exposure on a
// counter-cache-hostile benchmark and report a meaningful hit rate.
func TestCounterPredictionHelps(t *testing.T) {
	plain := run(t, SchemeAISE(), "mcf")
	pred := run(t, SchemeAISEPred(), "mcf")
	if pred.ExposureCycles >= plain.ExposureCycles {
		t.Errorf("prediction exposure %d not below plain %d", pred.ExposureCycles, plain.ExposureCycles)
	}
	if pred.PredHitRate <= 0.5 {
		t.Errorf("prediction hit rate %.3f implausibly low", pred.PredHitRate)
	}
	if plain.PredHitRate != 0 {
		t.Error("non-prediction run reported a hit rate")
	}
}

// TestMACOnlyCheaperThanBMT: without a tree there are no node fetches, so
// MAC-only should cost no more than BMT (it also protects less).
func TestMACOnlyCheaperThanBMT(t *testing.T) {
	base := run(t, Baseline(), "art")
	maconly := run(t, SchemeMACOnly(128), "art")
	bmt := run(t, SchemeAISEBMT(128), "art")
	if maconly.Overhead(base) > bmt.Overhead(base)+0.01 {
		t.Errorf("MAC-only %.3f above BMT %.3f", maconly.Overhead(base), bmt.Overhead(base))
	}
	if maconly.TreeNodeFetches != 0 {
		t.Error("MAC-only fetched tree nodes")
	}
	if maconly.MACFetches == 0 {
		t.Error("MAC-only fetched no MACs")
	}
}

// TestLogHashCheckpoints: checkpoints fire at the configured interval and
// cost bandwidth proportional to the written footprint.
func TestLogHashCheckpoints(t *testing.T) {
	p, _ := trace.ProfileByName("swim")
	m := DefaultMachine()
	r, err := RunScheme(SchemeLogHash(5000), m, p, 20000, 100000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checkpoints == 0 {
		t.Fatal("no checkpoints fired")
	}
	noCk, err := RunScheme(SchemeLogHash(0), m, p, 20000, 100000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if noCk.Checkpoints != 0 {
		t.Error("interval 0 fired checkpoints")
	}
	if r.BytesMoved <= noCk.BytesMoved {
		t.Error("checkpoint sweeps moved no extra bytes")
	}
}

// TestPredictionRequiresCounters: the configuration is rejected without
// counter-mode encryption.
func TestPredictionRequiresCounters(t *testing.T) {
	s := Scheme{Name: "bad", CounterPrediction: true}
	if _, err := New(s, DefaultMachine()); err == nil {
		t.Error("prediction without counters accepted")
	}
}

// TestSourceInterface: Run accepts any Source implementation.
func TestSourceInterface(t *testing.T) {
	s, err := New(Baseline(), DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	fixed := &fixedSource{}
	r := s.Run(fixed, 10, 100, "fixed")
	if r.MemAccesses != 100 {
		t.Errorf("measured %d accesses, want 100", r.MemAccesses)
	}
}

type fixedSource struct{ i uint64 }

func (f *fixedSource) Next() trace.Access {
	f.i++
	return trace.Access{Gap: 3, Addr: (f.i % 1024) * 64}
}

// TestMACCoverageTradeoff: wider coverage cuts MAC storage but raises bus
// traffic and overhead on a miss-heavy benchmark.
func TestMACCoverageTradeoff(t *testing.T) {
	base := run(t, Baseline(), "art")
	k1 := SchemeAISEBMT(128)
	k8 := SchemeAISEBMT(128)
	k8.Name = "AISE+BMT/k8"
	k8.MACCoverage = 8
	r1 := run(t, k1, "art")
	r8 := run(t, k8, "art")
	if r8.BytesMoved <= r1.BytesMoved {
		t.Errorf("coverage 8 moved %d bytes, not above per-block %d", r8.BytesMoved, r1.BytesMoved)
	}
	if r8.Overhead(base) <= r1.Overhead(base) {
		t.Errorf("coverage 8 overhead %.3f not above per-block %.3f", r8.Overhead(base), r1.Overhead(base))
	}
}

func TestMACCoverageValidation(t *testing.T) {
	s := SchemeAISEBMT(128)
	s.MACCoverage = 3
	if _, err := New(s, DefaultMachine()); err == nil {
		t.Error("coverage 3 accepted")
	}
	s.MACCoverage = 128
	if _, err := New(s, DefaultMachine()); err == nil {
		t.Error("coverage 128 accepted")
	}
}

// TestInstructionFetchModeled: a profile with a large code footprint incurs
// L1I-driven L2 traffic; one with a small footprint does not.
func TestInstructionFetchModeled(t *testing.T) {
	// gcc carries CodeBytes = 96KB (> 32KB L1I); art uses the 16KB default.
	gcc := run(t, Baseline(), "gcc")
	if gcc.Cycles == 0 {
		t.Fatal("no cycles")
	}
	// Sources without CodeSize skip the front end entirely.
	s, err := New(Baseline(), DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run(&fixedSource{}, 10, 1000, "fixed")
	if r.MemAccesses != 1000 {
		t.Errorf("fixed source accesses = %d", r.MemAccesses)
	}
}

// TestDRAMBanksSlowConflicts: the banked memory model must cost more than
// flat latency on a memory-bound workload (bank serialization) and leave
// scheme ordering intact.
func TestDRAMBanksSlowConflicts(t *testing.T) {
	p, _ := trace.ProfileByName("swim")
	flat := DefaultMachine()
	banked := DefaultMachine()
	banked.DRAMBanks = 8
	rFlat, err := RunScheme(SchemeAISEBMT(128), flat, p, 20000, 60000, 9)
	if err != nil {
		t.Fatal(err)
	}
	rBank, err := RunScheme(SchemeAISEBMT(128), banked, p, 20000, 60000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if rBank.Cycles <= rFlat.Cycles {
		t.Errorf("banked run (%d cycles) not slower than flat (%d)", rBank.Cycles, rFlat.Cycles)
	}
	// Ordering preserved under banking.
	bFlat, _ := RunScheme(Baseline(), banked, p, 20000, 60000, 9)
	mt, _ := RunScheme(SchemeGlobal64MT(128), banked, p, 20000, 60000, 9)
	if !(rBank.Overhead(bFlat) < mt.Overhead(bFlat)) {
		t.Error("BMT not below global64+MT under banked DRAM")
	}
}

// TestHIDETimingCost: the HIDE budget adds traffic and overhead; budget off
// changes nothing.
func TestHIDETimingCost(t *testing.T) {
	base := run(t, SchemeAISEBMT(128), "art")
	h := SchemeAISEBMT(128)
	h.Name = "AISE+BMT+HIDE"
	h.HIDEBudget = 32
	prot := run(t, h, "art")
	if prot.Repermutes == 0 {
		t.Fatal("no repermutations fired")
	}
	if prot.Cycles <= base.Cycles {
		t.Errorf("HIDE run (%d cycles) not slower than plain (%d)", prot.Cycles, base.Cycles)
	}
	if prot.BytesMoved <= base.BytesMoved {
		t.Error("HIDE moved no extra bytes")
	}
	if base.Repermutes != 0 {
		t.Error("plain run reported repermutes")
	}
}
