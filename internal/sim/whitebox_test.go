package sim

import (
	"testing"

	"aisebmt/internal/cache"
	"aisebmt/internal/layout"
	"aisebmt/internal/trace"
)

// White-box tests of the timing model's internal mechanics: metadata
// addressing, cached tree walks, writeback charging and the front end.

func mustSim(t *testing.T, s Scheme) *Simulator {
	t.Helper()
	sm, err := New(s, DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

func TestCtrSlotAddressing(t *testing.T) {
	// AISE: one counter block per 4KB page.
	aise := mustSim(t, SchemeAISE())
	if aise.ctrSlot(0x0000) != aise.ctrSlot(0x0fff) {
		t.Error("AISE: same page, different counter blocks")
	}
	if aise.ctrSlot(0x0000) == aise.ctrSlot(0x1000) {
		t.Error("AISE: adjacent pages share a counter block")
	}
	// global64: 8 counters per 64-byte block => one block covers 512B of data.
	g64 := mustSim(t, SchemeGlobal64())
	if g64.ctrSlot(0x000) != g64.ctrSlot(0x1ff) {
		t.Error("global64: 512B window split across counter blocks")
	}
	if g64.ctrSlot(0x000) == g64.ctrSlot(0x200) {
		t.Error("global64: distinct 512B windows share a counter block")
	}
	// global32: 16 counters per block => 1KB of data per counter block.
	g32 := mustSim(t, SchemeGlobal32())
	if g32.ctrSlot(0x000) != g32.ctrSlot(0x3ff) {
		t.Error("global32: 1KB window split")
	}
	if g32.ctrSlot(0x000) == g32.ctrSlot(0x400) {
		t.Error("global32: distinct windows share")
	}
	// Counter slots live in the counter region, past the data region.
	if uint64(aise.ctrSlot(0)) < aise.machine.DataBytes {
		t.Error("counter slot inside the data region")
	}
}

func TestDataMACSlotAddressing(t *testing.T) {
	bmt := mustSim(t, SchemeAISEBMT(128))
	// 4 MACs (16B each) per 64-byte MAC block: blocks 0-3 share, 4 differs.
	if bmt.dataMACSlot(0x00) != bmt.dataMACSlot(0xc0) {
		t.Error("MAC block sharing wrong")
	}
	if bmt.dataMACSlot(0xc0) == bmt.dataMACSlot(0x100) {
		t.Error("adjacent MAC groups share a block")
	}
	// Under coverage 4: one MAC per 4 blocks -> 16 data blocks per MAC block.
	k4 := SchemeAISEBMT(128)
	k4.MACCoverage = 4
	cov := mustSim(t, k4)
	if cov.dataMACSlot(0x000) != cov.dataMACSlot(0x3c0) {
		t.Error("coverage-4 MAC block span wrong")
	}
	if cov.dataMACSlot(0x000) == cov.dataMACSlot(0x400) {
		t.Error("coverage-4 groups collide")
	}
}

func TestTreeWalkStopsAtCachedNode(t *testing.T) {
	s := mustSim(t, SchemeAISEMT(128))
	leaf := layout.Addr(0x40000)
	nodes, err := s.tree.Walk(leaf)
	if err != nil {
		t.Fatal(err)
	}
	// Cold walk fetches every level.
	before := s.treeFetch
	s.treeWalk(leaf, 0, false)
	coldFetches := s.treeFetch - before
	if coldFetches != uint64(len(nodes)) {
		t.Fatalf("cold walk fetched %d nodes, want %d", coldFetches, len(nodes))
	}
	// Second walk of the same leaf: the level-0 node is now cached, so the
	// walk stops immediately.
	before = s.treeFetch
	s.treeWalk(leaf, 1000, false)
	if got := s.treeFetch - before; got != 0 {
		t.Errorf("warm walk fetched %d nodes, want 0", got)
	}
	// A different leaf sharing only upper levels fetches exactly the
	// uncached lower levels.
	other := leaf + 4*layout.PageSize // different L0 node, shared upper levels
	otherNodes, _ := s.tree.Walk(other)
	shared := 0
	for i := range otherNodes {
		if otherNodes[i] == nodes[i] {
			shared = len(otherNodes) - i
			break
		}
	}
	before = s.treeFetch
	s.treeWalk(other, 2000, false)
	if got := int(s.treeFetch - before); got != len(otherNodes)-shared {
		t.Errorf("partial walk fetched %d, want %d", got, len(otherNodes)-shared)
	}
}

func TestWritebackChargesBus(t *testing.T) {
	s := mustSim(t, SchemeAISEBMT(128))
	busy := s.bus.BusyCycles()
	s.writebackVictim(victimOf(0x1000, true), 0)
	if s.bus.BusyCycles() == busy {
		t.Error("dirty data writeback moved no bytes")
	}
	// Clean victims cost nothing.
	busy = s.bus.BusyCycles()
	s.writebackVictim(victimOf(0x2000, false), 0)
	if s.bus.BusyCycles() != busy {
		t.Error("clean victim moved bytes")
	}
}

func TestExposureAccounting(t *testing.T) {
	// With an enormous counter cache every counter access hits after the
	// first touch, so pad generation fully overlaps the 200-cycle fetch and
	// exposure accrues only on compulsory counter misses.
	m := DefaultMachine()
	m.CtrBytes = 1 << 20
	s, err := New(SchemeAISE(), m)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := trace.ProfileByName("eon") // cache-resident workload
	gen := trace.NewGenerator(p, 0, 3)
	r := s.Run(gen, 20000, 50000, "eon")
	perMiss := float64(r.ExposureCycles)
	if r.CtrHitRate < 0.95 {
		t.Errorf("huge counter cache hit rate = %.3f", r.CtrHitRate)
	}
	_ = perMiss
}

func victimOf(a layout.Addr, dirty bool) cache.Victim {
	return cache.Victim{Valid: true, Addr: a, Dirty: dirty, Class: cache.Data}
}
