package sim

import (
	"testing"

	"aisebmt/internal/trace"
)

func runCMP(t *testing.T, s Scheme, bench string, cores int) []Result {
	t.Helper()
	p, _ := trace.ProfileByName(bench)
	rs, err := RunCMPScheme(s, DefaultMachine(), p, cores, 20000, 60000, 5)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func maxCycles(rs []Result) uint64 {
	var m uint64
	for _, r := range rs {
		if r.Cycles > m {
			m = r.Cycles
		}
	}
	return m
}

func TestCMPSingleCoreMatchesShape(t *testing.T) {
	// One core through the CMP path behaves like a plain simulator run
	// (modulo the disabled instruction front end).
	rs := runCMP(t, Baseline(), "equake", 1)
	if len(rs) != 1 || rs[0].Cycles == 0 || rs[0].MemAccesses != 60000 {
		t.Fatalf("single-core CMP result: %+v", rs[0])
	}
}

func TestCMPContentionGrows(t *testing.T) {
	// More cores sharing the bus slow each core down under a bandwidth-heavy
	// scheme, and the BMT-vs-MT gap persists at four cores.
	base1 := maxCycles(runCMP(t, Baseline(), "equake", 1))
	base4 := maxCycles(runCMP(t, Baseline(), "equake", 4))
	if base4 <= base1 {
		t.Errorf("4-core baseline (%d) not slower per core than 1-core (%d)", base4, base1)
	}
	mt4 := maxCycles(runCMP(t, SchemeGlobal64MT(128), "equake", 4))
	bmt4 := maxCycles(runCMP(t, SchemeAISEBMT(128), "equake", 4))
	if !(bmt4 < mt4) {
		t.Errorf("4-core: BMT (%d) not below global64+MT (%d)", bmt4, mt4)
	}
	// Relative overhead at 4 cores must exceed the single-core overhead for
	// the bandwidth-hungry tree scheme.
	mt1 := maxCycles(runCMP(t, SchemeGlobal64MT(128), "equake", 1))
	ovh1 := float64(mt1)/float64(base1) - 1
	ovh4 := float64(mt4)/float64(base4) - 1
	if ovh4 <= ovh1 {
		t.Errorf("global64+MT overhead did not grow with cores: 1-core %.3f, 4-core %.3f", ovh1, ovh4)
	}
}

func TestCMPDisjointPlacement(t *testing.T) {
	p, _ := trace.ProfileByName("mcf") // 100MB working set
	if _, err := RunCMPScheme(Baseline(), DefaultMachine(), p, 16, 100, 100, 1); err == nil {
		t.Error("oversubscribed placement accepted (16 x 100MB > 768MB)")
	}
	if _, err := RunCMPScheme(Baseline(), DefaultMachine(), p, 4, 100, 100, 1); err != nil {
		t.Errorf("4 x 100MB placement rejected: %v", err)
	}
}

func TestCMPValidation(t *testing.T) {
	if _, err := NewCMP(Baseline(), DefaultMachine(), 0); err == nil {
		t.Error("zero cores accepted")
	}
	cmp, err := NewCMP(Baseline(), DefaultMachine(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Cores() != 2 {
		t.Errorf("Cores = %d", cmp.Cores())
	}
	if _, err := cmp.Run([]Source{&fixedSource{}}, 10, 10, []string{"a"}); err == nil {
		t.Error("mismatched source count accepted")
	}
}

func TestCMPDeterministic(t *testing.T) {
	a := runCMP(t, SchemeAISEBMT(128), "art", 2)
	b := runCMP(t, SchemeAISEBMT(128), "art", 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("core %d results differ across identical runs", i)
		}
	}
}

// TestCMPMixedWorkload: different profiles per core run side by side.
func TestCMPMixedWorkload(t *testing.T) {
	cmp, err := NewCMP(SchemeAISEBMT(128), DefaultMachine(), 2)
	if err != nil {
		t.Fatal(err)
	}
	art, _ := trace.ProfileByName("art")
	gzip, _ := trace.ProfileByName("gzip")
	gens := []Source{
		trace.NewGenerator(art, 0, 1),
		trace.NewGenerator(gzip, 256<<20, 2),
	}
	rs, err := cmp.Run(gens, 10000, 40000, []string{"art", "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	// The memory-bound core burns far more cycles than the cache-resident one.
	if rs[0].Cycles <= rs[1].Cycles {
		t.Errorf("art core (%d) not slower than gzip core (%d)", rs[0].Cycles, rs[1].Cycles)
	}
}
