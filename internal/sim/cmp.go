package sim

import (
	"fmt"

	"aisebmt/internal/layout"
	"aisebmt/internal/trace"
)

// CMP is a chip multiprocessor built from N Simulator cores that share the
// uncore: the unified L2, the counter cache, the crypto engines, the Merkle
// tree state and — critically — the memory bus. The paper motivates AISE
// partly by the CMP era (§1); this model lets the experiments show how each
// protection scheme's bandwidth appetite scales with core count.
//
// Cores advance in global-time order (the core with the smallest local
// clock steps next), so shared-resource requests arrive at the bus in
// nondecreasing time just as on a real interconnect.
type CMP struct {
	cores []*Simulator
}

// NewCMP builds an n-core CMP running the same protection scheme. Private
// per-core state: L1I/L1D and the trace cursor. Shared: everything else.
func NewCMP(s Scheme, m Machine, n int) (*CMP, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: core count %d", n)
	}
	first, err := New(s, m)
	if err != nil {
		return nil, err
	}
	cores := []*Simulator{first}
	for i := 1; i < n; i++ {
		c, err := New(s, m)
		if err != nil {
			return nil, err
		}
		// Adopt the shared uncore.
		c.l2 = first.l2
		c.ctrC = first.ctrC
		c.bus = first.bus
		c.aes = first.aes
		c.hmacE = first.hmacE
		c.tree = first.tree
		cores = append(cores, c)
	}
	return &CMP{cores: cores}, nil
}

// Cores returns the core count.
func (c *CMP) Cores() int { return len(c.cores) }

// Run drives each core with its own access source for warmup+n accesses,
// interleaved in global-time order, and returns one Result per core. The
// instruction front end is disabled in CMP mode (sources' CodeSize is
// ignored) to keep cross-core interference attributable to data traffic.
func (c *CMP) Run(gens []Source, warmup, n int, names []string) ([]Result, error) {
	if len(gens) != len(c.cores) || len(names) != len(c.cores) {
		return nil, fmt.Errorf("sim: %d cores need %d sources and names, got %d/%d",
			len(c.cores), len(c.cores), len(gens), len(names))
	}
	type coreRun struct {
		sim  *Simulator
		gen  Source
		done int
		base struct {
			cycles, instrs, accesses        uint64
			busy, bytes                     uint64
			treeFetch, macFetch, exposure   uint64
			treeLookups, treeMiss           uint64
			ctrHits, ctrLookups             uint64
			l2Accesses, l2Misses, l2Samples uint64
		}
	}
	runs := make([]*coreRun, len(c.cores))
	for i := range runs {
		runs[i] = &coreRun{sim: c.cores[i], gen: gens[i]}
	}
	total := warmup + n
	// Global-time-ordered interleave.
	for {
		var next *coreRun
		for _, r := range runs {
			if r.done >= total {
				continue
			}
			if next == nil || r.sim.now < next.sim.now {
				next = r
			}
		}
		if next == nil {
			break
		}
		next.sim.step(next.gen.Next())
		next.done++
		if next.done == warmup {
			s := next.sim
			b := &next.base
			b.cycles, b.instrs, b.accesses = s.cycles, s.instrs, s.accesses
			b.busy, b.bytes = s.bus.BusyCycles(), s.bus.BytesMoved()
			b.treeFetch, b.macFetch, b.exposure = s.treeFetch, s.macFetch, s.exposure
			b.treeLookups, b.treeMiss = s.treeLookups, s.treeMiss
			b.ctrHits, b.ctrLookups = s.ctrHits, s.ctrLookups
			l2 := s.l2.Stats()
			b.l2Accesses, b.l2Misses = l2.Accesses, l2.Misses
		}
	}
	out := make([]Result, len(runs))
	for i, r := range runs {
		s := r.sim
		b := &r.base
		res := Result{
			Benchmark:       names[i],
			Scheme:          s.scheme.Name,
			Cycles:          s.cycles - b.cycles,
			Instructions:    s.instrs - b.instrs,
			MemAccesses:     s.accesses - b.accesses,
			L2DataShare:     s.l2.Stats().DataShareOfValid(),
			TreeNodeFetches: s.treeFetch - b.treeFetch,
			MACFetches:      s.macFetch - b.macFetch,
			ExposureCycles:  s.exposure - b.exposure,
		}
		if res.Cycles > 0 {
			// Bus counters are shared; report chip-wide utilization against
			// this core's elapsed time (cores end at similar clocks).
			res.BusUtilization = float64(s.bus.BusyCycles()-b.busy) / float64(res.Cycles)
			if res.BusUtilization > 1 {
				res.BusUtilization = 1
			}
			res.BytesMoved = s.bus.BytesMoved() - b.bytes
		}
		if s.ctrLookups > b.ctrLookups {
			res.CtrHitRate = float64(s.ctrHits-b.ctrHits) / float64(s.ctrLookups-b.ctrLookups)
		}
		out[i] = res
	}
	return out, nil
}

// RunCMPScheme is the convenience wrapper: n cores each running the profile
// at a disjoint placement in the shared data region.
func RunCMPScheme(s Scheme, m Machine, p trace.Profile, cores, warmup, n int, seed uint64) ([]Result, error) {
	cmp, err := NewCMP(s, m, cores)
	if err != nil {
		return nil, err
	}
	stride := m.DataBytes / uint64(cores) &^ (layout.PageSize - 1)
	if p.WorkingSet > stride {
		return nil, fmt.Errorf("sim: working set %d exceeds per-core share %d", p.WorkingSet, stride)
	}
	gens := make([]Source, cores)
	names := make([]string, cores)
	for i := 0; i < cores; i++ {
		gens[i] = trace.NewGenerator(p, uint64(i)*stride, seed+uint64(i))
		names[i] = fmt.Sprintf("%s#%d", p.Name, i)
	}
	return cmp.Run(gens, warmup, n, names)
}
