// Package sim is the execution-driven timing model standing in for the
// paper's SESC setup (§6): a processor front end consuming synthetic
// benchmark traces, split L1, a unified 1MB/8-way L2 shared between data
// and Merkle tree nodes, a 32KB/16-way counter cache, a 200-cycle memory
// behind a shared bus, and 80-cycle pipelined AES and HMAC engines.
//
// The model charges cycles for exactly the mechanisms the paper measures:
// decryption-latency exposure when a block's counter is not on chip, the
// bandwidth and L2 pollution of Merkle tree node fetches, and bus queuing.
// Verification is "timely but non-precise" by default — tree fetches
// consume bandwidth and cache space but do not extend the load's critical
// path — matching §6; PreciseVerify flips that for the ablation study.
package sim

import (
	"fmt"

	"aisebmt/internal/bus"
	"aisebmt/internal/cache"
	"aisebmt/internal/engine"
	"aisebmt/internal/integrity"
	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
	"aisebmt/internal/trace"
)

// Encryption selects the timing model's encryption scheme.
type Encryption int

// Encryption schemes (CtrAddr covers both address-based per-block counter
// variants: their timing is identical, as §7.2 notes).
const (
	EncNone Encryption = iota
	EncGlobal32
	EncGlobal64
	EncCtrAddr
	EncAISE
	// EncDirect is the early-scheme baseline: AES applied directly to the
	// block, so decryption cannot start until the ciphertext arrives and
	// the full cipher latency lands on the critical path (§2).
	EncDirect
)

// Integrity selects the timing model's verification scheme.
type Integrity int

// Integrity schemes.
const (
	IntegNone Integrity = iota
	IntegMT
	IntegBMT
	// IntegMACOnly is the XOM-style baseline: one per-block MAC fetched on
	// every miss, no tree (and no replay protection).
	IntegMACOnly
	// IntegLogHash is the Suh et al. baseline: per-access incremental
	// hashing plus periodic checkpoint sweeps over the written footprint.
	IntegLogHash
)

// Scheme is a protection configuration under test.
type Scheme struct {
	Name          string
	Encryption    Encryption
	Integrity     Integrity
	MACBits       int
	CacheDataMACs bool // ablation: cache BMT per-block data MACs in L2
	PreciseVerify bool // ablation: verification latency blocks the load
	// CounterPrediction enables the Shi et al. optimization the paper cites
	// (§2): on a counter-cache miss, pads for the predicted counter value
	// are generated speculatively in parallel with the fetch; a correct
	// prediction fully hides the exposure.
	CounterPrediction bool
	// CheckpointInterval is the log-hash checkpoint period in L2 misses
	// (IntegLogHash only; 0 means a single end-of-run checkpoint).
	CheckpointInterval uint64
	// MACCoverage is the blocks-per-MAC factor for BMT data MACs (§7.4's
	// storage optimization): verification and update read the whole group.
	MACCoverage int
	// HIDEBudget, when positive, enables HIDE-style address-bus protection:
	// after this many L2 misses to a page, the page is re-permuted — 64
	// block reads plus 64 writebacks of traffic (with their metadata costs)
	// charged off the critical path.
	HIDEBudget int
}

// Machine is the simulated hardware configuration.
type Machine struct {
	L1Bytes, L1Ways   int
	L1IBytes, L1IWays int
	L2Bytes, L2Ways   int
	// L2ReservedDataWays partitions the L2 per set: metadata (tree nodes,
	// cached MACs) may only occupy the remaining ways. 0 disables
	// partitioning (the paper's shared-L2 configuration).
	L2ReservedDataWays int
	// DRAMBanks enables a banked memory model: each access occupies its
	// bank for DRAMBankBusy cycles, so conflicting streams (data vs tree
	// nodes in the same bank) serialize. 0 keeps the paper's flat-latency
	// memory.
	DRAMBanks         int
	DRAMBankBusy      uint64
	CtrBytes, CtrWays int
	L2Lat             uint64
	MemLat            uint64
	BusBytesPerCycle  int
	MemoryBytes       uint64
	DataBytes         uint64  // protected data region size
	IPC               float64 // issue rate on non-memory instructions
	MLP               float64 // overlap divisor applied to memory stalls
}

// DefaultMachine returns the paper's §6 configuration.
func DefaultMachine() Machine {
	return Machine{
		L1Bytes: 32 << 10, L1Ways: 2,
		L1IBytes: 32 << 10, L1IWays: 2,
		L2Bytes: 1 << 20, L2Ways: 8,
		CtrBytes: 32 << 10, CtrWays: 16,
		L2Lat:            10,
		MemLat:           200,
		BusBytesPerCycle: 6,
		MemoryBytes:      1 << 30,
		DataBytes:        768 << 20,
		IPC:              2.0,
		MLP:              12.0,
	}
}

// Result is one (benchmark, scheme) measurement.
type Result struct {
	Benchmark string
	Scheme    string

	Cycles       uint64
	Instructions uint64
	MemAccesses  uint64

	L2MissRate     float64 // local miss rate of program (data) accesses
	L2DataShare    float64 // fraction of valid L2 lines holding data
	BusUtilization float64
	CtrHitRate     float64

	TreeNodeFetches uint64
	MACFetches      uint64
	ExposureCycles  uint64 // decryption latency not hidden by the fetch
	BytesMoved      uint64

	// Stall decomposition: bus queuing (bandwidth), overlappable latency
	// after MLP, and L2-access stalls.
	StallQueue   uint64
	StallOverlap uint64
	StallL2      uint64

	// PredHitRate is the counter predictor's accuracy (CounterPrediction
	// runs only); Checkpoints counts log-hash checkpoint sweeps;
	// Repermutes counts HIDE page re-permutations.
	PredHitRate float64
	Checkpoints uint64
	Repermutes  uint64
}

// Overhead returns this result's execution-time overhead relative to base.
func (r Result) Overhead(base Result) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return float64(r.Cycles)/float64(base.Cycles) - 1
}

// Simulator runs one scheme on one machine.
type Simulator struct {
	scheme  Scheme
	machine Machine

	l1    *cache.Cache
	l1i   *cache.Cache
	l2    *cache.Cache
	ctrC  *cache.Cache
	bus   *bus.Bus
	aes   *engine.Pipeline
	hmacE *engine.Pipeline

	tree       *integrity.TreeGeometry
	bankFree   []uint64 // per-DRAM-bank next-free cycle (DRAMBanks > 0)
	ctrBase    layout.Addr
	ctrPerBlk  int // bytes of counter storage per data block (global/addr)
	macBase    layout.Addr
	macBytes   int
	hasCtr     bool
	now        float64
	cycles     uint64 // integer view of now
	instrs     uint64
	accesses   uint64
	ctrHits    uint64
	ctrLookups uint64
	treeFetch  uint64
	macFetch   uint64
	exposure   uint64
	// treeLookups/treeMiss separate metadata L2 traffic from program
	// accesses so the reported L2 miss rate matches the paper's metric.
	treeLookups uint64
	treeMiss    uint64
	// stall decomposition (debug/ablation visibility)
	stallQueue   uint64
	stallOverlap uint64
	stallL2      uint64
	// counter prediction state: last counter value per block and the
	// page-level predictor table (CounterPrediction only).
	blockMinor map[layout.Addr]uint16
	pagePred   map[layout.Addr]uint16
	predHits   uint64
	predTries  uint64
	// log-hash state: dirty-footprint tracking and checkpoint accounting.
	lhWritten     map[layout.Addr]struct{}
	lhMissCount   uint64
	lhCheckpoints uint64
	// HIDE state: per-page access counts toward the re-permutation budget.
	hideCount  map[layout.Addr]int
	repermutes uint64
	// instruction-fetch front end: the code segment's placement and size,
	// the fetch cursor, and a deterministic PRNG for branch targets.
	codeBase   layout.Addr
	codeSize   uint64
	codeHot    uint64
	codeCursor uint64
	codeRng    uint64
}

// New builds a simulator for the scheme on the machine.
func New(s Scheme, m Machine) (*Simulator, error) {
	if s.MACBits == 0 {
		s.MACBits = 128
	}
	g, err := layout.Geometry(s.MACBits)
	if err != nil {
		return nil, err
	}
	sim := &Simulator{
		scheme:  s,
		machine: m,
		l1:      cache.New(cache.Config{Name: "L1D", SizeBytes: m.L1Bytes, Ways: m.L1Ways}),
		l1i:     cache.New(cache.Config{Name: "L1I", SizeBytes: m.L1IBytes, Ways: m.L1IWays}),
		l2:      cache.New(cache.Config{Name: "L2", SizeBytes: m.L2Bytes, Ways: m.L2Ways, ReservedDataWays: m.L2ReservedDataWays}),
		ctrC:    cache.New(cache.Config{Name: "ctr", SizeBytes: m.CtrBytes, Ways: m.CtrWays}),
		bus:     bus.New(m.BusBytesPerCycle),
		aes:     engine.NewAES(),
		hmacE:   engine.NewHMAC(),
	}
	sim.macBytes = g.MACBytes
	if m.DRAMBanks > 0 {
		sim.bankFree = make([]uint64, m.DRAMBanks)
		if sim.machine.DRAMBankBusy == 0 {
			sim.machine.DRAMBankBusy = 40
		}
	}

	// Metadata placement after the data region.
	next := layout.Addr(m.DataBytes)
	var ctrBytes uint64
	switch s.Encryption {
	case EncAISE:
		sim.hasCtr = true
		ctrBytes = m.DataBytes / layout.BlocksPerPage
	case EncGlobal32:
		sim.hasCtr = true
		sim.ctrPerBlk = 4
		ctrBytes = m.DataBytes / layout.BlockSize * 4
	case EncGlobal64:
		sim.hasCtr = true
		sim.ctrPerBlk = 8
		ctrBytes = m.DataBytes / layout.BlockSize * 8
	case EncCtrAddr:
		// Address-based seeds with split-counter storage: same counter
		// geometry as AISE (§7.2: performance essentially equal).
		sim.hasCtr = true
		ctrBytes = m.DataBytes / layout.BlocksPerPage
	case EncNone, EncDirect:
	default:
		return nil, fmt.Errorf("sim: unknown encryption %d", s.Encryption)
	}
	sim.ctrBase = next
	next += layout.Addr(ctrBytes)

	var treeRegions []mem.Region
	switch s.Integrity {
	case IntegMT:
		treeRegions = append(treeRegions, mem.Region{Name: "data", Base: 0, Size: m.DataBytes})
		if ctrBytes > 0 {
			treeRegions = append(treeRegions, mem.Region{Name: "ctr", Base: sim.ctrBase, Size: ctrBytes})
		}
	case IntegBMT:
		if !sim.hasCtr {
			return nil, fmt.Errorf("sim: BMT requires counter-mode encryption")
		}
		if s.MACCoverage == 0 {
			s.MACCoverage = 1
		}
		if s.MACCoverage < 0 || s.MACCoverage > layout.BlocksPerPage || s.MACCoverage&(s.MACCoverage-1) != 0 {
			return nil, fmt.Errorf("sim: MAC coverage %d must be a power of two in [1, %d]", s.MACCoverage, layout.BlocksPerPage)
		}
		sim.scheme.MACCoverage = s.MACCoverage
		treeRegions = append(treeRegions, mem.Region{Name: "ctr", Base: sim.ctrBase, Size: ctrBytes})
		// Per-group data MACs live in their own region.
		sim.macBase = next
		next += layout.Addr(m.DataBytes / layout.BlockSize / uint64(s.MACCoverage) * uint64(g.MACBytes))
	case IntegMACOnly:
		sim.macBase = next
		next += layout.Addr(m.DataBytes / layout.BlockSize * uint64(g.MACBytes))
	case IntegNone, IntegLogHash:
	default:
		return nil, fmt.Errorf("sim: unknown integrity %d", s.Integrity)
	}
	if len(treeRegions) > 0 {
		tg, err := integrity.NewTreeGeometry(s.MACBits, treeRegions, next)
		if err != nil {
			return nil, err
		}
		sim.tree = tg
	}
	if s.CounterPrediction {
		if !sim.hasCtr {
			return nil, fmt.Errorf("sim: counter prediction requires counter-mode encryption")
		}
		sim.blockMinor = make(map[layout.Addr]uint16)
		sim.pagePred = make(map[layout.Addr]uint16)
	}
	if s.Integrity == IntegLogHash {
		sim.lhWritten = make(map[layout.Addr]struct{})
	}
	if s.HIDEBudget > 0 {
		sim.hideCount = make(map[layout.Addr]int)
	}
	return sim, nil
}

// ctrSlot returns the counter-region block caching the counter(s) for a
// data block address.
func (s *Simulator) ctrSlot(a layout.Addr) layout.Addr {
	if s.ctrPerBlk > 0 { // global counters: N counters per 64B block
		blk := uint64(a) / layout.BlockSize
		return (s.ctrBase + layout.Addr(blk*uint64(s.ctrPerBlk))).BlockAddr()
	}
	// Split-counter: one counter block per data page.
	page := uint64(a) / layout.PageSize
	return s.ctrBase + layout.Addr(page*layout.BlockSize)
}

// dataMACSlot returns the block holding the BMT data MAC covering a data
// block (its group's MAC under coverage > 1).
func (s *Simulator) dataMACSlot(a layout.Addr) layout.Addr {
	blk := uint64(a) / layout.BlockSize / uint64(max(1, s.scheme.MACCoverage))
	return (s.macBase + layout.Addr(blk*uint64(s.macBytes))).BlockAddr()
}

// groupSiblingTraffic charges the extra reads a group MAC operation needs:
// every member of the group not already in L2 must be fetched into the
// verification buffer (not cached).
func (s *Simulator) groupSiblingTraffic(a layout.Addr, at uint64) {
	k := s.scheme.MACCoverage
	if k <= 1 {
		return
	}
	span := layout.Addr(k * layout.BlockSize)
	gb := a.BlockAddr() / span * span
	for i := 0; i < k; i++ {
		sib := gb + layout.Addr(i*layout.BlockSize)
		if sib == a.BlockAddr() {
			continue
		}
		if !s.l2.Probe(sib) {
			s.fetch(at, layout.BlockSize)
		}
	}
}

// fetch models one block read from memory: bus transfer plus access
// latency, plus bank serialization when the banked DRAM model is enabled.
// It returns the arrival cycle. Bank conflicts use the block address the
// caller most recently recorded via bankOf; callers that do not care pass
// through the flat path.
func (s *Simulator) fetch(at uint64, bytes int) uint64 {
	return s.bus.Transfer(at, bytes) + s.machine.MemLat
}

// fetchBanked is fetch with bank occupancy for the given address.
func (s *Simulator) fetchBanked(a layout.Addr, at uint64, bytes int) uint64 {
	if s.bankFree == nil {
		return s.fetch(at, bytes)
	}
	// Banks interleave at block granularity, the common open-page layout.
	bank := (uint64(a) / layout.BlockSize) % uint64(len(s.bankFree))
	start := at
	if s.bankFree[bank] > start {
		start = s.bankFree[bank]
	}
	s.bankFree[bank] = start + s.machine.DRAMBankBusy
	return s.bus.Transfer(start, bytes) + s.machine.MemLat
}

// treeWalk models a cached Merkle tree traversal for the leaf block at a,
// starting at cycle at: nodes are looked up in L2 and fetched on miss until
// the first cached (trusted) ancestor. dirty marks the walk as an update
// (writeback path), which dirties the touched nodes. It returns the cycle
// at which verification completes.
func (s *Simulator) treeWalk(a layout.Addr, at uint64, dirty bool) uint64 {
	nodes, err := s.tree.Walk(a)
	if err != nil {
		return at
	}
	done := at
	for _, node := range nodes {
		s.treeLookups++
		if s.l2.Access(node, dirty) {
			break // trusted cached ancestor
		}
		s.treeMiss++
		// Missing levels are fetched in parallel: which levels hit is known
		// from the tags, so the hardware issues all needed node reads with
		// the data miss and verifies as they return.
		arrive := s.fetchBanked(node, at, layout.BlockSize)
		s.treeFetch++
		victim := s.l2.Insert(node, cache.Tree, dirty)
		s.writebackVictim(victim, at)
		if d := arrive + s.hmacE.Span(1); d > done {
			done = d
		}
	}
	return done
}

// writebackVictim models the eviction of a dirty L2 line: the block is
// written to memory, and for dirty data blocks the writeback re-encryption
// and metadata updates are charged (off the critical path).
func (s *Simulator) writebackVictim(v cache.Victim, at uint64) {
	if !v.Valid || !v.Dirty {
		return
	}
	s.bus.Transfer(at, layout.BlockSize)
	if v.Class != cache.Data {
		return
	}
	// Re-encryption of the victim requires its counter on chip.
	if s.hasCtr {
		ca := s.ctrSlot(v.Addr)
		s.ctrLookups++
		if s.ctrC.Access(ca, true) {
			s.ctrHits++
		} else {
			s.fetch(at, layout.BlockSize)
			cv := s.ctrC.Insert(ca, cache.Counter, true)
			if cv.Valid && cv.Dirty {
				s.bus.Transfer(at, layout.BlockSize)
			}
			if s.tree != nil && s.tree.Covers(ca) {
				s.treeWalk(ca, at, true)
			}
		}
		s.aes.Span(layout.ChunksPerBlock)
	}
	if s.scheme.Encryption == EncDirect {
		s.aes.Span(layout.ChunksPerBlock)
	}
	if s.scheme.CounterPrediction {
		s.blockMinor[v.Addr.BlockAddr()]++
	}
	switch s.scheme.Integrity {
	case IntegMT:
		s.treeWalk(v.Addr, at, true)
	case IntegBMT, IntegMACOnly:
		// Updated data MAC is written through (uncached by default); under
		// group coverage the update reads the victim's whole group first.
		if s.scheme.Integrity == IntegBMT {
			s.groupSiblingTraffic(v.Addr, at)
		}
		s.bus.Transfer(at, s.macBytes)
		s.hmacE.Span(1)
	case IntegLogHash:
		s.hmacE.Span(1)
		s.lhWritten[v.Addr.BlockAddr()] = struct{}{}
	}
}

// logHashCheckpoint charges the checkpoint sweep: every block written since
// the last checkpoint is read back and hashed once more so the read and
// write multiset hashes can be balanced.
func (s *Simulator) logHashCheckpoint(at uint64) {
	for range s.lhWritten {
		s.bus.Transfer(at, layout.BlockSize)
		s.hmacE.Span(1)
	}
	s.lhWritten = make(map[layout.Addr]struct{})
	s.lhCheckpoints++
}

// access simulates one memory reference through the given first-level
// cache (L1D for data, L1I for instruction fetches) and returns the stall
// cycles charged to execution.
func (s *Simulator) access(l1 *cache.Cache, a layout.Addr, write bool) uint64 {
	if l1.Access(a, write) {
		return 0
	}
	// L1 miss -> L2. L1 fills are modeled without separate victim traffic:
	// dirty L1 victims land in L2 (on-chip, no bus cost).
	stall := s.machine.L2Lat
	if s.l2.Access(a, write) {
		l1.Insert(a, cache.Data, write)
		return stall
	}

	tStart := s.cycles + stall
	// Counter availability: the counter fetch is issued in parallel with
	// the data fetch when it misses in the counter cache.
	seedReady := tStart
	ctrMissed := false
	if s.hasCtr {
		ca := s.ctrSlot(a)
		s.ctrLookups++
		if s.ctrC.Access(ca, false) {
			s.ctrHits++
		} else {
			ctrMissed = true
			arrive := s.fetchBanked(ca, tStart, layout.BlockSize)
			cv := s.ctrC.Insert(ca, cache.Counter, false)
			if cv.Valid && cv.Dirty {
				s.bus.Transfer(tStart, layout.BlockSize)
			}
			seedReady = arrive
			if s.scheme.CounterPrediction {
				// Speculative pads for the predicted counter run in
				// parallel with the fetch; a correct prediction means the
				// seed was effectively available at miss time.
				s.predTries++
				page := a.PageAddr()
				if s.pagePred[page] == s.blockMinor[a.BlockAddr()] {
					s.predHits++
					seedReady = tStart
				}
				s.pagePred[page] = s.blockMinor[a.BlockAddr()]
			}
		}
	}
	dataArrive := s.fetchBanked(a, tStart, layout.BlockSize)

	// Decryption: the pad must be ready when the data arrives; otherwise
	// the difference is exposed on the critical path.
	doneAt := dataArrive
	if s.hasCtr {
		padDone := seedReady + s.aes.Span(layout.ChunksPerBlock)
		if padDone > dataArrive {
			s.exposure += padDone - dataArrive
			doneAt = padDone
		}
	} else if s.scheme.Encryption == EncDirect {
		// Direct mode cannot overlap: decryption starts only once the
		// ciphertext is on chip (§2's up-to-35% overhead baseline).
		doneAt = dataArrive + s.aes.Span(layout.ChunksPerBlock)
		s.exposure += doneAt - dataArrive
	}

	// Integrity verification. Bus transfers are scheduled at the request
	// time (the controller enqueues them with the miss); completion times
	// still include the memory latency.
	var verifyDone uint64
	switch s.scheme.Integrity {
	case IntegMT:
		verifyDone = s.treeWalk(a, tStart, false)
	case IntegBMT:
		// Counter block is a Bonsai tree leaf: verify its chain whenever it
		// had to be fetched from memory.
		if ctrMissed {
			s.treeWalk(s.ctrSlot(a), tStart, false)
		}
		// Per-block data MAC: fetched on every miss; not cached by default.
		ma := s.dataMACSlot(a)
		cached := false
		if s.scheme.CacheDataMACs {
			s.treeLookups++
			if s.l2.Access(ma, false) {
				cached = true
			} else {
				s.treeMiss++
			}
		}
		if !cached {
			s.macFetch++
			s.groupSiblingTraffic(a, tStart)
			macArrive := s.fetch(tStart, s.macBytes)
			verifyDone = max64(macArrive, doneAt) + s.hmacE.Span(1)
			if s.scheme.CacheDataMACs {
				v := s.l2.Insert(ma, cache.Tree, false)
				s.writebackVictim(v, tStart)
			}
		} else {
			verifyDone = doneAt + s.hmacE.Span(1)
		}
	}
	switch s.scheme.Integrity {
	case IntegMACOnly:
		s.macFetch++
		macArrive := s.fetch(tStart, s.macBytes)
		verifyDone = max64(macArrive, doneAt) + s.hmacE.Span(1)
	case IntegLogHash:
		// Incremental multiset-hash update per fetched block; detection is
		// deferred to the checkpoint sweep.
		verifyDone = doneAt + s.hmacE.Span(1)
		s.lhMissCount++
		if iv := s.scheme.CheckpointInterval; iv > 0 && s.lhMissCount%iv == 0 {
			s.logHashCheckpoint(tStart)
		}
	}
	if s.scheme.PreciseVerify && verifyDone > doneAt {
		doneAt = verifyDone
	}

	// HIDE epoch accounting: every miss to a page consumes budget; an
	// exhausted page re-permutes, costing a page of read+writeback traffic.
	if s.hideCount != nil {
		page := a.PageAddr()
		s.hideCount[page]++
		if s.hideCount[page] >= s.scheme.HIDEBudget {
			s.hideCount[page] = 0
			s.repermutes++
			for i := 0; i < layout.BlocksPerPage; i++ {
				s.fetch(tStart, layout.BlockSize)
				s.writebackVictim(cache.Victim{Valid: true, Addr: page + layout.Addr(i*layout.BlockSize), Dirty: true, Class: cache.Data}, tStart)
			}
			// On-chip copies of the page are stale after relocation.
			s.l2.InvalidateRange(page, layout.PageSize)
			l1.InvalidateRange(page, layout.PageSize)
		}
	}

	// Fill caches; victims may write back.
	v := s.l2.Insert(a, cache.Data, write)
	s.writebackVictim(v, tStart)
	l1.Insert(a, cache.Data, write)

	// Memory-level parallelism hides latency but never bandwidth: the
	// overlappable part (memory access + transfer + exposed crypto) is
	// divided by MLP, while bus queuing — the footprint of a saturated
	// channel — is charged in full so simulated time keeps pace with the
	// bus clock.
	transfer := uint64((layout.BlockSize + s.machine.BusBytesPerCycle - 1) / s.machine.BusBytesPerCycle)
	rawLat := s.machine.MemLat + transfer
	queue := uint64(0)
	if dataArrive > tStart+rawLat {
		queue = dataArrive - tStart - rawLat
	}
	overlappable := rawLat + (doneAt - dataArrive)
	ov := uint64(float64(overlappable) / s.machine.MLP)
	s.stallQueue += queue
	s.stallOverlap += ov
	s.stallL2 += stall
	return stall + queue + ov
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Source yields a stream of memory accesses. *trace.Generator implements
// it; external traces (cmd/tracegen files) provide their own.
type Source interface {
	Next() trace.Access
}

// CodeSizer is optionally implemented by a Source to report the workload's
// instruction footprint; the simulator then models the L1I fetch stream.
type CodeSizer interface {
	CodeSize() uint64
}

// step consumes one trace access, advancing simulated time: the gap's
// instruction fetches run through the L1I first, then the data reference
// through the L1D.
func (s *Simulator) step(acc trace.Access) {
	s.now += float64(acc.Gap) / s.machine.IPC
	s.instrs += uint64(acc.Gap) + 1
	s.cycles = uint64(s.now)
	if s.codeSize > 0 {
		if stall := s.fetchInstructions(uint64(acc.Gap) + 1); stall > 0 {
			s.now += float64(stall)
			s.cycles = uint64(s.now)
		}
	}
	s.accesses++
	stall := s.access(s.l1, layout.Addr(acc.Addr), acc.Write)
	s.now += float64(stall)
	s.cycles = uint64(s.now)
}

// fetchInstructions models the front end consuming n 4-byte instructions:
// mostly a sequential walk through a hot inner loop, with occasional jumps
// into the benchmark's wider code footprint. Each cache line crossed is an
// L1I access; misses go to the L2 and memory like any code fetch — and
// under the protection schemes, code is encrypted and verified like data.
func (s *Simulator) fetchInstructions(n uint64) uint64 {
	var stall uint64
	bytes := n * 4
	for bytes > 0 {
		// Advance to the next line boundary.
		step := layout.BlockSize - s.codeCursor%layout.BlockSize
		if step > bytes {
			s.codeCursor += bytes
			break
		}
		s.codeCursor += step
		bytes -= step
		// Occasional branch out of the hot loop into the full footprint.
		s.codeRng ^= s.codeRng << 13
		s.codeRng ^= s.codeRng >> 7
		s.codeRng ^= s.codeRng << 17
		if s.codeRng%32 == 0 {
			s.codeCursor = s.codeRng % s.codeSize
		} else if s.codeCursor%s.codeHot == 0 {
			s.codeCursor -= s.codeHot // loop back
		}
		line := s.codeBase + layout.Addr(s.codeCursor%s.codeSize).BlockAddr()
		stall += s.access(s.l1i, line, false)
	}
	return stall
}

// Run consumes n measured accesses from the generator after warmup accesses
// that shape cache and bus state, and returns the measurement. Time runs
// continuously across the warmup; all reported quantities are deltas over
// the measured window.
func (s *Simulator) Run(gen Source, warmup, n int, benchName string) Result {
	if cs, ok := gen.(CodeSizer); ok && cs.CodeSize() > 0 {
		s.codeSize = cs.CodeSize()
		s.codeHot = 8 << 10
		if s.codeHot > s.codeSize {
			s.codeHot = s.codeSize
		}
		// Code lives high in the data region, clear of every working set.
		s.codeBase = layout.Addr(s.machine.DataBytes - 64<<20).PageAddr()
		s.codeRng = 0x9e3779b97f4a7c15
	}
	for i := 0; i < warmup; i++ {
		s.step(gen.Next())
	}
	baseCycles := s.cycles
	baseInstr := s.instrs
	baseAcc := s.accesses
	baseBusy := s.bus.BusyCycles()
	baseBytes := s.bus.BytesMoved()
	baseTreeFetch := s.treeFetch
	baseMACFetch := s.macFetch
	baseExposure := s.exposure
	baseTreeLookups := s.treeLookups
	baseTreeMiss := s.treeMiss
	baseCtrHits, baseCtrLookups := s.ctrHits, s.ctrLookups
	l2Before := s.l2.Stats()

	for i := 0; i < n; i++ {
		s.step(gen.Next())
	}

	l2 := s.l2.Stats()
	elapsed := s.cycles - baseCycles
	res := Result{
		Benchmark:       benchName,
		Scheme:          s.scheme.Name,
		Cycles:          elapsed,
		Instructions:    s.instrs - baseInstr,
		MemAccesses:     s.accesses - baseAcc,
		L2DataShare:     l2.DataShareOfValid(),
		TreeNodeFetches: s.treeFetch - baseTreeFetch,
		MACFetches:      s.macFetch - baseMACFetch,
		ExposureCycles:  s.exposure - baseExposure,
		BytesMoved:      s.bus.BytesMoved() - baseBytes,
		StallQueue:      s.stallQueue,
		StallOverlap:    s.stallOverlap,
		StallL2:         s.stallL2,
	}
	if elapsed > 0 {
		res.BusUtilization = float64(s.bus.BusyCycles()-baseBusy) / float64(elapsed)
		if res.BusUtilization > 1 {
			res.BusUtilization = 1
		}
	}
	// Local L2 miss rate over program accesses only — tree-node and MAC
	// lookups are excluded, matching the paper's metric.
	dataAccesses := (l2.Accesses - l2Before.Accesses) - (s.treeLookups - baseTreeLookups)
	dataMisses := (l2.Misses - l2Before.Misses) - (s.treeMiss - baseTreeMiss)
	if dataAccesses > 0 {
		res.L2MissRate = float64(dataMisses) / float64(dataAccesses)
	}
	if s.ctrLookups > baseCtrLookups {
		res.CtrHitRate = float64(s.ctrHits-baseCtrHits) / float64(s.ctrLookups-baseCtrLookups)
	}
	if s.predTries > 0 {
		res.PredHitRate = float64(s.predHits) / float64(s.predTries)
	}
	res.Checkpoints = s.lhCheckpoints
	res.Repermutes = s.repermutes
	return res
}
