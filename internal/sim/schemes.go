package sim

import "aisebmt/internal/trace"

// Baseline returns the unprotected configuration all overheads are
// normalized against.
func Baseline() Scheme { return Scheme{Name: "base"} }

// SchemeGlobal32 returns 32-bit global-counter encryption, no integrity.
func SchemeGlobal32() Scheme {
	return Scheme{Name: "global32", Encryption: EncGlobal32}
}

// SchemeGlobal64 returns 64-bit global-counter encryption, no integrity.
func SchemeGlobal64() Scheme {
	return Scheme{Name: "global64", Encryption: EncGlobal64}
}

// SchemeAISE returns AISE encryption, no integrity.
func SchemeAISE() Scheme {
	return Scheme{Name: "AISE", Encryption: EncAISE}
}

// SchemeAISEMT returns AISE encryption plus the standard Merkle tree.
func SchemeAISEMT(macBits int) Scheme {
	return Scheme{Name: "AISE+MT", Encryption: EncAISE, Integrity: IntegMT, MACBits: macBits}
}

// SchemeAISEBMT returns the paper's proposal: AISE plus Bonsai Merkle Trees.
func SchemeAISEBMT(macBits int) Scheme {
	return Scheme{Name: "AISE+BMT", Encryption: EncAISE, Integrity: IntegBMT, MACBits: macBits}
}

// SchemeGlobal64MT returns the comparison system of Figure 6: 64-bit global
// counters plus a standard Merkle tree.
func SchemeGlobal64MT(macBits int) Scheme {
	return Scheme{Name: "global64+MT", Encryption: EncGlobal64, Integrity: IntegMT, MACBits: macBits}
}

// SchemeDirect returns the early direct-encryption baseline (§2).
func SchemeDirect() Scheme {
	return Scheme{Name: "direct", Encryption: EncDirect}
}

// SchemeMACOnly returns per-block MAC integrity without a tree, over AISE
// encryption (the XOM-style related-work baseline).
func SchemeMACOnly(macBits int) Scheme {
	return Scheme{Name: "AISE+mac-only", Encryption: EncAISE, Integrity: IntegMACOnly, MACBits: macBits}
}

// SchemeLogHash returns the log-hash related-work baseline over AISE, with
// a checkpoint sweep every interval L2 misses.
func SchemeLogHash(interval uint64) Scheme {
	return Scheme{Name: "AISE+loghash", Encryption: EncAISE, Integrity: IntegLogHash, CheckpointInterval: interval}
}

// SchemeAISEPred returns AISE with the counter-prediction optimization the
// paper cites from Shi et al. (§2).
func SchemeAISEPred() Scheme {
	return Scheme{Name: "AISE+pred", Encryption: EncAISE, CounterPrediction: true}
}

// RunScheme builds a simulator for (scheme, machine), drives it with the
// profile's deterministic trace, and returns the measurement.
func RunScheme(s Scheme, m Machine, p trace.Profile, warmup, n int, seed uint64) (Result, error) {
	sm, err := New(s, m)
	if err != nil {
		return Result{}, err
	}
	gen := trace.NewGenerator(p, 0, seed)
	return sm.Run(gen, warmup, n, p.Name), nil
}
