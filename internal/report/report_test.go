package report

import (
	"strings"
	"testing"

	"aisebmt/internal/experiments"
	"aisebmt/internal/paper"
	"aisebmt/internal/sim"
)

func TestWriteReport(t *testing.T) {
	cfg := experiments.Quick()
	cfg.Warmup, cfg.N = 2000, 10000
	series, err := experiments.Campaign(cfg, sim.SchemeAISEBMT(128))
	if err != nil {
		t.Fatal(err)
	}
	target, _ := paper.ByID("fig6.AISE+BMT.avg")
	comps := []experiments.Comparison{
		{Target: target, Measured: 0.02, Pass: true},
	}
	fail, _ := paper.ByID("fig6.global64+MT.avg")
	comps = append(comps, experiments.Comparison{Target: fail, Measured: 0.99, Pass: false})

	var b strings.Builder
	if err := Write(&b, cfg, comps, series); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Reproduction report",
		"1 of 2 published targets",
		"fig6.AISE+BMT.avg",
		"**FAIL**",
		"## Per-benchmark overheads",
		"| art |",
		"**avg(21)**",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteReportNoSeries(t *testing.T) {
	var b strings.Builder
	if err := Write(&b, experiments.Quick(), nil, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "Per-benchmark") {
		t.Error("empty series produced a detail section")
	}
	if !strings.Contains(b.String(), "0 of 0") {
		t.Error("audit summary missing")
	}
}
