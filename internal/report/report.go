// Package report renders campaign results as a Markdown document: the
// headline comparison, the full reproduction audit against the paper's
// published numbers, and the per-benchmark detail tables. cmd/experiments
// uses it to regenerate the measured sections of EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"aisebmt/internal/experiments"
	"aisebmt/internal/stats"
)

// Write renders a full Markdown report for an audit run.
func Write(w io.Writer, cfg experiments.Config, comps []experiments.Comparison, series []experiments.Series) error {
	var b strings.Builder
	b.WriteString("# Reproduction report\n\n")
	fmt.Fprintf(&b, "Campaign: %d warmup + %d measured accesses per benchmark, seed %d.\n\n",
		cfg.Warmup, cfg.N, cfg.Seed)

	passes := 0
	for _, c := range comps {
		if c.Pass {
			passes++
		}
	}
	fmt.Fprintf(&b, "**Audit: %d of %d published targets within their bands.**\n\n", passes, len(comps))

	b.WriteString("## Paper targets\n\n")
	b.WriteString("| artifact | paper | measured | band | verdict |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, c := range comps {
		verdict := "pass"
		if !c.Pass {
			verdict = "**FAIL**"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | [%s, %s] | %s |\n",
			c.Target.ID, fmtVal(c.Target.ID, c.Target.Paper), fmtVal(c.Target.ID, c.Measured),
			fmtVal(c.Target.ID, c.Target.Lo), fmtVal(c.Target.ID, c.Target.Hi), verdict)
	}
	b.WriteString("\n")

	if len(series) > 0 {
		b.WriteString("## Per-benchmark overheads\n\n")
		base := series[0]
		names := make([]string, 0, len(base.ByBench))
		for n := range base.ByBench {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("| benchmark |")
		for _, s := range series[1:] {
			fmt.Fprintf(&b, " %s |", s.Scheme)
		}
		b.WriteString("\n|---|")
		for range series[1:] {
			b.WriteString("---|")
		}
		b.WriteString("\n")
		for _, n := range names {
			fmt.Fprintf(&b, "| %s |", n)
			for _, s := range series[1:] {
				fmt.Fprintf(&b, " %s |", stats.Pct(s.ByBench[n].Overhead(base.ByBench[n])))
			}
			b.WriteString("\n")
		}
		b.WriteString("| **avg(21)** |")
		for _, s := range series[1:] {
			fmt.Fprintf(&b, " **%s** |", stats.Pct(s.AvgOverhead))
		}
		b.WriteString("\n\n")
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func fmtVal(id string, v float64) string {
	if strings.HasPrefix(id, "table2") {
		return fmt.Sprintf("%.2f%%", v)
	}
	return stats.Pct(v)
}
