package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
	"aisebmt/internal/obs"
	"aisebmt/internal/shard"
)

// Options tunes a Server. The zero value is usable.
type Options struct {
	// Timeout bounds each request's execution (queueing included);
	// 0 means 5s. A request's wire deadline (Request.DeadlineUS) can only
	// tighten this, never extend it.
	Timeout time.Duration
	// FrameTimeout bounds how long a client may take to deliver one
	// request frame once its first byte has arrived; 0 means 10s. A
	// client that stalls mid-frame is answered with StatusSlowClient and
	// disconnected instead of pinning a connection goroutine forever.
	FrameTimeout time.Duration
	// MaxInflight bounds concurrently executing requests across all
	// connections (admission control); 0 means 1024, negative disables
	// shedding. Excess requests are answered immediately with
	// StatusOverloaded rather than queueing without bound.
	MaxInflight int
	// HibernatePath is where OpHibernate writes the pool image;
	// "" means "secmemd.hib".
	HibernatePath string
	// Checkpoint, when non-nil, replaces the legacy hibernate-to-file
	// path: OpHibernate cuts a durable snapshot through it (the
	// durability layer's snapshot + WAL truncation) and reports the
	// returned path and size.
	Checkpoint func() (path string, bytes int64, err error)
	// Logf, when non-nil, receives connection-level events.
	Logf func(format string, args ...any)
	// Obs, when non-nil, enables the observability subsystem: request
	// metrics register against its registry and ObsHandler can mount
	// /metrics and /tracez. One Service must not back two servers (the
	// instruments would collide).
	Obs *obs.Service
	// Tenants, when non-nil, serves the tenant wire operations (create,
	// destroy, fork, per-tenant read/write, stats) against the
	// multi-tenant address-space layer. Nil answers them Unsupported —
	// e.g. cluster nodes, whose keyspace is partitioned across machines.
	Tenants TenantBackend
}

// TenantBackend is what the tenant wire operations need from the
// multi-tenant layer; *tenant.Service implements it. It is an interface
// here so the server package does not depend on the tenant package's
// construction details (and tests can stub it).
type TenantBackend interface {
	Create(ctx context.Context, npages int, trace uint64) (uint32, error)
	Destroy(ctx context.Context, id uint32, trace uint64) error
	Fork(ctx context.Context, id uint32, trace uint64) (uint32, error)
	Read(ctx context.Context, id uint32, vaddr uint64, n int, trace uint64) ([]byte, error)
	Write(ctx context.Context, id uint32, vaddr uint64, data []byte, trace uint64) error
	Map(ctx context.Context, srcID uint32, srcVaddr uint64, dstID uint32, dstVaddr uint64, trace uint64) error
	StatsJSON() ([]byte, error)
}

// ClusterBackend is the optional membership-admin surface of a cluster
// backend. The server discovers it by type assertion on its Backend —
// single-daemon pools answer the cluster ops Unsupported. Each method
// returns the resulting cluster view as JSON.
type ClusterBackend interface {
	ClusterView() ([]byte, error)
	ClusterJoin(spec string) ([]byte, error)
	ClusterLeave(id string) ([]byte, error)
	ClusterRemove(id string) ([]byte, error)
}

// Backend is what the server front-end needs from its data plane. A
// *shard.Pool satisfies it directly (the single-daemon case); a
// cluster.Node satisfies it by routing each operation to the owning
// node's pool (serving locally, from a promoted standby, or answering
// with a NotOwner redirect).
type Backend interface {
	Read(ctx context.Context, addr layout.Addr, dst []byte, meta core.Meta) error
	Write(ctx context.Context, addr layout.Addr, src []byte, meta core.Meta) error
	Verify(ctx context.Context) error
	Roots() [][]byte
	Stats() shard.ServiceStats
	SwapOut(ctx context.Context, addr layout.Addr, slot int) (*core.PageImage, error)
	SwapIn(ctx context.Context, img *core.PageImage, addr layout.Addr, slot int) error
	Cordon(i int) error
	Uncordon(i int) error
	Hibernate(w io.Writer) ([]core.ChipState, error)
	ShardStates() []shard.ShardState
	ShardFault(i int) (shard.FaultKind, error)
	Close() error
}

// NotOwnerError is returned by a cluster backend when the addressed page
// belongs to another node; Addr is the owner's wire address. The server
// maps it to StatusNotOwner with the address as the response payload.
type NotOwnerError struct{ Addr string }

func (e *NotOwnerError) Error() string { return "server: not owner; retry at " + e.Addr }

// ErrUnavailable marks a request no node could serve right now (the
// owner of its range is unreachable and no promotion has completed).
// It classifies to StatusOverloaded: retryable, and typically resolved
// within a failover detection window.
var ErrUnavailable = errors.New("server: temporarily unavailable")

// Server speaks the wire protocol over TCP on behalf of a Backend
// (typically a shard.Pool). Requests on one connection are served in
// order; concurrency comes from concurrent connections, which the pool
// fans out across shards.
type Server struct {
	pool Backend
	opts Options

	// ready is closed by Publish; until then every request waits (startup
	// gating: the listener can accept while recovery still runs, and the
	// first byte goes out the moment the recovered pool is published).
	ready chan struct{}

	// inflight is the admission-control semaphore; nil disables shedding.
	inflight chan struct{}
	shed     atomic.Uint64

	// metrics is non-nil iff Options.Obs was supplied.
	metrics *serverMetrics

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup
}

// New wraps a backend in a server, ready to serve immediately.
func New(pool Backend, opts Options) *Server {
	s := NewGated(opts)
	s.Publish(pool)
	return s
}

// NewGated builds a server with no pool yet: it accepts connections and
// queues requests until Publish supplies the pool. A daemon uses this to
// open its port before crash recovery finishes — clients connect and
// block instead of seeing connection refused.
func NewGated(opts Options) *Server {
	if opts.Timeout == 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.FrameTimeout == 0 {
		opts.FrameTimeout = 10 * time.Second
	}
	if opts.MaxInflight == 0 {
		opts.MaxInflight = 1024
	}
	if opts.HibernatePath == "" {
		opts.HibernatePath = "secmemd.hib"
	}
	s := &Server{opts: opts, ready: make(chan struct{}), conns: make(map[net.Conn]struct{})}
	if opts.MaxInflight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInflight)
	}
	if opts.Obs != nil {
		s.metrics = newServerMetrics(opts.Obs, s)
	}
	return s
}

// SetTenants installs the tenant layer. A daemon calls it between
// NewGated and Publish: the layer wraps the recovered pool, which does
// not exist yet when the gated server is built, and requests cannot race
// the assignment because they wait on the gate Publish releases.
func (s *Server) SetTenants(tb TenantBackend) { s.opts.Tenants = tb }

// Publish installs the backend and releases every gated request. It must
// be called exactly once per NewGated server (New calls it for you).
func (s *Server) Publish(pool Backend) {
	s.pool = pool
	close(s.ready)
}

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("server: closed")

// Serve accepts connections on ln until Shutdown. Each connection gets a
// goroutine running a decode→dispatch→encode loop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Shutdown drains the server: stop accepting, wait for in-flight
// connections to finish their current request and observe the close, then
// drain-and-verify the pool (every shard runs a final integrity sweep).
// The context bounds the connection drain only; the pool verify always
// runs.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.draining = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	// Nudge idle connections out of their blocking read; a connection in
	// the middle of a request finishes serving it first because serveConn
	// only checks draining between requests.
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	}
	select {
	case <-s.ready:
	default:
		return drainErr // never published: no pool to drain
	}
	if err := s.pool.Close(); err != nil {
		return err
	}
	return drainErr
}

// serveConn runs one connection's request loop.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReader(conn)
	for {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return
		}
		// Waiting for the next request may take forever (idle connections
		// are fine; Shutdown nudges them out via a read deadline). But once
		// a frame's first byte arrives, the rest must follow within
		// FrameTimeout: a client stalling mid-frame is told so with a typed
		// error frame and disconnected, instead of pinning this goroutine
		// indefinitely and ending in a bare TCP reset.
		conn.SetReadDeadline(time.Time{})
		if _, err := br.Peek(1); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, os.ErrDeadlineExceeded) && s.opts.Logf != nil {
				s.opts.Logf("conn %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		conn.SetReadDeadline(time.Now().Add(s.opts.FrameTimeout))
		q, err := DecodeRequest(br)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				conn.SetWriteDeadline(time.Now().Add(s.opts.FrameTimeout))
				EncodeResponse(conn, fail(StatusSlowClient,
					fmt.Errorf("server: request frame not completed within %s", s.opts.FrameTimeout)))
				if s.opts.Logf != nil {
					s.opts.Logf("conn %s: slow client: frame not completed within %s", conn.RemoteAddr(), s.opts.FrameTimeout)
				}
			} else if !errors.Is(err, io.EOF) && s.opts.Logf != nil {
				s.opts.Logf("conn %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		// Admission control: a full server sheds instead of queueing
		// without bound — the client gets a fast, retryable answer.
		var resp *Response
		start := time.Now()
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				resp = s.dispatch(q)
				<-s.inflight
			default:
				s.shed.Add(1)
				resp = fail(StatusOverloaded, fmt.Errorf("server: %d requests in flight", cap(s.inflight)))
			}
		} else {
			resp = s.dispatch(q)
		}
		s.metrics.observe(q.Op, resp.Status, time.Since(start))
		if err := EncodeResponse(conn, resp); err != nil {
			if s.opts.Logf != nil {
				s.opts.Logf("conn %s: write: %v", conn.RemoteAddr(), err)
			}
			return
		}
	}
}

// dispatch executes one request against the pool, waiting out recovery
// first if the server is gated.
func (s *Server) dispatch(q *Request) *Response {
	d := s.opts.Timeout
	if q.DeadlineUS > 0 {
		if cd := time.Duration(q.DeadlineUS) * time.Microsecond; cd < d {
			d = cd
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	select {
	case <-s.ready:
	case <-ctx.Done():
		return fail(StatusTimeout, errors.New("server: still recovering"))
	}
	meta := core.Meta{VirtAddr: q.Virt, PID: q.PID, Trace: q.TraceID}
	switch q.Op {
	case OpRead:
		if q.Count > MaxFrame-1 {
			return fail(StatusBadRequest, fmt.Errorf("read of %d bytes exceeds frame limit", q.Count))
		}
		buf := make([]byte, q.Count)
		if err := s.pool.Read(ctx, layout.Addr(q.Addr), buf, meta); err != nil {
			return failErr(err)
		}
		return &Response{Status: StatusOK, Data: buf}
	case OpWrite:
		if err := s.pool.Write(ctx, layout.Addr(q.Addr), q.Data, meta); err != nil {
			return failErr(err)
		}
		return &Response{Status: StatusOK}
	case OpVerify:
		if err := s.pool.Verify(ctx); err != nil {
			return failErr(err)
		}
		return &Response{Status: StatusOK}
	case OpRoot:
		var out []byte
		for _, root := range s.pool.Roots() {
			var n [4]byte
			n[0] = byte(len(root) >> 24)
			n[1] = byte(len(root) >> 16)
			n[2] = byte(len(root) >> 8)
			n[3] = byte(len(root))
			out = append(out, n[:]...)
			out = append(out, root...)
		}
		return &Response{Status: StatusOK, Data: out}
	case OpStats:
		data, err := json.Marshal(s.pool.Stats())
		if err != nil {
			return fail(StatusInternal, err)
		}
		return &Response{Status: StatusOK, Data: data}
	case OpSwapOut:
		img, err := s.pool.SwapOut(ctx, layout.Addr(q.Addr), int(q.Slot))
		if err != nil {
			return failErr(err)
		}
		return &Response{Status: StatusOK, Data: EncodeImage(img)}
	case OpSwapIn:
		img, err := DecodeImage(q.Data)
		if err != nil {
			return fail(StatusBadRequest, err)
		}
		if err := s.pool.SwapIn(ctx, img, layout.Addr(q.Addr), int(q.Slot)); err != nil {
			return failErr(err)
		}
		return &Response{Status: StatusOK}
	case OpCordon:
		if err := s.pool.Cordon(int(q.Addr)); err != nil {
			return fail(StatusBadRequest, err)
		}
		return &Response{Status: StatusOK}
	case OpUncordon:
		if err := s.pool.Uncordon(int(q.Addr)); err != nil {
			return fail(StatusBadRequest, err)
		}
		return &Response{Status: StatusOK}
	case OpTenantCreate, OpTenantDestroy, OpTenantFork, OpTenantRead, OpTenantWrite, OpTenantStats, OpTenantMap:
		return s.dispatchTenant(ctx, q)
	case OpClusterView, OpClusterJoin, OpClusterLeave, OpClusterRemove:
		return s.dispatchCluster(q)
	case OpHibernate:
		if s.opts.Checkpoint != nil {
			path, n, err := s.opts.Checkpoint()
			if err != nil {
				return fail(StatusInternal, err)
			}
			return &Response{Status: StatusOK, Data: []byte(fmt.Sprintf(`{"path":%q,"bytes":%d}`, path, n))}
		}
		n, err := s.hibernate()
		if err != nil {
			return fail(StatusInternal, err)
		}
		return &Response{Status: StatusOK, Data: []byte(fmt.Sprintf(`{"path":%q,"bytes":%d}`, s.opts.HibernatePath, n))}
	default:
		return fail(StatusBadRequest, fmt.Errorf("unknown op %d", q.Op))
	}
}

// dispatchTenant executes one tenant-layer request. IDs ride in Addr,
// tenant-virtual addresses in Virt; create and fork answer with the
// 4-byte big-endian tenant ID.
func (s *Server) dispatchTenant(ctx context.Context, q *Request) *Response {
	tb := s.opts.Tenants
	if tb == nil {
		return fail(StatusUnsupported, fmt.Errorf("server: no tenant layer configured (%w)", core.ErrUnsupported))
	}
	id32 := func(id uint32) []byte {
		return []byte{byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id)}
	}
	switch q.Op {
	case OpTenantCreate:
		id, err := tb.Create(ctx, int(q.Count), q.TraceID)
		if err != nil {
			return failErr(err)
		}
		return &Response{Status: StatusOK, Data: id32(id)}
	case OpTenantDestroy:
		if err := tb.Destroy(ctx, uint32(q.Addr), q.TraceID); err != nil {
			return failErr(err)
		}
		return &Response{Status: StatusOK}
	case OpTenantFork:
		id, err := tb.Fork(ctx, uint32(q.Addr), q.TraceID)
		if err != nil {
			return failErr(err)
		}
		return &Response{Status: StatusOK, Data: id32(id)}
	case OpTenantRead:
		if q.Count > MaxFrame-1 {
			return fail(StatusBadRequest, fmt.Errorf("tenant read of %d bytes exceeds frame limit", q.Count))
		}
		buf, err := tb.Read(ctx, uint32(q.Addr), q.Virt, int(q.Count), q.TraceID)
		if err != nil {
			return failErr(err)
		}
		return &Response{Status: StatusOK, Data: buf}
	case OpTenantWrite:
		if err := tb.Write(ctx, uint32(q.Addr), q.Virt, q.Data, q.TraceID); err != nil {
			return failErr(err)
		}
		return &Response{Status: StatusOK}
	case OpTenantMap:
		if len(q.Data) != 12 {
			return fail(StatusBadRequest, fmt.Errorf("tenant map wants a 12-byte destination (id + vaddr), got %d", len(q.Data)))
		}
		dstID := binary.BigEndian.Uint32(q.Data[:4])
		dstVaddr := binary.BigEndian.Uint64(q.Data[4:])
		if err := tb.Map(ctx, uint32(q.Addr), q.Virt, dstID, dstVaddr, q.TraceID); err != nil {
			return failErr(err)
		}
		return &Response{Status: StatusOK}
	default: // OpTenantStats
		data, err := tb.StatsJSON()
		if err != nil {
			return fail(StatusInternal, err)
		}
		return &Response{Status: StatusOK, Data: data}
	}
}

// dispatchCluster executes one membership-admin request against the
// backend's ClusterBackend surface; the argument rides in Data as text.
// Admin ops serialize inside the backend, so no context plumbing here —
// a handoff legitimately outlasts a request timeout.
func (s *Server) dispatchCluster(q *Request) *Response {
	cb, ok := s.pool.(ClusterBackend)
	if !ok {
		return fail(StatusUnsupported, fmt.Errorf("server: backend has no cluster membership layer (%w)", core.ErrUnsupported))
	}
	arg := string(q.Data)
	var (
		data []byte
		err  error
	)
	switch q.Op {
	case OpClusterView:
		data, err = cb.ClusterView()
	case OpClusterJoin:
		data, err = cb.ClusterJoin(arg)
	case OpClusterLeave:
		data, err = cb.ClusterLeave(arg)
	default: // OpClusterRemove
		data, err = cb.ClusterRemove(arg)
	}
	if err != nil {
		return failErr(err)
	}
	return &Response{Status: StatusOK, Data: data}
}

// hibernate writes the pool image plus its chip states to HibernatePath
// (the daemon plays the role of the machine's non-volatile storage; a
// real deployment would keep the chip states in a separate trusted
// store — here they share the file, which models an operator backup, not
// the trust boundary).
func (s *Server) hibernate() (int64, error) {
	f, err := os.Create(s.opts.HibernatePath)
	if err != nil {
		return 0, err
	}
	chips, err := s.pool.Hibernate(f)
	if err != nil {
		f.Close()
		return 0, err
	}
	if err := json.NewEncoder(f).Encode(chips); err != nil {
		f.Close()
		return 0, err
	}
	n, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		f.Close()
		return 0, err
	}
	return n, f.Close()
}

// fail builds an error response.
func fail(st Status, err error) *Response {
	return &Response{Status: st, Data: []byte(err.Error())}
}

// failErr classifies a backend error into a response. NotOwner redirects
// carry the owner's address alone as the payload so a smart client can
// re-dial without parsing prose. A *StatusError from a downstream node
// (proxy and router backends forward over the same protocol) passes
// through with its status and payload intact, so a chain of hops answers
// exactly what the serving node answered.
func failErr(err error) *Response {
	var no *NotOwnerError
	if errors.As(err, &no) {
		return &Response{Status: StatusNotOwner, Data: []byte(no.Addr)}
	}
	var se *StatusError
	if errors.As(err, &se) {
		return &Response{Status: se.Status, Data: []byte(se.Msg)}
	}
	return fail(classify(err), err)
}

// classify maps pool/core errors to wire statuses.
func classify(err error) Status {
	switch {
	case errors.Is(err, shard.ErrShardQuarantined):
		return StatusQuarantined
	case errors.Is(err, core.ErrTampered):
		return StatusTampered
	case errors.Is(err, core.ErrUnsupported):
		return StatusUnsupported
	case errors.Is(err, shard.ErrReplStalled) || errors.Is(err, ErrUnavailable):
		// Transient cluster conditions (replication stream down, no node
		// reachable for a range mid-failover): shed retryably, like
		// admission control.
		return StatusOverloaded
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return StatusTimeout
	case errors.Is(err, shard.ErrClosed):
		return StatusInternal
	default:
		return StatusBadRequest
	}
}
