package server

import (
	"bytes"
	"context"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
	"aisebmt/internal/shard"
)

// startServer boots a small AISE+BMT service on a loopback port and
// returns its address plus a shutdown func.
func startServer(t *testing.T) (string, *shard.Pool, func() error) {
	t.Helper()
	pool, err := shard.New(shard.Config{
		Shards: 2,
		Core: core.Config{
			DataBytes:  2 * 8 * layout.PageSize,
			Key:        []byte("0123456789abcdef"),
			Encryption: core.AISE,
			Integrity:  core.BonsaiMT,
			SwapSlots:  8,
		},
	})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	srv := New(pool, Options{
		Timeout:       2 * time.Second,
		HibernatePath: filepath.Join(t.TempDir(), "test.hib"),
		Logf:          t.Logf,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
			return err
		}
		return nil
	}
	return ln.Addr().String(), pool, shutdown
}

func TestServerEndToEnd(t *testing.T) {
	addr, _, shutdown := startServer(t)

	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	msg := []byte("over the wire and through the tree")
	if err := c.Write(300, msg, core.Meta{}); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := c.Read(300, len(msg), core.Meta{})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read = %q, want %q", got, msg)
	}

	if err := c.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}

	roots, err := c.Roots()
	if err != nil {
		t.Fatalf("roots: %v", err)
	}
	if len(roots) != 2 || len(roots[0]) == 0 {
		t.Fatalf("got %d roots (first %d bytes), want 2 non-empty", len(roots), len(roots[0]))
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Shards != 2 || st.Core.BlockWrites == 0 || st.Enqueued == 0 {
		t.Fatalf("implausible service stats: %+v", st)
	}

	// Swap a page out over the wire and back into a same-shard frame.
	page := layout.Addr(4 * layout.PageSize)
	if err := c.Write(page+8, []byte("swapped"), core.Meta{}); err != nil {
		t.Fatalf("write page: %v", err)
	}
	img, err := c.SwapOut(page, 1)
	if err != nil {
		t.Fatalf("swapout: %v", err)
	}
	newPage := page + 2*layout.PageSize
	if err := c.SwapIn(img, newPage, 1); err != nil {
		t.Fatalf("swapin: %v", err)
	}
	back, err := c.Read(newPage+8, 7, core.Meta{})
	if err != nil {
		t.Fatalf("read after swap: %v", err)
	}
	if string(back) != "swapped" {
		t.Fatalf("after swap got %q", back)
	}

	// A tampered image comes back as a typed StatusTampered error.
	img2, err := c.SwapOut(newPage, 2)
	if err != nil {
		t.Fatalf("swapout 2: %v", err)
	}
	img2.Counters[3] ^= 1
	err = c.SwapIn(img2, page, 2)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusTampered {
		t.Fatalf("tampered swapin: err = %v, want StatusTampered", err)
	}

	// Hibernate writes the pool image server-side.
	if err := c.Hibernate(); err != nil {
		t.Fatalf("hibernate: %v", err)
	}

	// Out-of-range requests map to bad-request, not connection death.
	if _, err := c.Read(1<<40, 8, core.Meta{}); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if _, err := c.Read(0, 8, core.Meta{}); err != nil {
		t.Fatalf("connection unusable after bad request: %v", err)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServerConcurrentClients hammers the service from many connections
// and then shuts down gracefully, which drains and verifies every shard.
func TestServerConcurrentClients(t *testing.T) {
	addr, pool, shutdown := startServer(t)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			buf := []byte{byte(i), byte(i + 1), byte(i + 2), byte(i + 3)}
			base := layout.Addr(i) * layout.PageSize
			for n := 0; n < 50; n++ {
				if err := c.Write(base+layout.Addr(n*4), buf, core.Meta{}); err != nil {
					errs <- err
					return
				}
				got, err := c.Read(base+layout.Addr(n*4), 4, core.Meta{})
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, buf) {
					errs <- errors.New("read-your-writes violated over the wire")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := pool.SwapOut(context.Background(), 0, 0); !errors.Is(err, shard.ErrClosed) {
		t.Fatalf("pool alive after shutdown: %v", err)
	}
}
