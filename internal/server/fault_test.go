package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
	"aisebmt/internal/shard"
)

// TestSlowClientGetsTypedErrorFrame: a client that starts a frame and
// then stalls must not pin the connection goroutine. The server stops
// reading at FrameTimeout, answers with a StatusSlowClient error frame,
// and closes the connection — a typed goodbye, not a bare TCP reset.
func TestSlowClientGetsTypedErrorFrame(t *testing.T) {
	pool := newServerTestPool(t)
	srv := New(pool, Options{Timeout: 2 * time.Second, FrameTimeout: 150 * time.Millisecond, Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer shutdownServer(t, srv, serveDone)

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	// Promise a 64-byte frame body, deliver only the first 10 bytes.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 64)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatalf("write header: %v", err)
	}
	partial := make([]byte, 10)
	partial[0] = byte(OpWrite)
	if _, err := conn.Write(partial); err != nil {
		t.Fatalf("write partial body: %v", err)
	}

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	p, err := DecodeResponse(conn)
	if err != nil {
		t.Fatalf("expected a typed error frame, got read error: %v", err)
	}
	if p.Status != StatusSlowClient {
		t.Fatalf("status = %s, want %s", p.Status, StatusSlowClient)
	}
	if p.Status.Retryable() {
		t.Fatal("slow-client must not be marked retryable")
	}
	// After the goodbye frame the server hangs up.
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Fatalf("connection still open after slow-client frame: %v", err)
	}

	// A healthy client on the same server is unaffected.
	c, err := Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer c.Close()
	if err := c.Write(64, []byte("still serving"), core.Meta{}); err != nil {
		t.Fatalf("write after slow client: %v", err)
	}
}

// TestOverloadSheds: with MaxInflight=1 and one request parked, the next
// request is shed immediately with the retryable StatusOverloaded —
// admission control answers fast instead of queueing without bound.
func TestOverloadSheds(t *testing.T) {
	srv := NewGated(Options{Timeout: 5 * time.Second, MaxInflight: 1, Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer shutdownServer(t, srv, serveDone)

	// Occupy the single inflight slot: a gated server parks the dispatch
	// until Publish, holding the admission token the whole time.
	c1, err := Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial 1: %v", err)
	}
	defer c1.Close()
	parked := make(chan error, 1)
	go func() { parked <- c1.Write(0, []byte("first"), core.Meta{}) }()

	// Wait until the first request holds the token.
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.inflight) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired the inflight token")
		}
		time.Sleep(time.Millisecond)
	}

	c2, err := Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer c2.Close()
	start := time.Now()
	err = c2.Write(0, []byte("second"), core.Meta{})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusOverloaded {
		t.Fatalf("second write err = %v, want StatusOverloaded", err)
	}
	if !Retryable(err) {
		t.Fatal("overloaded must be retryable")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("shed took %v, want fast-fail", elapsed)
	}
	if srv.shed.Load() == 0 {
		t.Fatal("shed counter not incremented")
	}

	srv.Publish(newServerTestPool(t))
	if err := <-parked; err != nil {
		t.Fatalf("parked write after Publish: %v", err)
	}
	// With the token free again, the shed client retries successfully.
	if err := c2.Write(0, []byte("second retry"), core.Meta{}); err != nil {
		t.Fatalf("retry after shed: %v", err)
	}
}

// TestQuarantinedStatusOverWire: requests to a latched shard map to the
// retryable StatusQuarantined, other shards keep serving, the health
// probe reports the degradation, and uncordon heals it.
func TestQuarantinedStatusOverWire(t *testing.T) {
	pool := newServerTestPool(t)
	srv := New(pool, Options{Timeout: 2 * time.Second, Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer shutdownServer(t, srv, serveDone)

	hs := httptest.NewServer(srv.HealthHandler())
	defer hs.Close()

	c, err := Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.SetRequestDeadline(time.Second)

	// Page 0 → shard 0, page 1 → shard 1.
	shard1Addr := layout.Addr(layout.PageSize)
	if err := c.Write(0, []byte("shard zero"), core.Meta{}); err != nil {
		t.Fatalf("write shard 0: %v", err)
	}
	if err := c.Write(shard1Addr, []byte("shard one"), core.Meta{}); err != nil {
		t.Fatalf("write shard 1: %v", err)
	}

	if err := c.Cordon(0); err != nil {
		t.Fatalf("cordon: %v", err)
	}
	err = c.Write(0, []byte("refused"), core.Meta{})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusQuarantined {
		t.Fatalf("write to cordoned shard: err = %v, want StatusQuarantined", err)
	}
	if !Retryable(err) {
		t.Fatal("quarantined must be retryable")
	}
	if _, err := c.Read(0, 5, core.Meta{}); !Retryable(err) {
		t.Fatalf("read on cordoned shard: %v, want retryable", err)
	}
	// The other fault domain is untouched.
	if got, err := c.Read(shard1Addr, 9, core.Meta{}); err != nil || string(got) != "shard one" {
		t.Fatalf("shard 1 read = %q, %v", got, err)
	}

	h := probeHealth(t, hs.URL+"/readyz")
	if !h.Ready || !h.Degraded {
		t.Fatalf("health = %+v, want ready (one shard serving) and degraded", h)
	}
	if h.Shards[0].State != "down" || h.Shards[0].Kind != "operator" {
		t.Fatalf("shard 0 health = %+v, want down/operator", h.Shards[0])
	}
	if h.Shards[1].State != "serving" {
		t.Fatalf("shard 1 health = %+v, want serving", h.Shards[1])
	}

	// Uncordon: no durability layer is attached, so the pool re-verifies
	// the shard in place and it serves again — with its data intact.
	if err := c.Uncordon(0); err != nil {
		t.Fatalf("uncordon: %v", err)
	}
	if got, err := c.Read(0, 10, core.Meta{}); err != nil || string(got) != "shard zero" {
		t.Fatalf("read after uncordon = %q, %v", got, err)
	}
	if h := probeHealth(t, hs.URL+"/readyz"); h.Degraded {
		t.Fatalf("health after heal = %+v, want not degraded", h)
	}
}

// TestPerRequestDeadline: a client's DeadlineUS tightens the server
// timeout, so a parked request fails in the client's budget, not the
// server's much larger default.
func TestPerRequestDeadline(t *testing.T) {
	srv := NewGated(Options{Timeout: 30 * time.Second, Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer shutdownServer(t, srv, serveDone)

	// The gated server also reports recovery-pending until published.
	hs := httptest.NewServer(srv.HealthHandler())
	defer hs.Close()
	if h := probeHealth(t, hs.URL+"/readyz"); h.Ready || len(h.Shards) != 1 || h.Shards[0].State != "recovery-pending" {
		t.Fatalf("gated health = %+v, want not-ready recovery-pending", h)
	}

	c, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.SetRequestDeadline(100 * time.Millisecond)
	start := time.Now()
	err = c.Write(0, []byte("never lands"), core.Meta{})
	elapsed := time.Since(start)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusTimeout {
		t.Fatalf("gated write err = %v, want StatusTimeout", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: request took %v with a 100ms budget", elapsed)
	}
}

// newServerTestPool builds the standard 2-shard pool used by server tests.
func newServerTestPool(t *testing.T) *shard.Pool {
	t.Helper()
	pool, err := shard.New(shard.Config{
		Shards: 2,
		Core: core.Config{
			DataBytes:  2 * 8 * layout.PageSize,
			Key:        []byte("0123456789abcdef"),
			Encryption: core.AISE,
			Integrity:  core.BonsaiMT,
			SwapSlots:  8,
		},
	})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	return pool
}

// shutdownServer drains srv and checks Serve exited with ErrServerClosed.
func shutdownServer(t *testing.T, srv *Server, serveDone chan error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("serve: %v", err)
	}
}

// probeHealth GETs a health endpoint and decodes its JSON body.
func probeHealth(t *testing.T, url string) Health {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("probe %s: %v", url, err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("probe %s: decode: %v", url, err)
	}
	return h
}
