package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
	"aisebmt/internal/shard"
	"aisebmt/internal/tenant"
)

// startTenantServer boots a tenant-enabled service on a loopback port.
func startTenantServer(t *testing.T, budget int) (string, *tenant.Service, func() error) {
	t.Helper()
	pool, err := shard.New(shard.Config{
		Shards: 2,
		Core: core.Config{
			DataBytes:  2 * 16 * layout.PageSize,
			Key:        []byte("0123456789abcdef"),
			Encryption: core.AISE,
			Integrity:  core.BonsaiMT,
			SwapSlots:  16,
		},
	})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	svc := tenant.New(tenant.Config{Pool: pool, ResidentPages: budget})
	srv := New(pool, Options{Timeout: 2 * time.Second, Tenants: svc, Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
			return err
		}
		return nil
	}
	return ln.Addr().String(), svc, shutdown
}

func TestTenantOpsEndToEnd(t *testing.T) {
	addr, _, shutdown := startTenantServer(t, 0)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	id, err := c.TenantCreate(4)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	msg := []byte("tenant-private bytes")
	if err := c.TenantWrite(id, 2*layout.PageSize+10, msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := c.TenantRead(id, 2*layout.PageSize+10, len(msg))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read = %q, want %q", got, msg)
	}

	// Fork: child sees the data, a child write stays private.
	child, err := c.TenantFork(id)
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	if got, err = c.TenantRead(child, 2*layout.PageSize+10, len(msg)); err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("child read = %q, %v", got, err)
	}
	if err := c.TenantWrite(child, 2*layout.PageSize+10, []byte("CHILD OVERWRITE DATA")); err != nil {
		t.Fatalf("child write: %v", err)
	}
	if got, err = c.TenantRead(id, 2*layout.PageSize+10, len(msg)); err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("parent sees child write: %q, %v", got, err)
	}

	// Stats reflect the churn and the COW split.
	raw, err := c.TenantStats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var st tenant.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if st.Live != 2 || st.Cums.Forked != 1 || st.VM.COWBreaks == 0 {
		t.Fatalf("stats = %+v", st)
	}

	if err := c.TenantDestroy(child); err != nil {
		t.Fatalf("destroy child: %v", err)
	}
	if err := c.TenantDestroy(id); err != nil {
		t.Fatalf("destroy parent: %v", err)
	}

	// Error taxonomy: unknown tenants and bad ranges are BadRequest.
	var se *StatusError
	if _, err := c.TenantRead(id, 0, 8); !errors.As(err, &se) || se.Status != StatusBadRequest {
		t.Fatalf("read of destroyed tenant: %v", err)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestTenantPressureOverWire(t *testing.T) {
	addr, svc, shutdown := startTenantServer(t, 6)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	id, err := c.TenantCreate(16)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for p := 0; p < 16; p++ {
		if err := c.TenantWrite(id, uint64(p)*layout.PageSize, bytes.Repeat([]byte{byte(p + 1)}, layout.PageSize)); err != nil {
			t.Fatalf("write page %d: %v", p, err)
		}
	}
	st := svc.Stats()
	if st.ResidentPages > 6 || st.SwappedPages == 0 {
		t.Fatalf("budget not enforced: %+v", st)
	}
	for p := 0; p < 16; p++ {
		got, err := c.TenantRead(id, uint64(p)*layout.PageSize, layout.PageSize)
		if err != nil {
			t.Fatalf("read page %d: %v", p, err)
		}
		if got[0] != byte(p+1) || got[layout.PageSize-1] != byte(p+1) {
			t.Fatalf("page %d corrupted across swap", p)
		}
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestTenantMapSharedOverWire(t *testing.T) {
	addr, svc, shutdown := startTenantServer(t, 0)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	a, err := c.TenantCreate(4)
	if err != nil {
		t.Fatalf("create a: %v", err)
	}
	b, err := c.TenantCreate(2)
	if err != nil {
		t.Fatalf("create b: %v", err)
	}
	seed := []byte("shared page payload")
	if err := c.TenantWrite(a, layout.PageSize, seed); err != nil {
		t.Fatalf("seed write: %v", err)
	}

	// Map a's page 1 at b's page 4 — beyond b's 2-page space, so the
	// mapping grows b's address space to cover it.
	if err := c.TenantMap(a, layout.PageSize, b, 4*layout.PageSize); err != nil {
		t.Fatalf("map: %v", err)
	}
	got, err := c.TenantRead(b, 4*layout.PageSize, len(seed))
	if err != nil || !bytes.Equal(got, seed) {
		t.Fatalf("b reads %q, %v; want %q", got, err, seed)
	}

	// Shared means shared: a write on either side is visible to both and
	// never splits the page.
	if err := c.TenantWrite(b, 4*layout.PageSize, []byte("B WROTE THIS")); err != nil {
		t.Fatalf("b write: %v", err)
	}
	if got, err = c.TenantRead(a, layout.PageSize, 12); err != nil || string(got) != "B WROTE THIS" {
		t.Fatalf("a sees %q, %v after b's write", got, err)
	}

	// Fork interaction: fork a; private pages split copy-on-write, the
	// shared page stays one frame visible to parent, child and b.
	child, err := c.TenantFork(a)
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	if err := c.TenantWrite(a, 0, []byte("parent private")); err != nil {
		t.Fatalf("parent private write: %v", err)
	}
	if got, err = c.TenantRead(child, 0, 14); err != nil || string(got) == "parent private" {
		t.Fatalf("child sees parent's private write: %q, %v", got, err)
	}
	if err := c.TenantWrite(child, layout.PageSize, []byte("CHILD ON SHARED")); err != nil {
		t.Fatalf("child shared write: %v", err)
	}
	if got, err = c.TenantRead(b, 4*layout.PageSize, 15); err != nil || string(got) != "CHILD ON SHARED" {
		t.Fatalf("b sees %q, %v after child's shared write", got, err)
	}

	// The mapping survives swap pressure as one page: force it out through
	// the service, then fault it back through b.
	if err := svc.ForceSwapOut(context.Background(), a, layout.PageSize); err != nil {
		t.Fatalf("force swap-out: %v", err)
	}
	if got, err = c.TenantRead(b, 4*layout.PageSize, 15); err != nil || string(got) != "CHILD ON SHARED" {
		t.Fatalf("b reads %q, %v after swap round-trip", got, err)
	}

	// Error taxonomy: unknown tenants, unaligned addresses and occupied
	// destinations are BadRequest.
	var se *StatusError
	if err := c.TenantMap(9999, 0, b, 5*layout.PageSize); !errors.As(err, &se) || se.Status != StatusBadRequest {
		t.Fatalf("map from unknown tenant: %v", err)
	}
	if err := c.TenantMap(a, 7, b, 5*layout.PageSize); !errors.As(err, &se) || se.Status != StatusBadRequest {
		t.Fatalf("unaligned map: %v", err)
	}
	if err := c.TenantMap(a, 0, b, 4*layout.PageSize); !errors.As(err, &se) || se.Status != StatusBadRequest {
		t.Fatalf("map onto occupied page: %v", err)
	}

	if st := svc.Stats(); st.Cums.MapShared != 1 {
		t.Fatalf("mapshared counter = %d, want 1", st.Cums.MapShared)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestTenantOpsUnsupportedWithoutLayer(t *testing.T) {
	addr, _, shutdown := startServer(t)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	var se *StatusError
	if _, err := c.TenantCreate(1); !errors.As(err, &se) || se.Status != StatusUnsupported {
		t.Fatalf("tenant create without layer: %v", err)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestTenantTamperedSwapRefusedOverWire(t *testing.T) {
	addr, svc, shutdown := startTenantServer(t, 0)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	id, err := c.TenantCreate(2)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := c.TenantWrite(id, 0, bytes.Repeat([]byte{0x77}, layout.PageSize)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := svc.ForceSwapOut(context.Background(), id, 0); err != nil {
		t.Fatalf("force swap-out: %v", err)
	}
	slot := svc.SwapSlotOf(id, 0)
	img := svc.Swap().Image(slot).Clone()
	// Tampering the counter block is caught by the Page Root Directory
	// check at swap-in, before any data block is even decrypted.
	img.Counters[0] ^= 0x80
	svc.Swap().Tamper(slot, img)

	var se *StatusError
	if _, err := c.TenantRead(id, 0, 16); !errors.As(err, &se) || se.Status != StatusTampered {
		t.Fatalf("tampered swap-in answered %v, want StatusTampered", err)
	}
	if st := svc.Stats(); st.Cums.TamperRefused == 0 {
		t.Fatal("refusal not counted")
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
