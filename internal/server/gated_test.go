package server

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
	"aisebmt/internal/shard"
)

// TestGatedStartup: a gated server accepts connections and parks their
// requests until Publish; the parked request then completes against the
// published pool. This is the recovery window a durable daemon exposes.
func TestGatedStartup(t *testing.T) {
	srv := NewGated(Options{Timeout: 5 * time.Second, Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	c, err := Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial during recovery window: %v", err)
	}
	defer c.Close()

	msg := []byte("written before the pool existed")
	wrote := make(chan error, 1)
	go func() { wrote <- c.Write(64, msg, core.Meta{}) }()

	// The request must still be parked, not failed, while unpublished.
	select {
	case err := <-wrote:
		t.Fatalf("write completed before Publish: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	pool, err := shard.New(shard.Config{
		Shards: 2,
		Core: core.Config{
			DataBytes:  2 * 8 * layout.PageSize,
			Key:        []byte("0123456789abcdef"),
			Encryption: core.AISE,
			Integrity:  core.BonsaiMT,
		},
	})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	srv.Publish(pool)

	if err := <-wrote; err != nil {
		t.Fatalf("parked write after Publish: %v", err)
	}
	got, err := c.Read(64, len(msg), core.Meta{})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q, want %q", got, msg)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("serve: %v", err)
	}
}

// TestGatedTimeout: if recovery never finishes, gated requests fail with
// a timeout instead of hanging forever, and Shutdown of a never-published
// server is clean.
func TestGatedTimeout(t *testing.T) {
	srv := NewGated(Options{Timeout: 150 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	c, err := Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	err = c.Write(0, []byte("never lands"), core.Meta{})
	if err == nil {
		t.Fatal("write succeeded with no pool published")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown of never-published server: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("serve: %v", err)
	}
}
