package server

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
	"aisebmt/internal/obs"
	"aisebmt/internal/shard"
)

// tracezBody mirrors the /tracez response shape for decoding.
type tracezBody struct {
	Count   int `json:"count"`
	Records []struct {
		TraceID    uint64 `json:"trace_id"`
		OpName     string `json:"op_name"`
		StatusName string `json:"status_name"`
		QueueNs    int64  `json:"queue_ns"`
		ExecNs     int64  `json:"exec_ns"`
	} `json:"records"`
}

// TestObsEndpointsEndToEnd runs traced requests over the real TCP wire
// and checks the observability surface the way an operator would: the
// /metrics exposition lints clean and shows the request series plus the
// pool scrape section, /tracez returns the traced spans with decoded op
// names, and the pprof mux answers when enabled.
func TestObsEndpointsEndToEnd(t *testing.T) {
	svc := obs.NewService(2, 256)
	pool, err := shard.New(shard.Config{
		Shards: 2,
		Core: core.Config{
			DataBytes:  2 * 8 * layout.PageSize,
			Key:        []byte("0123456789abcdef"),
			Encryption: core.AISE,
			Integrity:  core.BonsaiMT,
			SwapSlots:  8,
		},
		Obs: svc,
	})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	srv := New(pool, Options{Timeout: 2 * time.Second, Logf: t.Logf, Obs: svc})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	mux := http.NewServeMux()
	mux.Handle("/", srv.HealthHandler())
	srv.ObsHandler(mux, true)
	hs := httptest.NewServer(mux)
	defer hs.Close()

	c, err := Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	const traceBase = uint64(0x51d00000)
	c.EnableTrace(traceBase)
	msg := []byte("observed over the wire")
	if err := c.Write(128, msg, core.Meta{}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := c.Read(128, len(msg), core.Meta{}); err != nil {
		t.Fatalf("read: %v", err)
	}

	// /metrics: lint-clean exposition with the request series moved and
	// the pool's scrape-time section present.
	text := httpGet(t, hs.URL+"/metrics")
	if probs := obs.Lint(text, "secmemd_"); len(probs) > 0 {
		t.Fatalf("metrics lint:\n%s", strings.Join(probs, "\n"))
	}
	samples := obs.ParseSamples(text)
	for _, series := range []string{
		`secmemd_requests_total{op="write",status="ok"}`,
		`secmemd_requests_total{op="read",status="ok"}`,
		`secmemd_request_duration_us_count{op="read",outcome="ok"}`,
		"secmemd_pool_enqueued_total",
	} {
		if samples[series] < 1 {
			t.Errorf("%s = %v, want >= 1", series, samples[series])
		}
	}
	if samples[`secmemd_shard_state{shard="0",state="serving"}`] != 1 {
		t.Errorf("pool scrape section missing or shard 0 not serving")
	}

	// /tracez: both spans present, op names decoded in the pool's
	// namespace, and the timeline populated.
	var dump tracezBody
	if err := json.Unmarshal([]byte(httpGet(t, hs.URL+"/tracez?n=16")), &dump); err != nil {
		t.Fatalf("tracez decode: %v", err)
	}
	found := map[uint64]string{}
	for _, r := range dump.Records {
		found[r.TraceID] = r.OpName
		if r.StatusName != "ok" || r.ExecNs <= 0 || r.QueueNs < 0 {
			t.Errorf("span %#x: status=%q exec=%d queue=%d", r.TraceID, r.StatusName, r.ExecNs, r.QueueNs)
		}
	}
	if found[traceBase] != "write" || found[traceBase+1] != "read" {
		t.Errorf("traced spans = %v, want %#x→write and %#x→read", found, traceBase, traceBase+1)
	}

	// pprof answers when mounted.
	if body := httpGet(t, hs.URL+"/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline returned an empty body")
	}

	if err := srv.Shutdown(t.Context()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("serve: %v", err)
	}
}

// httpGet fetches a URL and fails the test on any error or non-200.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(body)
}
