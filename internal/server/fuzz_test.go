package server

import (
	"bytes"
	"context"
	"testing"
	"time"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
	"aisebmt/internal/shard"
	"aisebmt/internal/tenant"
)

// FuzzRequestRoundTrip checks the codec both ways: any decodable request
// frame body re-encodes to an identical frame, and arbitrary bytes never
// panic the decoder.
func FuzzRequestRoundTrip(f *testing.F) {
	seed := [][]byte{}
	for _, q := range []*Request{
		{Op: OpRead, Addr: 4096, Count: 64},
		{Op: OpWrite, Addr: 64, Virt: 1 << 40, PID: 9, Data: []byte("hello")},
		{Op: OpSwapIn, Addr: 8192, Slot: 3, Data: bytes.Repeat([]byte{1}, 64)},
		{Op: OpHibernate},
		{Op: OpRead, Addr: 4096, Count: 64, DeadlineUS: 250_000},
		{Op: OpWrite, Addr: 64, Data: []byte("d"), DeadlineUS: ^uint32(0)},
		{Op: OpRead, Addr: 4096, Count: 64, TraceID: ^uint64(0)},
		{Op: OpWrite, Addr: 64, Data: []byte("t"), DeadlineUS: 1, TraceID: 7},
		{Op: OpCordon, Addr: 1},
		{Op: OpUncordon, Addr: 1},
		{Op: OpTenantCreate, Count: 8},
		{Op: OpTenantDestroy, Addr: 3},
		{Op: OpTenantFork, Addr: 3, TraceID: 11},
		{Op: OpTenantRead, Addr: 3, Virt: 4096, Count: 64},
		{Op: OpTenantWrite, Addr: 3, Virt: 8192, Data: []byte("tenant bytes")},
		{Op: OpTenantStats},
		{Op: OpTenantMap, Addr: 3, Virt: 4096, Data: []byte{0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 32, 0}},
	} {
		var buf bytes.Buffer
		if err := EncodeRequest(&buf, q); err != nil {
			f.Fatal(err)
		}
		seed = append(seed, buf.Bytes()[4:]) // frame body without the length prefix
	}
	seed = append(seed,
		[]byte{}, []byte{0},
		bytes.Repeat([]byte{0xff}, reqHeaderLen),
		// Legacy headers (trace-less: 8 short; trace- and deadline-less:
		// 12 short) must be rejected cleanly, never sliced out of range.
		append([]byte{byte(OpRead)}, make([]byte, reqHeaderLen-9)...),
		append([]byte{byte(OpRead)}, make([]byte, reqHeaderLen-13)...))
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		q, err := parseRequest(body)
		if err != nil {
			return // rejected input; the only requirement is no panic
		}
		var buf bytes.Buffer
		if err := EncodeRequest(&buf, q); err != nil {
			t.Fatalf("decoded request failed to re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes()[4:], body) {
			t.Fatalf("round-trip changed the frame body:\n in  %x\n out %x", body, buf.Bytes()[4:])
		}
		q2, err := DecodeRequest(&buf)
		if err != nil {
			t.Fatalf("re-encoded request failed to decode: %v", err)
		}
		if q.Op != q2.Op || q.Addr != q2.Addr || q.Virt != q2.Virt ||
			q.PID != q2.PID || q.Count != q2.Count || q.Slot != q2.Slot ||
			!bytes.Equal(q.Data, q2.Data) {
			t.Fatal("double round-trip mismatch")
		}
	})
}

// FuzzTenantDispatch drives arbitrary frame bodies through the decoder
// and — when they parse to a tenant operation — through a real tenant
// service over a live pool: malformed tenant frames must never panic the
// server, whatever tenant IDs, virtual addresses, page counts or
// payloads they carry. Tenants a fuzz input manages to create are torn
// down again so state stays bounded across iterations.
func FuzzTenantDispatch(f *testing.F) {
	pool, err := shard.New(shard.Config{
		Shards: 2,
		Core: core.Config{
			DataBytes:  2 * 8 * layout.PageSize,
			Key:        []byte("0123456789abcdef"),
			Encryption: core.AISE,
			Integrity:  core.BonsaiMT,
			SwapSlots:  8,
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	defer pool.Close()
	svc := tenant.New(tenant.Config{Pool: pool, ResidentPages: 6})
	srv := New(pool, Options{Timeout: time.Second, Tenants: svc})
	for _, q := range []*Request{
		{Op: OpTenantCreate, Count: 4},
		{Op: OpTenantCreate, Count: ^uint32(0)},
		{Op: OpTenantDestroy, Addr: ^uint64(0)},
		{Op: OpTenantFork, Addr: 1},
		{Op: OpTenantRead, Addr: 1, Virt: ^uint64(0), Count: 64},
		{Op: OpTenantRead, Addr: 1, Count: ^uint32(0)},
		{Op: OpTenantWrite, Addr: 1, Virt: 1<<32 - 4096, Data: bytes.Repeat([]byte{7}, 128)},
		{Op: OpTenantStats},
		{Op: OpTenantMap, Addr: 1, Virt: 0, Data: []byte{0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 16, 0}},
		{Op: OpTenantMap, Addr: 1, Virt: 4096, Data: []byte{0xff}}, // short destination
		{Op: OpTenantMap, Addr: ^uint64(0), Virt: ^uint64(0), Data: bytes.Repeat([]byte{0xff}, 12)},
	} {
		var buf bytes.Buffer
		if err := EncodeRequest(&buf, q); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes()[4:])
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		q, err := parseRequest(body)
		if err != nil || (q.Op < OpTenantCreate || q.Op > OpTenantStats) && q.Op != OpTenantMap {
			return
		}
		resp := srv.dispatch(q)
		if resp == nil {
			t.Fatal("dispatch returned nil response")
		}
		if q.Op == OpTenantCreate && resp.Status == StatusOK {
			id, err := tenantID(OpTenantCreate, resp)
			if err != nil {
				t.Fatal(err)
			}
			if err := svc.Destroy(context.Background(), id, 0); err != nil {
				t.Fatalf("cleanup destroy: %v", err)
			}
		}
	})
}

// FuzzResponseDecode feeds arbitrary frames to the response decoder.
func FuzzResponseDecode(f *testing.F) {
	for _, p := range []*Response{
		{Status: StatusOK, Data: []byte("x")},
		{Status: StatusOverloaded, Data: []byte("server: 1024 requests in flight")},
		{Status: StatusQuarantined, Data: []byte("shard 1 quarantined (integrity)")},
		{Status: StatusSlowClient, Data: []byte("frame not completed within 10s")},
	} {
		var buf bytes.Buffer
		EncodeResponse(&buf, p)
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0, 0, 0, 1, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 1, byte(StatusSlowClient) + 1}) // just past the last status
	f.Fuzz(func(t *testing.T, frame []byte) {
		p, err := DecodeResponse(bytes.NewReader(frame))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeResponse(&buf, p); err != nil {
			t.Fatalf("decoded response failed to re-encode: %v", err)
		}
	})
}
