package server

import (
	"encoding/json"
	"net/http"

	"aisebmt/internal/obs"
	"aisebmt/internal/shard"
)

// Health is the server's probe snapshot: overall liveness is implicit
// (the handler answered), readiness means the pool is published and at
// least one shard is serving, and Shards reports each fault domain's
// state so an operator or orchestrator can see a partial degradation
// without parsing logs. Build identifies the binary (same fields as the
// secmemd_build_info metric) so probes and scrapes agree on what is
// running.
type Health struct {
	Ready    bool          `json:"ready"`
	Degraded bool          `json:"degraded"`
	Shed     uint64        `json:"shed_requests"`
	Build    obs.BuildInfo `json:"build"`
	Shards   []ShardHealth `json:"shards"`
}

// ShardHealth is one shard's fault-domain state. State is one of
// "serving", "quarantined", "repairing", "down", or "recovery-pending"
// (the server is still gated on crash recovery and no pool exists yet).
type ShardHealth struct {
	Shard int    `json:"shard"`
	State string `json:"state"`
	Kind  string `json:"kind,omitempty"`  // fault kind when latched
	Fault string `json:"fault,omitempty"` // latched cause, human-readable
}

// Health reports the server's current probe snapshot.
func (s *Server) Health() Health {
	h := Health{Shed: s.shed.Load(), Build: obs.ReadBuildInfo()}
	select {
	case <-s.ready:
	default:
		// Gated: recovery is still replaying the WAL; every shard is
		// pending and the server is not ready for traffic.
		return Health{Shards: []ShardHealth{{State: "recovery-pending"}}, Shed: h.Shed, Build: h.Build}
	}
	for i, st := range s.pool.ShardStates() {
		sh := ShardHealth{Shard: i, State: st.String()}
		if kind, cause := s.pool.ShardFault(i); cause != nil {
			sh.Kind = kind.String()
			sh.Fault = cause.Error()
		}
		if st == shard.StateServing {
			h.Ready = true
		} else {
			h.Degraded = true
		}
		h.Shards = append(h.Shards, sh)
	}
	return h
}

// HealthHandler returns an http.Handler serving the probe endpoints:
//
//	/healthz — liveness: always 200 while the process can answer.
//	/readyz  — readiness: 200 once the pool is published and at least
//	           one shard is serving, 503 otherwise. The body is the
//	           same Health JSON either way.
//
// cmd/secmemd mounts it on a sidecar listener so probes don't compete
// with the data plane for wire-protocol connections.
func (s *Server) HealthHandler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, code int, h Health) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(h)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Health())
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		code := http.StatusOK
		if !h.Ready {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	return mux
}
