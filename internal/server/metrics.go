package server

import (
	"io"
	"net/http"
	"net/http/pprof"
	"time"

	"aisebmt/internal/obs"
	"aisebmt/internal/shard"
)

// serverMetrics holds the front-end's instruments, pre-registered so the
// request loop only does array indexing and atomic adds (the hot path
// stays allocation-free). Latency histograms are split per op by outcome
// class rather than by each of the nine statuses — the full op×status
// cross lives in the cheap counters, the expensive bucket series stay
// bounded.
type serverMetrics struct {
	// lat[op][outcome]: outcome 0 = ok, 1 = retryable, 2 = fatal.
	lat [OpTenantStats + 1][3]*obs.Histogram
	cnt [OpTenantStats + 1][StatusNotOwner + 1]*obs.Counter
}

const (
	outcomeOK = iota
	outcomeRetryable
	outcomeFatal
)

func outcomeName(o int) string {
	switch o {
	case outcomeOK:
		return "ok"
	case outcomeRetryable:
		return "retryable"
	default:
		return "fatal"
	}
}

// newServerMetrics registers the front-end instruments.
func newServerMetrics(svc *obs.Service, s *Server) *serverMetrics {
	reg := svc.Reg
	m := &serverMetrics{}
	buckets := obs.LatencyBucketsUS()
	for op := OpRead; op <= OpTenantStats; op++ {
		for o := outcomeOK; o <= outcomeFatal; o++ {
			m.lat[op][o] = reg.Histogram("secmemd_request_duration_us",
				"Wire request duration from decode to response, microseconds.",
				buckets, "op", op.String(), "outcome", outcomeName(o))
		}
		for st := StatusOK; st <= StatusNotOwner; st++ {
			m.cnt[op][st] = reg.Counter("secmemd_requests_total",
				"Wire requests by operation and response status.",
				"op", op.String(), "status", st.String())
		}
	}
	reg.CounterFunc("secmemd_server_sheds_total",
		"Requests shed by admission control before queueing.",
		func() float64 { return float64(s.shed.Load()) })
	return m
}

// observe records one completed request.
func (m *serverMetrics) observe(op Op, st Status, d time.Duration) {
	if m == nil || op < OpRead || op > OpTenantStats || st > StatusNotOwner {
		return
	}
	o := outcomeFatal
	switch {
	case st == StatusOK:
		o = outcomeOK
	case st.Retryable():
		o = outcomeRetryable
	}
	m.lat[op][o].Observe(uint64(d.Microseconds()))
	m.cnt[op][st].Inc()
}

// ObsHandler mounts the observability endpoints on mux:
//
//	/metrics — Prometheus text exposition: the registry plus the pool's
//	           scrape-time section (shard states, queue depths, core
//	           counters). Gated like the data plane: the pool section
//	           appears once recovery publishes the pool.
//	/tracez  — JSON dump of recent traced requests, newest first.
//
// When pprofOn is set the net/http/pprof handlers are mounted under
// /debug/pprof/ as well.
func (s *Server) ObsHandler(mux *http.ServeMux, pprofOn bool) {
	svc := s.opts.Obs
	if svc == nil {
		return
	}
	mux.Handle("/metrics", obs.MetricsHandler(svc, func(w http.ResponseWriter) {
		select {
		case <-s.ready:
			// Pool-style backends expose a scrape-time section (shard
			// states, core counters); other backends may not. The tenant
			// layer appends its vm substrate section the same way.
			if wm, ok := s.pool.(interface{ WriteMetrics(io.Writer) }); ok {
				wm.WriteMetrics(w)
			}
			if wm, ok := s.opts.Tenants.(interface{ WriteMetrics(io.Writer) }); ok {
				wm.WriteMetrics(w)
			}
		default:
		}
	}))
	// Trace records are published by pool workers and carry the pool's
	// internal op/status numbering, not wire opcodes.
	mux.Handle("/tracez", obs.TracezHandler(svc, shard.TraceOpName, shard.TraceStatusName))
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}
