package server

import (
	"bytes"
	"reflect"
	"testing"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []*Request{
		{Op: OpRead, Addr: 0x1000, Count: 64},
		{Op: OpWrite, Addr: 0xdead00, Virt: 0x7fff0000, PID: 42, Data: []byte("payload")},
		{Op: OpVerify},
		{Op: OpRoot},
		{Op: OpStats},
		{Op: OpSwapOut, Addr: 0x2000, Slot: 7},
		{Op: OpSwapIn, Addr: 0x3000, Slot: 9, Data: bytes.Repeat([]byte{0xab}, imageFixedLen)},
		{Op: OpHibernate},
		{Op: OpRead, Addr: 0x1000, Count: 64, DeadlineUS: 500_000},
		{Op: OpRead, Addr: 0x1000, Count: 64, TraceID: 0xfeedface12345678},
		{Op: OpWrite, Addr: 0x4000, Data: []byte("traced"), DeadlineUS: 250_000, TraceID: 1},
		{Op: OpCordon, Addr: 1},
		{Op: OpUncordon, Addr: 1},
	}
	for _, q := range cases {
		var buf bytes.Buffer
		if err := EncodeRequest(&buf, q); err != nil {
			t.Fatalf("%s: encode: %v", q.Op, err)
		}
		got, err := DecodeRequest(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", q.Op, err)
		}
		if !reflect.DeepEqual(q, got) {
			t.Fatalf("%s: round-trip mismatch:\n got %+v\nwant %+v", q.Op, got, q)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []*Response{
		{Status: StatusOK},
		{Status: StatusOK, Data: []byte("plaintext")},
		{Status: StatusTampered, Data: []byte("core: integrity verification failed")},
		{Status: StatusTimeout, Data: []byte("context deadline exceeded")},
		{Status: StatusOverloaded, Data: []byte("server: 1024 requests in flight")},
		{Status: StatusQuarantined, Data: []byte("shard 1: quarantined (integrity)")},
		{Status: StatusSlowClient, Data: []byte("request frame not completed within 10s")},
	}
	for _, p := range cases {
		var buf bytes.Buffer
		if err := EncodeResponse(&buf, p); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeResponse(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(p, got) {
			t.Fatalf("round-trip mismatch: got %+v want %+v", got, p)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	// Oversized frame length.
	big := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := DecodeRequest(bytes.NewReader(big)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Truncated header.
	var buf bytes.Buffer
	EncodeRequest(&buf, &Request{Op: OpRead})
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := DecodeRequest(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Unknown op.
	body := make([]byte, reqHeaderLen)
	body[0] = 0xee
	var f bytes.Buffer
	writeFrame(&f, body)
	if _, err := DecodeRequest(&f); err == nil {
		t.Fatal("unknown op accepted")
	}
	// Short request body.
	var s bytes.Buffer
	writeFrame(&s, []byte{byte(OpRead), 0, 0})
	if _, err := DecodeRequest(&s); err == nil {
		t.Fatal("short body accepted")
	}
	// Empty response frame.
	var e bytes.Buffer
	writeFrame(&e, nil)
	if _, err := DecodeResponse(&e); err == nil {
		t.Fatal("empty response accepted")
	}
	// Legacy header without the trace field (8 bytes short).
	var l bytes.Buffer
	writeFrame(&l, append([]byte{byte(OpRead)}, make([]byte, reqHeaderLen-9)...))
	if _, err := DecodeRequest(&l); err == nil {
		t.Fatal("legacy trace-less header accepted")
	}
	// Legacy header without trace or deadline fields (12 bytes short).
	var l2 bytes.Buffer
	writeFrame(&l2, append([]byte{byte(OpRead)}, make([]byte, reqHeaderLen-13)...))
	if _, err := DecodeRequest(&l2); err == nil {
		t.Fatal("legacy deadline-less header accepted")
	}
}

func TestStatusRetryable(t *testing.T) {
	retryable := map[Status]bool{
		StatusTimeout:     true,
		StatusOverloaded:  true,
		StatusQuarantined: true,
	}
	for s := StatusOK; s <= StatusSlowClient; s++ {
		if got := s.Retryable(); got != retryable[s] {
			t.Errorf("%s.Retryable() = %v, want %v", s, got, retryable[s])
		}
	}
}

func TestImageRoundTrip(t *testing.T) {
	img := &core.PageImage{MACs: bytes.Repeat([]byte{7}, 16*layout.BlocksPerPage)}
	for i := range img.Data {
		for j := range img.Data[i] {
			img.Data[i][j] = byte(i + j)
		}
	}
	for j := range img.Counters {
		img.Counters[j] = byte(255 - j)
	}
	got, err := DecodeImage(EncodeImage(img))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(img, got) {
		t.Fatal("image round-trip mismatch")
	}
	if _, err := DecodeImage(EncodeImage(img)[:100]); err == nil {
		t.Fatal("truncated image accepted")
	}
	bad := EncodeImage(img)
	bad[layout.PageSize+layout.BlockSize]++ // corrupt the MAC length
	if _, err := DecodeImage(bad); err == nil {
		t.Fatal("inconsistent MAC length accepted")
	}
}
