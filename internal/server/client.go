package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
	"aisebmt/internal/shard"
)

// Client is a synchronous wire-protocol client over one TCP connection.
// It is not safe for concurrent use; closed-loop load generators open one
// Client per worker.
type Client struct {
	conn       net.Conn
	bw         *bufio.Writer
	br         *bufio.Reader
	deadlineUS uint32
	traceNext  uint64 // next TraceID to stamp; 0 = tracing off
}

// Dial connects to a secmemd server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, bw: bufio.NewWriter(conn), br: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetRequestDeadline stamps every subsequent request with a per-request
// execution budget; the server uses min(budget, its own timeout).
// 0 restores the server default. Budgets are capped at ~71 minutes by
// the wire format's microsecond field.
func (c *Client) SetRequestDeadline(d time.Duration) {
	if d <= 0 {
		c.deadlineUS = 0
		return
	}
	us := d.Microseconds()
	if us <= 0 {
		us = 1
	}
	if us > int64(^uint32(0)) {
		us = int64(^uint32(0))
	}
	c.deadlineUS = uint32(us)
}

// EnableTrace stamps every subsequent request with a distinct nonzero
// TraceID, counting up from base (base 0 picks 1). The server records a
// per-stage span for each traced request in its trace rings (/tracez).
// Returns the first TraceID that will be used.
func (c *Client) EnableTrace(base uint64) uint64 {
	if base == 0 {
		base = 1
	}
	c.traceNext = base
	return base
}

// DisableTrace stops stamping TraceIDs.
func (c *Client) DisableTrace() { c.traceNext = 0 }

// Do sends one request and reads its response.
func (c *Client) Do(q *Request) (*Response, error) {
	if q.DeadlineUS == 0 {
		q.DeadlineUS = c.deadlineUS
	}
	if q.TraceID == 0 && c.traceNext != 0 {
		q.TraceID = c.traceNext
		c.traceNext++
		if c.traceNext == 0 { // wrapped: 0 means "off", skip it
			c.traceNext = 1
		}
	}
	if err := EncodeRequest(c.bw, q); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	return DecodeResponse(c.br)
}

// StatusError reports a non-OK response as a Go error.
type StatusError struct {
	Op     Op
	Status Status
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server: %s: %s: %s", e.Op, e.Status, e.Msg)
}

// Retryable reports whether err is a transient *StatusError (timeout,
// overloaded, quarantined, not-owner): the request was not executed and
// a backoff retry can reasonably succeed.
func Retryable(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status.Retryable()
}

// NotOwnerAddr extracts the owner's wire address from a StatusNotOwner
// error. A smart cluster client uses it to re-route the retry straight
// to the owning node instead of bouncing off the same replica again.
func NotOwnerAddr(err error) (string, bool) {
	var se *StatusError
	if errors.As(err, &se) && se.Status == StatusNotOwner && se.Msg != "" {
		return se.Msg, true
	}
	return "", false
}

// check converts a non-OK response into a *StatusError.
func check(op Op, p *Response) error {
	if p.Status == StatusOK {
		return nil
	}
	return &StatusError{Op: op, Status: p.Status, Msg: string(p.Data)}
}

// Read fetches n plaintext bytes at addr.
func (c *Client) Read(addr layout.Addr, n int, meta core.Meta) ([]byte, error) {
	p, err := c.Do(&Request{Op: OpRead, Addr: uint64(addr), Virt: meta.VirtAddr, PID: meta.PID, Count: uint32(n)})
	if err != nil {
		return nil, err
	}
	if err := check(OpRead, p); err != nil {
		return nil, err
	}
	return p.Data, nil
}

// Write stores plaintext bytes at addr.
func (c *Client) Write(addr layout.Addr, data []byte, meta core.Meta) error {
	p, err := c.Do(&Request{Op: OpWrite, Addr: uint64(addr), Virt: meta.VirtAddr, PID: meta.PID, Data: data})
	if err != nil {
		return err
	}
	return check(OpWrite, p)
}

// Verify runs the service-wide integrity sweep.
func (c *Client) Verify() error {
	p, err := c.Do(&Request{Op: OpVerify})
	if err != nil {
		return err
	}
	return check(OpVerify, p)
}

// Roots fetches the per-shard tree roots.
func (c *Client) Roots() ([][]byte, error) {
	p, err := c.Do(&Request{Op: OpRoot})
	if err != nil {
		return nil, err
	}
	if err := check(OpRoot, p); err != nil {
		return nil, err
	}
	var roots [][]byte
	b := p.Data
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("server: truncated roots payload")
		}
		n := int(b[0])<<24 | int(b[1])<<16 | int(b[2])<<8 | int(b[3])
		b = b[4:]
		if n > len(b) {
			return nil, fmt.Errorf("server: truncated root of %d bytes", n)
		}
		roots = append(roots, append([]byte(nil), b[:n]...))
		b = b[n:]
	}
	return roots, nil
}

// Stats fetches the service-level statistics.
func (c *Client) Stats() (shard.ServiceStats, error) {
	var st shard.ServiceStats
	p, err := c.Do(&Request{Op: OpStats})
	if err != nil {
		return st, err
	}
	if err := check(OpStats, p); err != nil {
		return st, err
	}
	err = json.Unmarshal(p.Data, &st)
	return st, err
}

// SwapOut evicts the page at addr to a client-held image.
func (c *Client) SwapOut(addr layout.Addr, slot int) (*core.PageImage, error) {
	p, err := c.Do(&Request{Op: OpSwapOut, Addr: uint64(addr), Slot: uint32(slot)})
	if err != nil {
		return nil, err
	}
	if err := check(OpSwapOut, p); err != nil {
		return nil, err
	}
	return DecodeImage(p.Data)
}

// SwapIn installs a client-held image at addr.
func (c *Client) SwapIn(img *core.PageImage, addr layout.Addr, slot int) error {
	p, err := c.Do(&Request{Op: OpSwapIn, Addr: uint64(addr), Slot: uint32(slot), Data: EncodeImage(img)})
	if err != nil {
		return err
	}
	return check(OpSwapIn, p)
}

// Hibernate asks the daemon to write its pool image to disk.
func (c *Client) Hibernate() error {
	p, err := c.Do(&Request{Op: OpHibernate})
	if err != nil {
		return err
	}
	return check(OpHibernate, p)
}

// tenantID parses the 4-byte big-endian tenant ID create and fork answer.
func tenantID(op Op, p *Response) (uint32, error) {
	if err := check(op, p); err != nil {
		return 0, err
	}
	if len(p.Data) != 4 {
		return 0, fmt.Errorf("server: %s answered %d bytes, want a 4-byte tenant id", op, len(p.Data))
	}
	return uint32(p.Data[0])<<24 | uint32(p.Data[1])<<16 | uint32(p.Data[2])<<8 | uint32(p.Data[3]), nil
}

// TenantCreate allocates a tenant with npages of zeroed memory and
// returns its ID.
func (c *Client) TenantCreate(npages int) (uint32, error) {
	p, err := c.Do(&Request{Op: OpTenantCreate, Count: uint32(npages)})
	if err != nil {
		return 0, err
	}
	return tenantID(OpTenantCreate, p)
}

// TenantDestroy tears a tenant down.
func (c *Client) TenantDestroy(id uint32) error {
	p, err := c.Do(&Request{Op: OpTenantDestroy, Addr: uint64(id)})
	if err != nil {
		return err
	}
	return check(OpTenantDestroy, p)
}

// TenantFork clones a tenant copy-on-write and returns the child's ID.
func (c *Client) TenantFork(id uint32) (uint32, error) {
	p, err := c.Do(&Request{Op: OpTenantFork, Addr: uint64(id)})
	if err != nil {
		return 0, err
	}
	return tenantID(OpTenantFork, p)
}

// TenantRead fetches n bytes from a tenant's address space at vaddr.
func (c *Client) TenantRead(id uint32, vaddr uint64, n int) ([]byte, error) {
	p, err := c.Do(&Request{Op: OpTenantRead, Addr: uint64(id), Virt: vaddr, Count: uint32(n)})
	if err != nil {
		return nil, err
	}
	if err := check(OpTenantRead, p); err != nil {
		return nil, err
	}
	return p.Data, nil
}

// TenantWrite stores data into a tenant's address space at vaddr.
func (c *Client) TenantWrite(id uint32, vaddr uint64, data []byte) error {
	p, err := c.Do(&Request{Op: OpTenantWrite, Addr: uint64(id), Virt: vaddr, Data: data})
	if err != nil {
		return err
	}
	return check(OpTenantWrite, p)
}

// TenantMap aliases one page of tenant srcID at srcVaddr into tenant
// dstID's address space at dstVaddr; both sides then read and write the
// same physical page.
func (c *Client) TenantMap(srcID uint32, srcVaddr uint64, dstID uint32, dstVaddr uint64) error {
	data := make([]byte, 12)
	binary.BigEndian.PutUint32(data[:4], dstID)
	binary.BigEndian.PutUint64(data[4:], dstVaddr)
	p, err := c.Do(&Request{Op: OpTenantMap, Addr: uint64(srcID), Virt: srcVaddr, Data: data})
	if err != nil {
		return err
	}
	return check(OpTenantMap, p)
}

// TenantStats fetches the tenant layer's snapshot as raw JSON (the shape
// is tenant.Stats; raw bytes keep the client decoupled from that package).
func (c *Client) TenantStats() ([]byte, error) {
	p, err := c.Do(&Request{Op: OpTenantStats})
	if err != nil {
		return nil, err
	}
	if err := check(OpTenantStats, p); err != nil {
		return nil, err
	}
	return p.Data, nil
}

// clusterOp runs one membership-admin op with arg in Data and returns
// the resulting cluster view as raw JSON.
func (c *Client) clusterOp(op Op, arg string) ([]byte, error) {
	p, err := c.Do(&Request{Op: op, Data: []byte(arg)})
	if err != nil {
		return nil, err
	}
	if err := check(op, p); err != nil {
		return nil, err
	}
	return p.Data, nil
}

// ClusterView fetches the node's current cluster view as JSON.
func (c *Client) ClusterView() ([]byte, error) { return c.clusterOp(OpClusterView, "") }

// ClusterJoin admits a new member ("id=host:port/repl" spec) to the
// cluster this node belongs to.
func (c *Client) ClusterJoin(spec string) ([]byte, error) { return c.clusterOp(OpClusterJoin, spec) }

// ClusterLeave drains the addressed node (id must be the node served by
// this connection) and retires it from the cluster.
func (c *Client) ClusterLeave(id string) ([]byte, error) { return c.clusterOp(OpClusterLeave, id) }

// ClusterRemove expels a dead member; its ranges must already be served
// by the node this connection addresses.
func (c *Client) ClusterRemove(id string) ([]byte, error) { return c.clusterOp(OpClusterRemove, id) }

// Cordon takes shard i out of service (operator control).
func (c *Client) Cordon(i int) error {
	p, err := c.Do(&Request{Op: OpCordon, Addr: uint64(i)})
	if err != nil {
		return err
	}
	return check(OpCordon, p)
}

// Uncordon routes a down shard back through quarantine and repair.
func (c *Client) Uncordon(i int) error {
	p, err := c.Do(&Request{Op: OpUncordon, Addr: uint64(i)})
	if err != nil {
		return err
	}
	return check(OpUncordon, p)
}
