package server

import (
	"aisebmt/internal/core"
	"aisebmt/internal/layout"
)

// imageFixedLen is the fixed prefix of an encoded PageImage: the page's
// 64 data blocks, its counter block, and a MAC-section length.
const imageFixedLen = layout.PageSize + layout.BlockSize + 4

// EncodeImage flattens a swapped-out page for the wire; the codec lives
// in core (core.EncodePageImage) so non-wire layers share it.
func EncodeImage(img *core.PageImage) []byte { return core.EncodePageImage(img) }

// DecodeImage parses EncodeImage's layout.
func DecodeImage(b []byte) (*core.PageImage, error) { return core.DecodePageImage(b) }
