// Package server is the secure-memory service front-end: a small
// length-prefixed binary wire protocol and a TCP server that exposes a
// shard.Pool's operations (read, write, verify, root, stats, swapout,
// swapin, hibernate) with per-request timeouts and graceful
// drain-on-shutdown. cmd/secmemd wraps it as a daemon and cmd/loadgen
// drives it as a client.
package server

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Op identifies a request operation.
type Op uint8

// Wire operations.
const (
	OpRead Op = iota + 1
	OpWrite
	OpVerify
	OpRoot
	OpStats
	OpSwapOut
	OpSwapIn
	OpHibernate
	// OpCordon / OpUncordon are operator controls over one shard's fault
	// domain (Addr carries the shard index): cordon takes the shard out of
	// service, uncordon routes it back through quarantine and repair.
	OpCordon
	OpUncordon
	// Tenant operations address the multi-tenant layer rather than the
	// flat keyspace: Addr carries the tenant ID (except create, where
	// Count carries the page count), Virt the tenant-virtual address.
	// Create and fork answer with the 4-byte big-endian tenant ID.
	OpTenantCreate
	OpTenantDestroy
	OpTenantFork
	OpTenantRead
	OpTenantWrite
	OpTenantStats
	// Cluster membership operations drive the ring-change protocol on a
	// cluster-mode node: Data carries the argument as text (join: the new
	// member's "id=host:port/repl" spec; leave/remove: the member ID; view:
	// nothing) and the answer is the resulting cluster view as JSON.
	OpClusterView
	OpClusterJoin
	OpClusterLeave
	OpClusterRemove
	// OpTenantMap aliases one page of a source tenant into a destination
	// tenant's address space: Addr carries the source tenant ID, Virt the
	// source page address, and Data the destination tenant ID (4 bytes BE)
	// followed by the destination page address (8 bytes BE).
	OpTenantMap
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpVerify:
		return "verify"
	case OpRoot:
		return "root"
	case OpStats:
		return "stats"
	case OpSwapOut:
		return "swapout"
	case OpSwapIn:
		return "swapin"
	case OpHibernate:
		return "hibernate"
	case OpCordon:
		return "cordon"
	case OpUncordon:
		return "uncordon"
	case OpTenantCreate:
		return "tenant-create"
	case OpTenantDestroy:
		return "tenant-destroy"
	case OpTenantFork:
		return "tenant-fork"
	case OpTenantRead:
		return "tenant-read"
	case OpTenantWrite:
		return "tenant-write"
	case OpTenantStats:
		return "tenant-stats"
	case OpClusterView:
		return "cluster-view"
	case OpClusterJoin:
		return "cluster-join"
	case OpClusterLeave:
		return "cluster-leave"
	case OpClusterRemove:
		return "cluster-remove"
	case OpTenantMap:
		return "tenant-map"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Status is a response's outcome class.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota
	StatusTampered
	StatusUnsupported
	StatusBadRequest
	StatusTimeout
	StatusInternal
	// StatusOverloaded: admission control shed the request before it
	// queued; nothing was executed. Retry with backoff.
	StatusOverloaded
	// StatusQuarantined: the addressed shard is latched out of service
	// (integrity or durability fault, or an operator cordon) and nothing
	// was executed; other shards are unaffected. Retry with backoff —
	// online repair usually brings the shard back.
	StatusQuarantined
	// StatusSlowClient: the client failed to deliver a complete request
	// frame within the server's frame timeout; the server closes the
	// connection after sending this.
	StatusSlowClient
	// StatusNotOwner: in cluster mode the addressed page belongs to
	// another node; nothing was executed. Data carries the owner's wire
	// address as text so a smart client can re-route without a proxy hop.
	StatusNotOwner
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusTampered:
		return "tampered"
	case StatusUnsupported:
		return "unsupported"
	case StatusBadRequest:
		return "bad-request"
	case StatusTimeout:
		return "timeout"
	case StatusInternal:
		return "error"
	case StatusOverloaded:
		return "overloaded"
	case StatusQuarantined:
		return "quarantined"
	case StatusSlowClient:
		return "slow-client"
	case StatusNotOwner:
		return "not-owner"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Retryable reports whether the status is transient — the request was
// not executed and a retry with backoff can reasonably succeed. Every
// other non-OK status is fatal for the request (tampered, unsupported,
// malformed) and retrying it verbatim cannot help.
func (s Status) Retryable() bool {
	switch s {
	case StatusTimeout, StatusOverloaded, StatusQuarantined, StatusNotOwner:
		return true
	default:
		return false
	}
}

// MaxFrame bounds a frame body; it must admit a swap image (a 4KB page,
// its counter block and up to 64 32-byte MACs) with room to spare.
const MaxFrame = 1 << 20

// reqHeaderLen is the fixed request body prefix: op(1) + addr(8) +
// virt(8) + pid(4) + count(4) + slot(4) + deadline(4) + trace(8).
const reqHeaderLen = 1 + 8 + 8 + 4 + 4 + 4 + 4 + 8

// Request is one wire request. All operations share a fixed header;
// fields an operation does not use are zero. Data carries the payload for
// writes (plaintext) and swapin (an encoded PageImage).
type Request struct {
	Op    Op
	Addr  uint64
	Virt  uint64 // Meta.VirtAddr for read/write
	PID   uint32 // Meta.PID for read/write
	Count uint32 // byte count for reads
	Slot  uint32 // directory slot for swapout/swapin
	// DeadlineUS is the client's budget for this request in microseconds;
	// the server uses min(DeadlineUS, its own timeout) as the execution
	// deadline. 0 means "server default". ~71 minutes is the ceiling,
	// far above any sane per-request budget.
	DeadlineUS uint32
	// TraceID, when nonzero, asks the server to record a per-stage span
	// timeline (queue wait, coalesce, crypto, WAL append, fsync) for this
	// request into its shard's trace ring, retrievable via /tracez. Zero
	// disables tracing; recording is lock-free and allocation-free either
	// way.
	TraceID uint64
	Data    []byte
}

// Response is one wire response. Data carries read plaintext, an encoded
// PageImage for swapout, JSON for stats, concatenated per-shard roots for
// root, or an error message for non-OK statuses.
type Response struct {
	Status Status
	Data   []byte
}

// writeFrame emits one length-prefixed frame.
func writeFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", len(body), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame consumes one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// EncodeRequest writes one request frame.
func EncodeRequest(w io.Writer, q *Request) error {
	body := make([]byte, reqHeaderLen+len(q.Data))
	body[0] = byte(q.Op)
	binary.BigEndian.PutUint64(body[1:9], q.Addr)
	binary.BigEndian.PutUint64(body[9:17], q.Virt)
	binary.BigEndian.PutUint32(body[17:21], q.PID)
	binary.BigEndian.PutUint32(body[21:25], q.Count)
	binary.BigEndian.PutUint32(body[25:29], q.Slot)
	binary.BigEndian.PutUint32(body[29:33], q.DeadlineUS)
	binary.BigEndian.PutUint64(body[33:41], q.TraceID)
	copy(body[reqHeaderLen:], q.Data)
	return writeFrame(w, body)
}

// DecodeRequest reads one request frame.
func DecodeRequest(r io.Reader) (*Request, error) {
	body, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	return parseRequest(body)
}

// parseRequest decodes a request frame body.
func parseRequest(body []byte) (*Request, error) {
	if len(body) < reqHeaderLen {
		return nil, fmt.Errorf("server: request frame of %d bytes is shorter than the %d-byte header", len(body), reqHeaderLen)
	}
	q := &Request{
		Op:         Op(body[0]),
		Addr:       binary.BigEndian.Uint64(body[1:9]),
		Virt:       binary.BigEndian.Uint64(body[9:17]),
		PID:        binary.BigEndian.Uint32(body[17:21]),
		Count:      binary.BigEndian.Uint32(body[21:25]),
		Slot:       binary.BigEndian.Uint32(body[25:29]),
		DeadlineUS: binary.BigEndian.Uint32(body[29:33]),
		TraceID:    binary.BigEndian.Uint64(body[33:41]),
	}
	if q.Op < OpRead || q.Op > OpTenantMap {
		return nil, fmt.Errorf("server: unknown op %d", body[0])
	}
	if len(body) > reqHeaderLen {
		q.Data = body[reqHeaderLen:]
	}
	return q, nil
}

// EncodeResponse writes one response frame.
func EncodeResponse(w io.Writer, p *Response) error {
	body := make([]byte, 1+len(p.Data))
	body[0] = byte(p.Status)
	copy(body[1:], p.Data)
	return writeFrame(w, body)
}

// DecodeResponse reads one response frame.
func DecodeResponse(r io.Reader) (*Response, error) {
	body, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if len(body) < 1 {
		return nil, fmt.Errorf("server: empty response frame")
	}
	if Status(body[0]) > StatusNotOwner {
		return nil, fmt.Errorf("server: unknown status %d", body[0])
	}
	p := &Response{Status: Status(body[0])}
	if len(body) > 1 {
		p.Data = body[1:]
	}
	return p, nil
}
