package engine

import (
	"testing"
	"testing/quick"
)

func TestAESLatency(t *testing.T) {
	p := NewAES()
	if done := p.Issue(0); done != 80 {
		t.Errorf("first op done=%d, want 80", done)
	}
}

func TestPipelining(t *testing.T) {
	p := NewAES()
	// Four chunks issued back-to-back at cycle 0: slots at 0,5,10,15, each
	// completing 80 cycles later. The block's pad is ready at 95.
	if done := p.IssueN(0, 4); done != 95 {
		t.Errorf("4-chunk pad done=%d, want 95", done)
	}
	if p.Ops() != 4 {
		t.Errorf("ops=%d, want 4", p.Ops())
	}
}

func TestIssueAfterIdle(t *testing.T) {
	p := NewHMAC()
	p.Issue(0)
	if done := p.Issue(1000); done != 1080 {
		t.Errorf("post-idle op done=%d, want 1080", done)
	}
}

func TestStructuralHazard(t *testing.T) {
	p := &Pipeline{Latency: 80, Interval: 5}
	d1 := p.Issue(0) // slot 0
	d2 := p.Issue(0) // slot 5
	d3 := p.Issue(2) // slot 10 (busy until then)
	if d1 != 80 || d2 != 85 || d3 != 90 {
		t.Errorf("completions = %d,%d,%d; want 80,85,90", d1, d2, d3)
	}
}

// Property: completion time is at least now+Latency and monotone for
// monotone issue times.
func TestCompletionBounds(t *testing.T) {
	f := func(gaps []uint8) bool {
		p := NewAES()
		var now, last uint64
		for _, g := range gaps {
			now += uint64(g)
			done := p.Issue(now)
			if done < now+p.Latency || done < last {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpan(t *testing.T) {
	p := NewAES()
	if got := p.Span(4); got != 95 {
		t.Errorf("Span(4) = %d, want 95 (80 + 3*5)", got)
	}
	if got := p.Span(1); got != 80 {
		t.Errorf("Span(1) = %d, want 80", got)
	}
	if got := p.Span(0); got != 0 {
		t.Errorf("Span(0) = %d, want 0", got)
	}
	if p.Ops() != 5 {
		t.Errorf("ops = %d, want 5", p.Ops())
	}
	// Span does not disturb the Issue cursor (out-of-order callers rely on
	// statelessness).
	if done := p.Issue(0); done != 80 {
		t.Errorf("Issue after Span = %d, want 80", done)
	}
}
