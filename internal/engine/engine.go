// Package engine models the latency and pipelining of the on-chip
// cryptographic hardware: the 128-bit AES unit (16-stage pipeline, 80-cycle
// latency) used for pad generation and direct encryption, and the
// HMAC/SHA-1 unit (80-cycle latency) used for MAC computation and Merkle
// tree verification, matching the paper's §6 configuration.
package engine

// Pipeline models a fully pipelined fixed-function unit: operations take
// Latency cycles to complete and a new operation can be issued every
// Interval cycles.
type Pipeline struct {
	Latency  uint64
	Interval uint64
	nextslot uint64
	ops      uint64
}

// NewAES returns the paper's AES engine: 80-cycle latency, 16 stages
// (an issue slot every 5 cycles).
func NewAES() *Pipeline { return &Pipeline{Latency: 80, Interval: 5} }

// NewHMAC returns the paper's HMAC-SHA-1 engine: 80-cycle latency, modeled
// with the same issue interval as the AES unit.
func NewHMAC() *Pipeline { return &Pipeline{Latency: 80, Interval: 5} }

// Issue schedules one operation at cycle now (or as soon after as an issue
// slot frees) and returns its completion cycle.
func (p *Pipeline) Issue(now uint64) uint64 {
	start := now
	if p.nextslot > start {
		start = p.nextslot
	}
	p.nextslot = start + p.Interval
	p.ops++
	return start + p.Latency
}

// IssueN schedules n back-to-back operations (for example the four AES
// chunks of one 64-byte block) and returns the completion cycle of the last.
func (p *Pipeline) IssueN(now uint64, n int) uint64 {
	var done uint64 = now
	for i := 0; i < n; i++ {
		done = p.Issue(now)
	}
	return done
}

// Ops returns the number of operations issued.
func (p *Pipeline) Ops() uint64 { return p.ops }

// Span returns the completion delay of n back-to-back operations entering
// an idle pipeline: the first completes after Latency, each further one an
// issue Interval later. Simulators that replay events out of timestamp
// order use Span instead of Issue so the shared-cursor structural hazard
// model cannot misorder across time.
func (p *Pipeline) Span(n int) uint64 {
	if n <= 0 {
		return 0
	}
	p.ops += uint64(n)
	return p.Latency + uint64(n-1)*p.Interval
}
