package hide

import (
	"testing"

	"aisebmt/internal/attack"
	"aisebmt/internal/core"
	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
)

var testKey = []byte("processor-secret")

func layerSetup(t *testing.T, budget int) (*core.SecureMemory, *Layer) {
	t.Helper()
	sm, err := core.New(core.Config{
		DataBytes: 64 << 10, MACBits: 128, Key: testKey,
		Encryption: core.AISE, Integrity: core.BonsaiMT,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(sm, budget, 99)
	if err != nil {
		t.Fatal(err)
	}
	return sm, l
}

func TestHideRoundTrip(t *testing.T) {
	_, l := layerSetup(t, 1000)
	var want, got mem.Block
	copy(want[:], "permuted but intact")
	if err := l.WriteBlock(0x2040, &want, core.Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := l.ReadBlock(0x2040, &got, core.Meta{}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("round trip through permutation failed")
	}
}

func TestHidePermutesBusAddresses(t *testing.T) {
	sm, l := layerSetup(t, 100000)
	snoop := attack.NewSnooper(sm.Memory())
	var b mem.Block
	// Touch every block of one page; the bus must see each physical slot
	// exactly once but in permuted order.
	var seen []int
	for i := 0; i < layout.BlocksPerPage; i++ {
		snoop.Reset()
		if err := l.ReadBlock(layout.Addr(0x3000+i*64), &b, core.Meta{}); err != nil {
			t.Fatal(err)
		}
		reads := snoop.ReadsIn(0x3000, layout.PageSize)
		if len(reads) != 1 {
			t.Fatalf("block %d produced %d in-page bus reads", i, len(reads))
		}
		seen = append(seen, int(reads[0]-0x3000)/64)
	}
	// Permutation property: all 64 slots hit exactly once...
	hit := map[int]bool{}
	inOrder := true
	for i, s := range seen {
		if hit[s] {
			t.Fatalf("slot %d observed twice", s)
		}
		hit[s] = true
		if s != i {
			inOrder = false
		}
	}
	if inOrder {
		t.Error("bus order identical to logical order; no permutation happened")
	}
}

func TestHideDefeatsTableIndexAttack(t *testing.T) {
	sm, l := layerSetup(t, 100000)
	snoop := attack.NewSnooper(sm.Memory())
	const tableBase = layout.Addr(0x8000)
	secret := 11
	var b mem.Block
	if err := l.ReadBlock(tableBase+layout.Addr(secret*64), &b, core.Meta{}); err != nil {
		t.Fatal(err)
	}
	idxs := snoop.InferTableIndex(tableBase, 64, layout.BlocksPerPage)
	for _, i := range idxs {
		if i == secret {
			t.Fatalf("secret index %d still visible on the bus under HIDE", secret)
		}
	}
}

func TestHideRepermutesOnBudget(t *testing.T) {
	sm, l := layerSetup(t, 4)
	var want, got mem.Block
	copy(want[:], "survives epochs")
	if err := l.WriteBlock(0x1000, &want, core.Meta{}); err != nil {
		t.Fatal(err)
	}
	snoop := attack.NewSnooper(sm.Memory())
	addrOf := func() layout.Addr {
		snoop.Reset()
		if err := l.ReadBlock(0x1000, &got, core.Meta{}); err != nil {
			t.Fatal(err)
		}
		rs := snoop.ReadsIn(0x1000, layout.PageSize)
		if len(rs) == 0 {
			t.Fatal("no bus read observed")
		}
		return rs[0]
	}
	first := addrOf()
	// Drive past the budget; repermutation must fire and (almost surely)
	// relocate the block on the bus.
	moved := false
	for i := 0; i < 20; i++ {
		if addrOf() != first {
			moved = true
			break
		}
	}
	if l.Repermutes == 0 {
		t.Fatal("no repermutation fired")
	}
	if !moved {
		t.Error("block never moved on the bus across epochs")
	}
	if got != want {
		t.Error("data corrupted by repermutation")
	}
}

func TestHideValidation(t *testing.T) {
	sm, _ := layerSetup(t, 1)
	if _, err := New(sm, 0, 1); err == nil {
		t.Error("zero budget accepted")
	}
}
