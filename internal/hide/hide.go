// Package hide implements a simplified HIDE-style address-bus protection
// layer (Zhuang, Zhang & Pande, ASPLOS 2004), the mitigation the paper
// cites as complementary for its §3 caveat: AISE+BMT protect the data bus,
// but the address sequence still leaks access patterns.
//
// The layer sits between the processor and the secure memory controller.
// Each protected page has an on-chip permutation of its 64 block slots;
// the processor's logical block index is remapped before the access reaches
// the controller, so the bus observes permuted addresses. After every
// RepermuteAfter accesses to a page, the page is re-permuted — all blocks
// are read and rewritten under a fresh permutation — so an observer cannot
// correlate slots across epochs. The permutation tables live on chip
// (attacker-invisible), like HIDE's remapping hardware.
//
// Faithfulness note: real HIDE permutes inside the memory controller with
// chunk-granularity guarantees ("an address repeats on the bus only after
// the chunk is re-permuted"). This implementation keeps that observable
// property at page granularity while routing all movement through the
// secure controller, so encryption and integrity metadata stay coherent.
package hide

import (
	"fmt"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
)

type coreBlock = mem.Block

// Layer remaps block addresses within each page through an on-chip
// permutation, re-permuting pages periodically.
type Layer struct {
	sm   *core.SecureMemory
	meta core.Meta

	// perm[page][logical] = physical slot within the page.
	perm map[layout.Addr][]uint8
	// accesses since the last re-permutation, per page.
	count map[layout.Addr]int
	// RepermuteAfter is the access budget per epoch (HIDE's chunk budget).
	RepermuteAfter int

	rng uint64

	// Repermutes counts epochs for experiments.
	Repermutes uint64
}

// New wraps a secure memory controller with address-bus protection.
func New(sm *core.SecureMemory, repermuteAfter int, seed uint64) (*Layer, error) {
	if repermuteAfter < 1 {
		return nil, fmt.Errorf("hide: RepermuteAfter must be positive, got %d", repermuteAfter)
	}
	if seed == 0 {
		seed = 0x6a09e667f3bcc909
	}
	return &Layer{
		sm:             sm,
		perm:           make(map[layout.Addr][]uint8),
		count:          make(map[layout.Addr]int),
		RepermuteAfter: repermuteAfter,
		rng:            seed,
	}, nil
}

func (l *Layer) next() uint64 {
	l.rng ^= l.rng << 13
	l.rng ^= l.rng >> 7
	l.rng ^= l.rng << 17
	return l.rng
}

// permutation returns (allocating if needed) the page's current mapping.
func (l *Layer) permutation(page layout.Addr) []uint8 {
	if p, ok := l.perm[page]; ok {
		return p
	}
	p := identityPerm()
	l.shuffle(p)
	l.perm[page] = p
	return p
}

func identityPerm() []uint8 {
	p := make([]uint8, layout.BlocksPerPage)
	for i := range p {
		p[i] = uint8(i)
	}
	return p
}

func (l *Layer) shuffle(p []uint8) {
	for i := len(p) - 1; i > 0; i-- {
		j := int(l.next() % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
}

// mapAddr translates a logical address to its permuted physical address.
func (l *Layer) mapAddr(a layout.Addr) layout.Addr {
	page := a.PageAddr()
	p := l.permutation(page)
	slot := p[a.BlockInPage()]
	return page + layout.Addr(int(slot)*layout.BlockSize) + layout.Addr(a)&(layout.BlockSize-1)
}

// touch charges one access to the page's epoch budget, re-permuting when it
// is exhausted.
func (l *Layer) touch(page layout.Addr) error {
	l.count[page]++
	if l.count[page] < l.RepermuteAfter {
		return nil
	}
	return l.Repermute(page)
}

// Repermute reads the whole page under the old permutation and rewrites it
// under a fresh one — the HIDE epoch change. All movement goes through the
// secure controller, so ciphertext, counters and MACs stay coherent.
func (l *Layer) Repermute(page layout.Addr) error {
	page = page.PageAddr()
	old := l.permutation(page)
	var contents [layout.BlocksPerPage]coreBlock
	for i := 0; i < layout.BlocksPerPage; i++ {
		pa := page + layout.Addr(int(old[i])*layout.BlockSize)
		if err := l.sm.ReadBlock(pa, &contents[i], l.meta); err != nil {
			return fmt.Errorf("hide: repermute read: %w", err)
		}
	}
	fresh := identityPerm()
	l.shuffle(fresh)
	for i := 0; i < layout.BlocksPerPage; i++ {
		pa := page + layout.Addr(int(fresh[i])*layout.BlockSize)
		if err := l.sm.WriteBlock(pa, &contents[i], l.meta); err != nil {
			return fmt.Errorf("hide: repermute write: %w", err)
		}
	}
	l.perm[page] = fresh
	l.count[page] = 0
	l.Repermutes++
	return nil
}

// ReadBlock reads the logical block at a through the permutation layer.
func (l *Layer) ReadBlock(a layout.Addr, dst *coreBlock, meta core.Meta) error {
	if err := l.sm.ReadBlock(l.mapAddr(a), dst, meta); err != nil {
		return err
	}
	return l.touch(a.PageAddr())
}

// WriteBlock writes the logical block at a through the permutation layer.
func (l *Layer) WriteBlock(a layout.Addr, src *coreBlock, meta core.Meta) error {
	if err := l.sm.WriteBlock(l.mapAddr(a), src, meta); err != nil {
		return err
	}
	return l.touch(a.PageAddr())
}
