package cache

import (
	"testing"
	"testing/quick"

	"aisebmt/internal/layout"
)

func small() *Cache {
	// 4 sets x 2 ways x 64B = 512B cache.
	return New(Config{Name: "t", SizeBytes: 512, Ways: 2})
}

func TestConfigSets(t *testing.T) {
	c := New(Config{Name: "L2", SizeBytes: 1 << 20, Ways: 8})
	if got := c.Config().Sets(); got != 2048 {
		t.Errorf("1MB/8-way sets = %d, want 2048", got)
	}
	if c.Lines() != 16384 {
		t.Errorf("lines = %d, want 16384", c.Lines())
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two set count did not panic")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 3 * 64, Ways: 1})
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if c.Access(0x100, false) {
		t.Error("cold access hit")
	}
	c.Insert(0x100, Data, false)
	if !c.Access(0x100, false) {
		t.Error("access after insert missed")
	}
	if !c.Access(0x13f, false) {
		t.Error("same-block offset missed")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()             // 4 sets; addresses with same (a>>6)&3 collide
	a0 := layout.Addr(0x000) // set 0
	a1 := layout.Addr(0x100) // set 0
	a2 := layout.Addr(0x200) // set 0
	c.Insert(a0, Data, false)
	c.Insert(a1, Data, false)
	c.Access(a0, false) // a1 now LRU
	v := c.Insert(a2, Data, true)
	if !v.Valid || v.Addr != a1 {
		t.Fatalf("victim = %+v, want a1", v)
	}
	if !c.Probe(a0) || !c.Probe(a2) || c.Probe(a1) {
		t.Error("post-eviction contents wrong")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := small()
	c.Insert(0x000, Data, false)
	c.MarkDirty(0x000)
	c.Insert(0x100, Data, false)
	v := c.Insert(0x200, Data, false) // evicts LRU = 0x000
	if !v.Valid || !v.Dirty || v.Addr != 0 {
		t.Fatalf("victim = %+v, want dirty block 0", v)
	}
	if c.Stats().DirtyEvict != 1 {
		t.Errorf("DirtyEvict = %d", c.Stats().DirtyEvict)
	}
}

func TestWriteAccessDirties(t *testing.T) {
	c := small()
	c.Insert(0x40, Data, false)
	c.Access(0x40, true)
	v := c.Invalidate(0x40)
	if !v.Dirty {
		t.Error("write access did not dirty the line")
	}
}

func TestProbeNeutral(t *testing.T) {
	c := small()
	c.Insert(0x000, Tree, false)
	before := c.Stats()
	if !c.Probe(0x000) || c.Probe(0x100) {
		t.Error("probe results wrong")
	}
	after := c.Stats()
	if before.Accesses != after.Accesses || before.Hits != after.Hits {
		t.Error("Probe perturbed statistics")
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := small()
	c.Insert(0x000, Data, false)
	c.Insert(0x100, Data, false)
	// Re-insert 0x000; it must not duplicate, and must become MRU.
	if v := c.Insert(0x000, Data, false); v.Valid {
		t.Fatalf("re-insert evicted %+v", v)
	}
	v := c.Insert(0x200, Data, false)
	if v.Addr != 0x100 {
		t.Errorf("victim = %#x, want 0x100 (refreshed line evicted instead)", v.Addr)
	}
}

func TestOccupancyClasses(t *testing.T) {
	c := small()
	c.Insert(0x000, Data, false)
	c.Insert(0x040, Tree, false)
	c.Insert(0x080, Tree, false)
	if c.Occupancy(Data) != 1 || c.Occupancy(Tree) != 2 {
		t.Errorf("occ data/tree = %d/%d", c.Occupancy(Data), c.Occupancy(Tree))
	}
	c.Invalidate(0x040)
	if c.Occupancy(Tree) != 1 {
		t.Errorf("occ tree after invalidate = %d", c.Occupancy(Tree))
	}
}

func TestOccupancyShareAveraging(t *testing.T) {
	c := small()
	c.Insert(0x000, Data, false)
	c.Insert(0x040, Tree, false)
	for i := 0; i < 100; i++ {
		c.Access(0x000, false)
	}
	st := c.Stats()
	dataShare := st.OccupancyShare(Data, c.Lines())
	treeShare := st.OccupancyShare(Tree, c.Lines())
	if dataShare <= 0 || treeShare <= 0 {
		t.Fatal("zero occupancy shares")
	}
	// 1 data line and 1 tree line of 8 total, sampled per access.
	if dataShare < 0.12 || dataShare > 0.13 {
		t.Errorf("data share = %.3f, want 0.125", dataShare)
	}
	if got := st.DataShareOfValid(); got < 0.49 || got > 0.51 {
		t.Errorf("DataShareOfValid = %.3f, want 0.5", got)
	}
}

func TestInvalidateRange(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 4096, Ways: 4})
	for a := layout.Addr(0); a < 512; a += 64 {
		c.Insert(a, Data, false)
	}
	n := c.InvalidateRange(128, 256)
	if n != 4 {
		t.Errorf("invalidated %d blocks, want 4", n)
	}
	if c.Probe(128) || c.Probe(320) {
		t.Error("blocks in range still present")
	}
	if !c.Probe(0) || !c.Probe(448) {
		t.Error("blocks outside range dropped")
	}
}

func TestFlushDirty(t *testing.T) {
	c := small()
	c.Insert(0x000, Data, true)
	c.Insert(0x040, Data, false)
	c.Insert(0x080, Tree, true)
	dirty := c.FlushDirty()
	if len(dirty) != 2 {
		t.Fatalf("FlushDirty returned %d addrs, want 2", len(dirty))
	}
	if len(c.FlushDirty()) != 0 {
		t.Error("second flush found dirty lines")
	}
}

// TestNeverExceedsWays: property — no insertion sequence can make a set hold
// more valid lines than its associativity (checked via total occupancy).
func TestNeverExceedsWays(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := small()
		for _, a := range addrs {
			c.Insert(layout.Addr(a)*64, Data, a%2 == 0)
		}
		total := c.Occupancy(Data) + c.Occupancy(Tree) + c.Occupancy(Counter)
		return total <= c.Lines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHitAfterInsertProperty: a block just inserted always hits next access.
func TestHitAfterInsertProperty(t *testing.T) {
	f := func(addr uint32) bool {
		c := New(Config{Name: "t", SizeBytes: 1 << 14, Ways: 4})
		a := layout.Addr(addr)
		c.Insert(a, Data, false)
		return c.Access(a, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWayPartitioning(t *testing.T) {
	// 1 set x 4 ways, 2 ways reserved for data: tree inserts may only use
	// ways 2-3 and can never evict data from ways 0-1.
	c := New(Config{Name: "p", SizeBytes: 4 * 64, Ways: 4, ReservedDataWays: 2})
	c.Insert(0x000, Data, false)
	c.Insert(0x040, Data, false)
	for i := 0; i < 8; i++ {
		c.Insert(layout.Addr(0x100+i*0x40), Tree, false)
	}
	if !c.Probe(0x000) || !c.Probe(0x040) {
		t.Error("tree inserts evicted reserved data ways")
	}
	if c.Occupancy(Tree) != 2 {
		t.Errorf("tree occupancy = %d, want 2 (partition limit)", c.Occupancy(Tree))
	}
	// Data may still use the whole set (it evicts by global LRU, which can
	// reclaim tree ways).
	c.Insert(0x080, Data, false)
	c.Insert(0x0c0, Data, false)
	if c.Occupancy(Data)+c.Occupancy(Tree) != 4 {
		t.Errorf("set not full: data %d + tree %d", c.Occupancy(Data), c.Occupancy(Tree))
	}
	if c.Occupancy(Data) < 2 {
		t.Errorf("data occupancy = %d, reserved ways not protecting data", c.Occupancy(Data))
	}
}

func TestPartitionAllWaysReserved(t *testing.T) {
	// Degenerate configuration: reservation >= ways still leaves non-data
	// one way rather than breaking.
	c := New(Config{Name: "p", SizeBytes: 2 * 64, Ways: 2, ReservedDataWays: 2})
	c.Insert(0x000, Tree, false)
	if c.Occupancy(Tree) != 1 {
		t.Errorf("tree occupancy = %d, want 1", c.Occupancy(Tree))
	}
}
