// Package cache models the on-chip set-associative caches of the secure
// processor: L1 instruction/data, the unified L2, and the counter cache.
//
// Lines carry an owner class (data, Merkle tree node, counter block) so the
// simulator can measure the paper's "cache pollution" effect — the share of
// L2 capacity consumed by integrity-tree nodes (Figure 9) — as a
// time-weighted average over the run.
package cache

import (
	"fmt"

	"aisebmt/internal/layout"
)

// Class labels what kind of block occupies a cache line.
type Class int

const (
	// Data is an application code or data block.
	Data Class = iota
	// Tree is a Merkle tree node (standard MT or Bonsai MT).
	Tree
	// Counter is an encryption counter block.
	Counter
	numClasses
)

func (c Class) String() string {
	switch c {
	case Data:
		return "data"
	case Tree:
		return "tree"
	case Counter:
		return "counter"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Config sizes a cache. LineSize is fixed at the architectural block size.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	// ReservedDataWays, when positive, partitions each set: non-data
	// classes (tree nodes, counters) may only occupy the last
	// Ways-ReservedDataWays ways, protecting data from metadata pollution.
	// Data may use every way.
	ReservedDataWays int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / layout.BlockSize / c.Ways }

// Stats aggregates cache behaviour over a run.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	DirtyEvict uint64
	// occupancy integral: for each class, the sum over sampled accesses of
	// the number of lines the class held. Divided by (samples × lines) it is
	// the average capacity share.
	occSum  [numClasses]uint64
	samples uint64
}

// MissRate returns misses/accesses (the "local" miss rate of the cache).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// OccupancyShare returns the time-averaged fraction of cache lines holding
// blocks of the given class, counting only valid lines' classes against the
// full capacity (invalid lines count as unused).
func (s Stats) OccupancyShare(class Class, totalLines int) float64 {
	if s.samples == 0 || totalLines == 0 {
		return 0
	}
	return float64(s.occSum[class]) / float64(s.samples*uint64(totalLines))
}

// DataShareOfValid returns data-class occupancy as a fraction of *valid*
// lines, matching the paper's Figure 9 metric ("portion of L2 cache space
// occupied by data blocks").
func (s Stats) DataShareOfValid() float64 {
	var valid uint64
	for c := Class(0); c < numClasses; c++ {
		valid += s.occSum[c]
	}
	if valid == 0 {
		return 1
	}
	return float64(s.occSum[Data]) / float64(valid)
}

type line struct {
	tag   layout.Addr // block address
	valid bool
	dirty bool
	class Class
	lru   uint64
}

// Victim describes a line displaced by an insertion.
type Victim struct {
	Valid bool
	Addr  layout.Addr
	Dirty bool
	Class Class
}

// Cache is a set-associative, write-back, LRU cache model. It tracks tags
// only; block contents live in the functional memory model.
type Cache struct {
	cfg    Config
	sets   [][]line
	clock  uint64
	occ    [numClasses]int
	stats  Stats
	shift  uint
	setMsk layout.Addr
}

// New builds a cache. SizeBytes must be a multiple of Ways×BlockSize and the
// set count must be a power of two; violations are configuration bugs and
// panic.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, sets))
	}
	c := &Cache{
		cfg:    cfg,
		sets:   make([][]line, sets),
		shift:  6, // log2(BlockSize)
		setMsk: layout.Addr(sets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Lines returns the total line count.
func (c *Cache) Lines() int { return c.cfg.Sets() * c.cfg.Ways }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) set(a layout.Addr) []line {
	return c.sets[(a>>c.shift)&c.setMsk]
}

func (c *Cache) sample() {
	c.stats.samples++
	for cl := Class(0); cl < numClasses; cl++ {
		c.stats.occSum[cl] += uint64(c.occ[cl])
	}
}

// Access looks up the block containing addr, updating LRU state and hit/miss
// statistics. If write is true and the line is present it becomes dirty.
// It does NOT allocate on miss; callers decide whether to Insert (so that
// no-allocate policies like the paper's uncached data MACs are expressible).
func (c *Cache) Access(addr layout.Addr, write bool) bool {
	addr = addr.BlockAddr()
	c.clock++
	c.stats.Accesses++
	c.sample()
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == addr {
			set[i].lru = c.clock
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Probe reports whether the block is present without touching LRU order or
// statistics. Used for Merkle tree walks that stop at the first cached node.
func (c *Cache) Probe(addr layout.Addr) bool {
	addr = addr.BlockAddr()
	for _, l := range c.set(addr) {
		if l.valid && l.tag == addr {
			return true
		}
	}
	return false
}

// Insert fills the block into the cache (after a miss), evicting the LRU
// line of the set if needed and returning it so the caller can model the
// writeback. Inserting a block that is already present just refreshes it.
// Under way partitioning, non-data classes choose victims only among their
// allowed ways.
func (c *Cache) Insert(addr layout.Addr, class Class, dirty bool) Victim {
	addr = addr.BlockAddr()
	c.clock++
	set := c.set(addr)
	lo := 0
	if class != Data && c.cfg.ReservedDataWays > 0 {
		lo = c.cfg.ReservedDataWays
		if lo >= len(set) {
			lo = len(set) - 1
		}
	}
	for i := range set {
		if set[i].valid && set[i].tag == addr {
			set[i].lru = c.clock
			set[i].dirty = set[i].dirty || dirty
			return Victim{}
		}
	}
	// Victim selection within the allowed ways: first invalid way, else LRU.
	victimIdx := lo
	for i := lo; i < len(set); i++ {
		if !set[i].valid {
			victimIdx = i
			break
		}
		if set[i].lru < set[victimIdx].lru {
			victimIdx = i
		}
	}
	v := Victim{}
	old := &set[victimIdx]
	if old.valid {
		v = Victim{Valid: true, Addr: old.tag, Dirty: old.dirty, Class: old.class}
		c.occ[old.class]--
		c.stats.Evictions++
		if old.dirty {
			c.stats.DirtyEvict++
		}
	}
	*old = line{tag: addr, valid: true, dirty: dirty, class: class, lru: c.clock}
	c.occ[class]++
	return v
}

// MarkDirty marks the block dirty if present, returning whether it was.
func (c *Cache) MarkDirty(addr layout.Addr) bool {
	addr = addr.BlockAddr()
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == addr {
			set[i].dirty = true
			return true
		}
	}
	return false
}

// Invalidate drops the block if present, returning the dropped line. The
// extended Merkle tree's swap-out path uses this to force re-verification of
// a physical frame's page subtree.
func (c *Cache) Invalidate(addr layout.Addr) Victim {
	addr = addr.BlockAddr()
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == addr {
			v := Victim{Valid: true, Addr: set[i].tag, Dirty: set[i].dirty, Class: set[i].class}
			c.occ[set[i].class]--
			set[i] = line{}
			return v
		}
	}
	return Victim{}
}

// InvalidateRange drops every cached block whose address falls in
// [base, base+size), returning how many were dropped.
func (c *Cache) InvalidateRange(base layout.Addr, size uint64) int {
	n := 0
	for a := base.BlockAddr(); a < base+layout.Addr(size); a += layout.BlockSize {
		if v := c.Invalidate(a); v.Valid {
			n++
		}
	}
	return n
}

// Occupancy returns the current number of valid lines holding the class.
func (c *Cache) Occupancy(class Class) int { return c.occ[class] }

// FlushDirty returns the addresses of all dirty lines and marks them clean,
// modeling a full writeback sweep (used at simulation barriers).
func (c *Cache) FlushDirty() []layout.Addr {
	var out []layout.Addr
	for si := range c.sets {
		for i := range c.sets[si] {
			l := &c.sets[si][i]
			if l.valid && l.dirty {
				out = append(out, l.tag)
				l.dirty = false
			}
		}
	}
	return out
}
