// Package boot implements the secure application loading the paper's
// attack model assumes (§3): "the secure processor already contains the
// cryptographic keys and code necessary to load a secure application,
// verify its digital signature, and compute the Merkle Tree over the
// application in memory."
//
// An application ships as a signed image: payload plus an HMAC tag under a
// vendor key whose verification half is fused on chip. Load verifies the
// signature entirely on chip, then writes the payload through the secure
// memory controller — encrypting it and extending the Merkle tree as it
// goes — and returns a measurement (the load-time tree root) that an
// attestation protocol could report.
package boot

import (
	"encoding/binary"
	"errors"
	"fmt"

	"aisebmt/internal/core"
	"aisebmt/internal/crypto/hmac"
	"aisebmt/internal/layout"
)

// Image is a signed application image as distributed to the device.
type Image struct {
	// Name identifies the application (bound by the signature).
	Name string
	// Entry is the load address within the data region.
	Entry layout.Addr
	// Payload is the application's code and data.
	Payload []byte
	// Tag is the vendor's HMAC over (name, entry, payload).
	Tag []byte
}

// ErrBadSignature reports a signature verification failure.
var ErrBadSignature = errors.New("boot: image signature verification failed")

// signingBytes serializes the signed portion of an image.
func signingBytes(name string, entry layout.Addr, payload []byte) []byte {
	msg := make([]byte, 0, len(name)+12+len(payload))
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(name)))
	binary.BigEndian.PutUint64(hdr[4:12], uint64(entry))
	msg = append(msg, hdr[:]...)
	msg = append(msg, name...)
	msg = append(msg, payload...)
	return msg
}

// Sign produces a distributable image under the vendor key. In deployment
// this runs at the vendor; it is here so tests and examples can mint
// images.
func Sign(vendorKey []byte, name string, entry layout.Addr, payload []byte) *Image {
	tag := hmac.MAC(vendorKey, signingBytes(name, entry, payload))
	return &Image{Name: name, Entry: entry, Payload: append([]byte(nil), payload...), Tag: tag[:]}
}

// Measurement is the evidence Load returns: what was loaded and the
// post-load Merkle root, the value a remote verifier would check.
type Measurement struct {
	Name  string
	Entry layout.Addr
	Bytes int
	Root  []byte
}

// Load verifies an image against the on-chip vendor key and installs it
// through the secure memory controller. Nothing from a rejected image
// reaches memory.
func Load(sm *core.SecureMemory, vendorKey []byte, img *Image) (Measurement, error) {
	want := hmac.MAC(vendorKey, signingBytes(img.Name, img.Entry, img.Payload))
	if !hmac.Equal(want[:], img.Tag) {
		return Measurement{}, fmt.Errorf("%w: image %q", ErrBadSignature, img.Name)
	}
	if uint64(img.Entry)+uint64(len(img.Payload)) > sm.DataBytes() {
		return Measurement{}, fmt.Errorf("boot: image %q does not fit at %#x", img.Name, img.Entry)
	}
	if err := sm.Write(img.Entry, img.Payload, core.Meta{}); err != nil {
		return Measurement{}, fmt.Errorf("boot: installing %q: %w", img.Name, err)
	}
	return Measurement{Name: img.Name, Entry: img.Entry, Bytes: len(img.Payload), Root: sm.Root()}, nil
}
