package boot

import (
	"bytes"
	"errors"
	"testing"

	"aisebmt/internal/core"
	"aisebmt/internal/layout"
)

var (
	chipKey   = []byte("processor-secret")
	vendorKey = []byte("vendor-signing-k")
)

func bootSM(t *testing.T) *core.SecureMemory {
	t.Helper()
	sm, err := core.New(core.Config{
		DataBytes: 128 << 10, MACBits: 128, Key: chipKey,
		Encryption: core.AISE, Integrity: core.BonsaiMT,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

func TestLoadVerifiedImage(t *testing.T) {
	sm := bootSM(t)
	payload := bytes.Repeat([]byte("secure application code "), 100)
	img := Sign(vendorKey, "app-v1", 0x4000, payload)
	meas, err := Load(sm, vendorKey, img)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Name != "app-v1" || meas.Bytes != len(payload) || len(meas.Root) == 0 {
		t.Errorf("measurement = %+v", meas)
	}
	// The application is readable through the protected path and encrypted
	// off chip.
	got := make([]byte, len(payload))
	if err := sm.Read(0x4000, got, core.Meta{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("loaded payload corrupted")
	}
	snap := sm.Memory().Snapshot(0x4000)
	if bytes.Contains(snap[:], []byte("secure app")) {
		t.Error("application plaintext visible off chip")
	}
	// The measurement matches the live root until something changes.
	if !bytes.Equal(meas.Root, sm.Root()) {
		t.Error("measurement root stale immediately after load")
	}
}

func TestLoadRejectsTamperedImage(t *testing.T) {
	sm := bootSM(t)
	img := Sign(vendorKey, "app", 0x1000, []byte("legit payload"))

	cases := map[string]func(*Image){
		"payload":  func(i *Image) { i.Payload[3] ^= 1 },
		"tag":      func(i *Image) { i.Tag[0] ^= 1 },
		"entry":    func(i *Image) { i.Entry += 0x1000 },
		"name":     func(i *Image) { i.Name = "app-evil" },
		"wrongkey": func(i *Image) { *i = *Sign([]byte("not-vendor-key!!"), i.Name, i.Entry, i.Payload) },
	}
	for name, mutate := range cases {
		bad := &Image{Name: img.Name, Entry: img.Entry,
			Payload: append([]byte(nil), img.Payload...),
			Tag:     append([]byte(nil), img.Tag...)}
		mutate(bad)
		if _, err := Load(sm, vendorKey, bad); !errors.Is(err, ErrBadSignature) {
			t.Errorf("%s tamper: err = %v, want ErrBadSignature", name, err)
		}
	}
	// Nothing leaked into memory from the rejected loads.
	got := make([]byte, 13)
	if err := sm.Read(0x1000, got, core.Meta{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 13)) {
		t.Error("rejected image left bytes in memory")
	}
}

func TestLoadBoundsChecked(t *testing.T) {
	sm := bootSM(t)
	// Entry four bytes below the end of the 128KB region; an 8-byte payload
	// overruns it.
	entry := layout.Addr(sm.DataBytes() - 4)
	img := Sign(vendorKey, "big", entry, []byte("12345678"))
	if _, err := Load(sm, vendorKey, img); err == nil {
		t.Error("out-of-bounds image accepted")
	}
}
