package encrypt

import (
	"encoding/hex"
	"testing"

	"aisebmt/internal/mem"
)

// TestGoldenCiphertexts pins the exact on-the-wire format: for a fixed key,
// plaintext and seed inputs, every scheme must keep producing the same
// ciphertext forever. A failure here means swapped-out pages and
// hibernation images written by older builds would no longer decrypt —
// treat it as a compatibility break, not a test to update casually.
func TestGoldenCiphertexts(t *testing.T) {
	key := []byte("0123456789abcdef")
	var plain mem.Block
	for i := range plain {
		plain[i] = byte(i)
	}
	in := SeedInput{PhysAddr: 0x4000, VirtAddr: 0x7f004000, PID: 9, LPID: 1234, Counter: 56}

	golden := map[string]string{
		"AISE":     "a73d81bbdc69dc56af8379a4a606e08f",
		"global64": "d93e67017b63805c76a3f609516e1856",
		"phys":     "0842e23d9d7cac086ecfd46cc302336d",
		"virt":     "d092020a14a7bddd10d33f61962d768b",
		"direct":   "a07999f0e2bfbe16f99593e984a449b7",
	}

	check := func(name string, got []byte) {
		t.Helper()
		want, ok := golden[name]
		if !ok {
			t.Fatalf("no golden value for %s", name)
		}
		if hex.EncodeToString(got) != want {
			t.Errorf("%s: first chunk = %s, want %s (ON-DISK FORMAT CHANGED)",
				name, hex.EncodeToString(got), want)
		}
	}

	for name, comp := range map[string]Composer{
		"AISE":     AISESeed{},
		"global64": GlobalSeed{Bits: 64},
		"phys":     PhysSeed{},
		"virt":     VirtSeed{},
	} {
		e, err := NewCounterMode(key, comp)
		if err != nil {
			t.Fatal(err)
		}
		var ct mem.Block
		e.EncryptBlock(&ct, &plain, in)
		check(name, ct[:16])
	}
	d, err := NewDirect(key)
	if err != nil {
		t.Fatal(err)
	}
	var ct mem.Block
	d.EncryptBlock(&ct, &plain)
	check("direct", ct[:16])
}

// TestGoldenFullBlockCiphertexts extends the first-chunk goldens to whole
// 64-byte blocks, captured from the build immediately before the crypto
// hot-path overhaul. All four chunks — not just chunk 0 — must survive the
// pad-into-destination and word-wise XOR rewrite bit for bit.
func TestGoldenFullBlockCiphertexts(t *testing.T) {
	key := []byte("0123456789abcdef")
	var plain mem.Block
	for i := range plain {
		plain[i] = byte(i)
	}
	in := SeedInput{PhysAddr: 0x4000, VirtAddr: 0x7f004000, PID: 9, LPID: 1234, Counter: 56}

	golden := map[string]string{
		"AISE":     "a73d81bbdc69dc56af8379a4a606e08f2d4d34bf7867a5112824bf7122e63fffaab7ea21ad8d085e70c16877200fab6184ca243ecb816dc47e3424dba078f4a6",
		"global64": "d93e67017b63805c76a3f609516e18565ee04b60185d71576f56d0d2e91d71dbdb1772bc443221880390ae2dc4a779e5eea5875a4b34f7ac0995ab6ba7c1ea3a",
		"global32": "d93e67017b63805c76a3f609516e18565ee04b60185d71576f56d0d2e91d71dbdb1772bc443221880390ae2dc4a779e5eea5875a4b34f7ac0995ab6ba7c1ea3a",
		"phys":     "0842e23d9d7cac086ecfd46cc302336dcb72c44233d539e68442bc7abba140662862c21dbd5c8c284eeff44ce322134deb52e46213f519c6a4629c5a9b816046",
		"virt":     "d092020a14a7bddd10d33f61962d768b8d4507f91165634feb62557ff3a595aac200652b22c2218e995408d38080da39d052cb7f12ffd42e4e8a5ca7036f2ac1",
	}

	for name, comp := range map[string]Composer{
		"AISE":     AISESeed{},
		"global64": GlobalSeed{Bits: 64},
		"global32": GlobalSeed{Bits: 32},
		"phys":     PhysSeed{},
		"virt":     VirtSeed{},
	} {
		e, err := NewCounterMode(key, comp)
		if err != nil {
			t.Fatal(err)
		}
		var ct mem.Block
		e.EncryptBlock(&ct, &plain, in)
		if got := hex.EncodeToString(ct[:]); got != golden[name] {
			t.Errorf("%s: full block =\n %s, want\n %s (ON-DISK FORMAT CHANGED)", name, got, golden[name])
		}
		// Decryption is the same XOR stream; the round trip must restore
		// the plaintext exactly.
		var back mem.Block
		e.DecryptBlock(&back, &ct, in)
		if back != plain {
			t.Errorf("%s: decrypt(encrypt(p)) != p", name)
		}
	}
}

// TestPadIntoMatchesPad pins the new zero-copy entry point to the original.
func TestPadIntoMatchesPad(t *testing.T) {
	e, err := NewCounterMode([]byte("0123456789abcdef"), AISESeed{})
	if err != nil {
		t.Fatal(err)
	}
	for chunk := 0; chunk < 4; chunk++ {
		in := SeedInput{PhysAddr: 0x1040, LPID: 77, Counter: 3, Chunk: chunk}
		want := e.Pad(in)
		var got [16]byte
		e.PadInto(&got, in)
		if got != want {
			t.Fatalf("chunk %d: PadInto != Pad", chunk)
		}
	}
	if e.Pads() != 8 {
		t.Errorf("pads counter = %d, want 8", e.Pads())
	}
}

// TestAISESeedBitLayout pins the documented seed format: LPID in bytes 0-7
// (big endian), minor counter in byte 8 (7 bits), block-in-page in byte 9,
// chunk id in byte 10, zero padding after. Figure 3's layout, frozen.
func TestAISESeedBitLayout(t *testing.T) {
	var a AISESeed
	s := a.Compose(SeedInput{PhysAddr: 0x1fc0, LPID: 0x0102030405060708, Counter: 0x7f, Chunk: 3})
	want := [16]byte{
		0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, // LPID
		0x7f,          // minor counter
		0x3f,          // block 63 of the page (0x1fc0/64 = 127 -> in-page 63)
		0x03,          // chunk id
		0, 0, 0, 0, 0, // padding
	}
	if s != want {
		t.Fatalf("seed layout changed:\n got %x\nwant %x", s, want)
	}
	// The counter field is masked to 7 bits.
	s2 := a.Compose(SeedInput{LPID: 1, Counter: 0xff})
	if s2[8] != 0x7f {
		t.Errorf("counter byte = %#x, want masked 0x7f", s2[8])
	}
}
