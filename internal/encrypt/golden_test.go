package encrypt

import (
	"encoding/hex"
	"testing"

	"aisebmt/internal/mem"
)

// TestGoldenCiphertexts pins the exact on-the-wire format: for a fixed key,
// plaintext and seed inputs, every scheme must keep producing the same
// ciphertext forever. A failure here means swapped-out pages and
// hibernation images written by older builds would no longer decrypt —
// treat it as a compatibility break, not a test to update casually.
func TestGoldenCiphertexts(t *testing.T) {
	key := []byte("0123456789abcdef")
	var plain mem.Block
	for i := range plain {
		plain[i] = byte(i)
	}
	in := SeedInput{PhysAddr: 0x4000, VirtAddr: 0x7f004000, PID: 9, LPID: 1234, Counter: 56}

	golden := map[string]string{
		"AISE":     "a73d81bbdc69dc56af8379a4a606e08f",
		"global64": "d93e67017b63805c76a3f609516e1856",
		"phys":     "0842e23d9d7cac086ecfd46cc302336d",
		"virt":     "d092020a14a7bddd10d33f61962d768b",
		"direct":   "a07999f0e2bfbe16f99593e984a449b7",
	}

	check := func(name string, got []byte) {
		t.Helper()
		want, ok := golden[name]
		if !ok {
			t.Fatalf("no golden value for %s", name)
		}
		if hex.EncodeToString(got) != want {
			t.Errorf("%s: first chunk = %s, want %s (ON-DISK FORMAT CHANGED)",
				name, hex.EncodeToString(got), want)
		}
	}

	for name, comp := range map[string]Composer{
		"AISE":     AISESeed{},
		"global64": GlobalSeed{Bits: 64},
		"phys":     PhysSeed{},
		"virt":     VirtSeed{},
	} {
		e, err := NewCounterMode(key, comp)
		if err != nil {
			t.Fatal(err)
		}
		var ct mem.Block
		e.EncryptBlock(&ct, &plain, in)
		check(name, ct[:16])
	}
	d, err := NewDirect(key)
	if err != nil {
		t.Fatal(err)
	}
	var ct mem.Block
	d.EncryptBlock(&ct, &plain)
	check("direct", ct[:16])
}

// TestAISESeedBitLayout pins the documented seed format: LPID in bytes 0-7
// (big endian), minor counter in byte 8 (7 bits), block-in-page in byte 9,
// chunk id in byte 10, zero padding after. Figure 3's layout, frozen.
func TestAISESeedBitLayout(t *testing.T) {
	var a AISESeed
	s := a.Compose(SeedInput{PhysAddr: 0x1fc0, LPID: 0x0102030405060708, Counter: 0x7f, Chunk: 3})
	want := [16]byte{
		0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, // LPID
		0x7f,          // minor counter
		0x3f,          // block 63 of the page (0x1fc0/64 = 127 -> in-page 63)
		0x03,          // chunk id
		0, 0, 0, 0, 0, // padding
	}
	if s != want {
		t.Fatalf("seed layout changed:\n got %x\nwant %x", s, want)
	}
	// The counter field is masked to 7 bits.
	s2 := a.Compose(SeedInput{LPID: 1, Counter: 0xff})
	if s2[8] != 0x7f {
		t.Errorf("counter byte = %#x, want masked 0x7f", s2[8])
	}
}
