package encrypt

import (
	"bytes"
	"testing"
	"testing/quick"

	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
)

var testKey = []byte("0123456789abcdef")

func ctrEngine(t *testing.T, c Composer) *CounterMode {
	t.Helper()
	e, err := NewCounterMode(testKey, c)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func fillBlock(seed byte) mem.Block {
	var b mem.Block
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestCounterModeRoundTrip(t *testing.T) {
	composers := []Composer{AISESeed{}, GlobalSeed{Bits: 64}, PhysSeed{}, VirtSeed{}}
	for _, comp := range composers {
		e := ctrEngine(t, comp)
		plain := fillBlock(3)
		in := SeedInput{PhysAddr: 0x1000, VirtAddr: 0x7f001000, PID: 42, LPID: 99, Counter: 7}
		var ct, back mem.Block
		e.EncryptBlock(&ct, &plain, in)
		if ct == plain {
			t.Errorf("%s: ciphertext equals plaintext", comp.Name())
		}
		e.DecryptBlock(&back, &ct, in)
		if back != plain {
			t.Errorf("%s: round trip failed", comp.Name())
		}
	}
}

func TestWrongSeedFailsToDecrypt(t *testing.T) {
	e := ctrEngine(t, AISESeed{})
	plain := fillBlock(9)
	in := SeedInput{PhysAddr: 0x1000, LPID: 5, Counter: 1}
	var ct, back mem.Block
	e.EncryptBlock(&ct, &plain, in)
	wrong := in
	wrong.Counter = 2
	e.DecryptBlock(&back, &ct, wrong)
	if back == plain {
		t.Error("decryption with a stale counter succeeded")
	}
}

// TestAISESeedUniqueness: seeds differ across LPIDs, counters, blocks in a
// page, and chunks (the complete uniqueness argument of §4.6).
func TestAISESeedUniqueness(t *testing.T) {
	var a AISESeed
	base := SeedInput{PhysAddr: 0x1000, LPID: 10, Counter: 3, Chunk: 1}
	variants := []SeedInput{
		{PhysAddr: 0x1000, LPID: 11, Counter: 3, Chunk: 1}, // different page (LPID)
		{PhysAddr: 0x1000, LPID: 10, Counter: 4, Chunk: 1}, // new version
		{PhysAddr: 0x1040, LPID: 10, Counter: 3, Chunk: 1}, // different block
		{PhysAddr: 0x1000, LPID: 10, Counter: 3, Chunk: 2}, // different chunk
	}
	s0 := a.Compose(base)
	for i, v := range variants {
		if a.Compose(v) == s0 {
			t.Errorf("variant %d produced a duplicate seed", i)
		}
	}
}

// TestAISESeedAddressIndependent: the physical page address does not enter
// the seed — only the block's position within its page does. Two blocks at
// the same page offset in different frames with the same LPID+counter seed
// identically, which is what makes page movement free.
func TestAISESeedAddressIndependent(t *testing.T) {
	var a AISESeed
	s1 := a.Compose(SeedInput{PhysAddr: 0x1000, LPID: 10, Counter: 3})
	s2 := a.Compose(SeedInput{PhysAddr: 0x9000, LPID: 10, Counter: 3})
	if s1 != s2 {
		t.Error("AISE seed depends on the physical frame address")
	}
}

// TestPhysSeedAddressDependent: the physical-address scheme produces a
// different pad when a page moves, forcing re-encryption on swap.
func TestPhysSeedAddressDependent(t *testing.T) {
	var p PhysSeed
	s1 := p.Compose(SeedInput{PhysAddr: 0x1000, Counter: 3})
	s2 := p.Compose(SeedInput{PhysAddr: 0x9000, Counter: 3})
	if s1 == s2 {
		t.Error("phys seed identical across frames")
	}
}

// TestVirtSeedPadReuse demonstrates the paper's §4.2 vulnerability: two
// processes using the same virtual address and counter get the same pad
// unless PID is added — and with PID, a shared physical page is encrypted
// differently by each sharer, breaking shared-memory IPC.
func TestVirtSeedPadReuse(t *testing.T) {
	var v VirtSeed
	// Without distinct PIDs the seeds collide (pad reuse).
	s1 := v.Compose(SeedInput{VirtAddr: 0x4000, PID: 1, Counter: 5})
	s2 := v.Compose(SeedInput{VirtAddr: 0x4000, PID: 1, Counter: 5})
	if s1 != s2 {
		t.Fatal("identical inputs must give identical seeds")
	}
	// With distinct PIDs the same shared page seeds differently per process.
	s3 := v.Compose(SeedInput{VirtAddr: 0x4000, PID: 2, Counter: 5})
	if s1 == s3 {
		t.Error("PID not folded into seed")
	}
}

// TestComposersDisjoint: across schemes, no two composers may emit the same
// seed for the same input (domain separation in our implementation).
func TestComposersDisjoint(t *testing.T) {
	in := SeedInput{PhysAddr: 0, VirtAddr: 0, PID: 0, LPID: 0, Counter: 0}
	seeds := map[[16]byte]string{}
	for _, c := range []Composer{AISESeed{}, GlobalSeed{Bits: 64}, PhysSeed{}, VirtSeed{}} {
		s := c.Compose(in)
		if prev, dup := seeds[s]; dup {
			t.Errorf("%s and %s share a seed for the zero input", prev, c.Name())
		}
		seeds[s] = c.Name()
	}
}

// TestPadUniquenessProperty: distinct (LPID, counter, block, chunk) tuples
// produce distinct pads under AISE.
func TestPadUniquenessProperty(t *testing.T) {
	e, err := NewCounterMode(testKey, AISESeed{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(l1, l2 uint32, c1, c2, b1, b2, k1, k2 uint8) bool {
		in1 := SeedInput{LPID: uint64(l1), Counter: uint64(c1 & 0x7f), PhysAddr: layout.Addr(b1%64) * 64, Chunk: int(k1 % 4)}
		in2 := SeedInput{LPID: uint64(l2), Counter: uint64(c2 & 0x7f), PhysAddr: layout.Addr(b2%64) * 64, Chunk: int(k2 % 4)}
		same := in1 == in2
		p1 := e.Pad(in1)
		p2 := e.Pad(in2)
		if same {
			return p1 == p2
		}
		return p1 != p2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectRoundTrip(t *testing.T) {
	d, err := NewDirect(testKey)
	if err != nil {
		t.Fatal(err)
	}
	plain := fillBlock(7)
	var ct, back mem.Block
	d.EncryptBlock(&ct, &plain)
	if ct == plain {
		t.Error("direct ciphertext equals plaintext")
	}
	d.DecryptBlock(&back, &ct)
	if back != plain {
		t.Error("direct round trip failed")
	}
	if d.Ops() != 8 {
		t.Errorf("ops = %d, want 8", d.Ops())
	}
}

// TestDirectLeaksEquality: direct mode's weakness — equal plaintext chunks
// yield equal ciphertext chunks, unlike counter mode.
func TestDirectLeaksEquality(t *testing.T) {
	d, _ := NewDirect(testKey)
	var plain mem.Block // four identical (zero) chunks
	var ct mem.Block
	d.EncryptBlock(&ct, &plain)
	if !bytes.Equal(ct[0:16], ct[16:32]) {
		t.Error("direct mode did not exhibit the ECB equality leak")
	}
	e := ctrEngine(t, AISESeed{})
	var ct2 mem.Block
	e.EncryptBlock(&ct2, &plain, SeedInput{LPID: 1, Counter: 1})
	if bytes.Equal(ct2[0:16], ct2[16:32]) {
		t.Error("counter mode leaked chunk equality")
	}
}

func TestBadKeyRejected(t *testing.T) {
	if _, err := NewCounterMode([]byte("short"), AISESeed{}); err == nil {
		t.Error("short key accepted by NewCounterMode")
	}
	if _, err := NewDirect([]byte("short")); err == nil {
		t.Error("short key accepted by NewDirect")
	}
}

func TestPadsCounted(t *testing.T) {
	e := ctrEngine(t, AISESeed{})
	var ct mem.Block
	plain := fillBlock(0)
	e.EncryptBlock(&ct, &plain, SeedInput{LPID: 1, Counter: 1})
	if e.Pads() != 4 {
		t.Errorf("pads = %d, want 4", e.Pads())
	}
}

func TestPropertiesPopulated(t *testing.T) {
	for _, c := range []Composer{AISESeed{}, GlobalSeed{Bits: 32}, GlobalSeed{Bits: 64}, PhysSeed{}, VirtSeed{}} {
		p := c.Properties()
		if p.IPCSupport == "" || p.LatencyHiding == "" || p.StorageOverhead == "" || p.OtherIssues == "" {
			t.Errorf("%s: incomplete Table 1 row %+v", c.Name(), p)
		}
		if c.Name() == "" {
			t.Error("empty composer name")
		}
	}
}
