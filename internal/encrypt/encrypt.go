// Package encrypt implements the memory encryption engines the paper
// studies: direct-mode AES (the early-scheme baseline) and counter-mode
// encryption with pluggable seed composition — global counter, physical
// address + counter, virtual address + PID + counter, and the paper's
// Address Independent Seed Encryption (AISE).
//
// Counter mode generates a cryptographic pad by enciphering a seed with the
// processor's secret key and XORs it with the 16-byte chunk (C = P ⊕
// E_K(seed)); security requires every seed to be unique across space and
// time, which is exactly the property the different composers trade off.
package encrypt

import (
	"encoding/binary"

	"aisebmt/internal/crypto/aes"
	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
)

// SeedInput carries every field any composer might fold into a seed for one
// 16-byte chunk.
type SeedInput struct {
	PhysAddr layout.Addr // physical address of the chunk's block
	VirtAddr uint64      // virtual address of the chunk's block
	PID      uint32      // owning process (virtual-address schemes)
	LPID     uint64      // logical page identifier (AISE)
	Counter  uint64      // per-block minor or global counter value
	Chunk    int         // chunk index within the block (0..3)
}

// Composer builds the 128-bit seed for a chunk. Implementations must be
// pure functions of their input.
type Composer interface {
	// Name identifies the scheme in reports (Table 1 rows).
	Name() string
	// Compose returns the chunk's seed.
	Compose(in SeedInput) [aes.BlockSize]byte
	// Properties returns the scheme's qualitative Table 1 row.
	Properties() Properties
}

// Properties is one row of the paper's Table 1 qualitative comparison.
type Properties struct {
	IPCSupport      string
	LatencyHiding   string
	StorageOverhead string
	OtherIssues     string
}

// AISESeed composes seeds from logical identifiers only:
// LPID ‖ minor counter ‖ block-in-page ‖ chunk id ‖ zero padding.
// No address component appears, decoupling security from memory management.
type AISESeed struct{}

// Name implements Composer.
func (AISESeed) Name() string { return "AISE" }

// Compose implements Composer.
func (AISESeed) Compose(in SeedInput) [aes.BlockSize]byte {
	var s [aes.BlockSize]byte
	binary.BigEndian.PutUint64(s[0:8], in.LPID)
	s[8] = uint8(in.Counter) & layout.MinorCounterMax
	s[9] = uint8(in.PhysAddr.BlockInPage()) // page offset bits (block index)
	s[10] = uint8(in.Chunk)
	return s
}

// Properties implements Composer.
func (AISESeed) Properties() Properties {
	return Properties{
		IPCSupport:      "Yes",
		LatencyHiding:   "Good",
		StorageOverhead: "Low (1.6%)",
		OtherIssues:     "None",
	}
}

// GlobalSeed composes seeds from the global counter value alone (plus chunk
// id): counter ‖ chunk ‖ zero padding. Bits records the counter width for
// reporting.
type GlobalSeed struct{ Bits int }

// Name implements Composer.
func (g GlobalSeed) Name() string {
	if g.Bits == 32 {
		return "Global Counter (32b)"
	}
	return "Global Counter (64b)"
}

// Compose implements Composer.
func (g GlobalSeed) Compose(in SeedInput) [aes.BlockSize]byte {
	var s [aes.BlockSize]byte
	binary.BigEndian.PutUint64(s[0:8], in.Counter)
	s[8] = uint8(in.Chunk)
	s[15] = 0x01 // domain tag distinguishing the scheme
	return s
}

// Properties implements Composer.
func (GlobalSeed) Properties() Properties {
	return Properties{
		IPCSupport:      "Yes",
		LatencyHiding:   "Caching: Poor, Prediction: Difficult",
		StorageOverhead: "High (64-bit: 12.5%)",
		OtherIssues:     "None",
	}
}

// PhysSeed composes seeds from physical address ‖ per-block counter ‖ chunk.
type PhysSeed struct{}

// Name implements Composer.
func (PhysSeed) Name() string { return "Counter (Phys Addr)" }

// Compose implements Composer.
func (PhysSeed) Compose(in SeedInput) [aes.BlockSize]byte {
	var s [aes.BlockSize]byte
	binary.BigEndian.PutUint64(s[0:8], uint64(in.PhysAddr.BlockAddr()))
	binary.BigEndian.PutUint64(s[8:16], in.Counter<<8|uint64(in.Chunk))
	s[15] |= 0x02
	return s
}

// Properties implements Composer.
func (PhysSeed) Properties() Properties {
	return Properties{
		IPCSupport:      "Yes",
		LatencyHiding:   "Depends on counter size",
		StorageOverhead: "Depends on counter size",
		OtherIssues:     "Re-enc on page swap",
	}
}

// VirtSeed composes seeds from virtual address ‖ process ID ‖ per-block
// counter ‖ chunk.
type VirtSeed struct{}

// Name implements Composer.
func (VirtSeed) Name() string { return "Counter (Virt Addr)" }

// Compose implements Composer.
func (VirtSeed) Compose(in SeedInput) [aes.BlockSize]byte {
	var s [aes.BlockSize]byte
	binary.BigEndian.PutUint64(s[0:8], in.VirtAddr&^uint64(layout.BlockSize-1))
	binary.BigEndian.PutUint32(s[8:12], in.PID)
	binary.BigEndian.PutUint32(s[12:16], uint32(in.Counter)<<8|uint32(in.Chunk)|0x04)
	return s
}

// Properties implements Composer.
func (VirtSeed) Properties() Properties {
	return Properties{
		IPCSupport:      "No shared-memory IPC",
		LatencyHiding:   "Depends on counter size",
		StorageOverhead: "Depends on counter size",
		OtherIssues:     "VA storage in L2",
	}
}

// CounterMode is a counter-mode encryption engine: a block cipher keyed
// with the processor secret plus a seed composer.
type CounterMode struct {
	cipher   *aes.Cipher
	composer Composer
	pads     uint64
}

// NewCounterMode builds a counter-mode engine from the processor's secret
// key and a seed composer.
func NewCounterMode(key []byte, c Composer) (*CounterMode, error) {
	ci, err := aes.New(key)
	if err != nil {
		return nil, err
	}
	return &CounterMode{cipher: ci, composer: c}, nil
}

// Composer returns the engine's seed composer.
func (c *CounterMode) Composer() Composer { return c.composer }

// Pads returns how many pad generations the engine has performed.
func (c *CounterMode) Pads() uint64 { return c.pads }

// Pad generates the cryptographic pad for one chunk.
func (c *CounterMode) Pad(in SeedInput) [aes.BlockSize]byte {
	var pad [aes.BlockSize]byte
	c.PadInto(&pad, in)
	return pad
}

// PadInto generates the cryptographic pad for one chunk straight into the
// caller's buffer, avoiding the return-value copy on the per-block path.
func (c *CounterMode) PadInto(pad *[aes.BlockSize]byte, in SeedInput) {
	seed := c.composer.Compose(in)
	c.cipher.Encrypt(pad[:], seed[:])
	c.pads++
}

// EncryptBlock encrypts (or, symmetrically, decrypts) a 64-byte block by
// XORing each 16-byte chunk with its pad. in.Chunk is set per chunk; the
// other fields apply to the whole block. The XOR runs word-at-a-time over
// the pad so the whole block costs four cipher calls and no heap traffic.
func (c *CounterMode) EncryptBlock(dst, src *mem.Block, in SeedInput) {
	var pad [aes.BlockSize]byte
	for chunk := 0; chunk < layout.ChunksPerBlock; chunk++ {
		in.Chunk = chunk
		c.PadInto(&pad, in)
		off := chunk * aes.BlockSize
		s := src[off : off+aes.BlockSize : off+aes.BlockSize]
		d := dst[off : off+aes.BlockSize : off+aes.BlockSize]
		p0 := binary.LittleEndian.Uint64(pad[0:8])
		p1 := binary.LittleEndian.Uint64(pad[8:16])
		binary.LittleEndian.PutUint64(d[0:8], binary.LittleEndian.Uint64(s[0:8])^p0)
		binary.LittleEndian.PutUint64(d[8:16], binary.LittleEndian.Uint64(s[8:16])^p1)
	}
}

// DecryptBlock is the inverse of EncryptBlock. Counter mode is an XOR
// stream, so it is the same operation; the separate name keeps call sites
// readable.
func (c *CounterMode) DecryptBlock(dst, src *mem.Block, in SeedInput) {
	c.EncryptBlock(dst, src, in)
}

// Direct is the direct-mode baseline: AES applied to each chunk of the
// block itself. Identical plaintext chunks produce identical ciphertext —
// the statistical leak that motivated counter mode — and decryption cannot
// begin until the ciphertext arrives, exposing the full AES latency.
type Direct struct {
	cipher *aes.Cipher
	ops    uint64
}

// NewDirect builds a direct-mode engine.
func NewDirect(key []byte) (*Direct, error) {
	ci, err := aes.New(key)
	if err != nil {
		return nil, err
	}
	return &Direct{cipher: ci}, nil
}

// Ops returns the number of chunk cipher operations performed.
func (d *Direct) Ops() uint64 { return d.ops }

// EncryptBlock enciphers each chunk in place (ECB over the block).
func (d *Direct) EncryptBlock(dst, src *mem.Block) {
	for chunk := 0; chunk < layout.ChunksPerBlock; chunk++ {
		off := chunk * aes.BlockSize
		d.cipher.Encrypt(dst[off:off+aes.BlockSize], src[off:off+aes.BlockSize])
		d.ops++
	}
}

// DecryptBlock deciphers each chunk in place.
func (d *Direct) DecryptBlock(dst, src *mem.Block) {
	for chunk := 0; chunk < layout.ChunksPerBlock; chunk++ {
		off := chunk * aes.BlockSize
		d.cipher.Decrypt(dst[off:off+aes.BlockSize], src[off:off+aes.BlockSize])
		d.ops++
	}
}
