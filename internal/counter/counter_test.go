package counter

import (
	"testing"
	"testing/quick"

	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
)

func testStore(t *testing.T) *SplitStore {
	t.Helper()
	m := mem.New(1 << 24)
	reg, err := layout.Layout(layout.MemoryConfig{TotalBytes: 1 << 24, MACBits: 128, Scheme: layout.AISEBMT})
	if err != nil {
		t.Fatal(err)
	}
	return NewSplitStore(m, reg, NewGPC())
}

func TestGPCMonotone(t *testing.T) {
	g := NewGPC()
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		v := g.Next()
		if v <= prev {
			t.Fatalf("GPC not monotone: %d after %d", v, prev)
		}
		prev = v
	}
}

func TestGPCPersistence(t *testing.T) {
	g := NewGPC()
	for i := 0; i < 5; i++ {
		g.Next()
	}
	img := g.Save()
	// "Reboot": a fresh GPC restored from NVRAM continues where it left off.
	g2 := NewGPC()
	g2.Restore(img)
	if v := g2.Next(); v != 6 {
		t.Errorf("post-reboot LPID = %d, want 6", v)
	}
}

func TestGPCRestoreBackwardsPanics(t *testing.T) {
	g := NewGPC()
	old := g.Save()
	for i := 0; i < 10; i++ {
		g.Next()
	}
	defer func() {
		if recover() == nil {
			t.Error("backwards restore did not panic")
		}
	}()
	g.Restore(old)
}

func TestBlockEncodeDecodeRoundTrip(t *testing.T) {
	f := func(lpid uint64, minors [layout.BlocksPerPage]uint8) bool {
		cb := Block{LPID: lpid}
		for i, v := range minors {
			cb.Minor[i] = v & layout.MinorCounterMax
		}
		got := DecodeBlock(cb.Encode())
		return got == cb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockEncodeDense(t *testing.T) {
	// All-max counters must use exactly the 56 packed bytes after the LPID.
	cb := Block{LPID: ^uint64(0)}
	for i := range cb.Minor {
		cb.Minor[i] = layout.MinorCounterMax
	}
	enc := cb.Encode()
	for i := 0; i < 8; i++ {
		if enc[i] != 0xff {
			t.Errorf("LPID byte %d = %#x", i, enc[i])
		}
	}
	for i := 8; i < 64; i++ {
		if enc[i] != 0xff {
			t.Errorf("packed byte %d = %#x, want 0xff", i, enc[i])
		}
	}
}

func TestEnsureLPIDAssignsOnce(t *testing.T) {
	s := testStore(t)
	cb1 := s.EnsureLPID(0x1000)
	cb2 := s.EnsureLPID(0x1040) // same page
	if cb1.LPID == 0 {
		t.Fatal("LPID not assigned")
	}
	if cb2.LPID != cb1.LPID {
		t.Errorf("second EnsureLPID changed LPID: %d -> %d", cb1.LPID, cb2.LPID)
	}
	cb3 := s.EnsureLPID(0x2000) // different page
	if cb3.LPID == cb1.LPID {
		t.Error("distinct pages share an LPID")
	}
}

func TestIncrement(t *testing.T) {
	s := testStore(t)
	cb, ov := s.Increment(0x1000)
	if ov {
		t.Fatal("first increment overflowed")
	}
	if cb.Minor[0] != 1 {
		t.Errorf("minor[0] = %d, want 1", cb.Minor[0])
	}
	// A different block in the same page has an independent counter.
	cb, _ = s.Increment(0x1040)
	if cb.Minor[1] != 1 || cb.Minor[0] != 1 {
		t.Errorf("minor state = %v", cb.Minor[:2])
	}
}

func TestMinorOverflowAssignsFreshLPID(t *testing.T) {
	s := testStore(t)
	first := s.EnsureLPID(0x1000)
	// Drive minor counter to max.
	var ov bool
	for i := 0; i < layout.MinorCounterMax; i++ {
		_, ov = s.Increment(0x1000)
		if ov {
			t.Fatalf("premature overflow at %d", i)
		}
	}
	cb, ov := s.Increment(0x1000)
	if !ov {
		t.Fatal("expected overflow")
	}
	if cb.LPID == first.LPID {
		t.Error("overflow did not assign a fresh LPID")
	}
	if cb.Minor[0] != 1 {
		t.Errorf("post-overflow minor = %d, want 1", cb.Minor[0])
	}
	for i := 1; i < layout.BlocksPerPage; i++ {
		if cb.Minor[i] != 0 {
			t.Errorf("minor[%d] = %d after page reset, want 0", i, cb.Minor[i])
		}
	}
}

// TestLPIDUniquenessProperty: LPIDs assigned to different pages, and
// re-assigned after overflow, never collide (the seed-uniqueness invariant).
func TestLPIDUniquenessProperty(t *testing.T) {
	s := testStore(t)
	seen := map[uint64]bool{}
	record := func(lpid uint64) {
		if seen[lpid] {
			t.Fatalf("LPID %d reused", lpid)
		}
		seen[lpid] = true
	}
	for page := 0; page < 20; page++ {
		cb := s.EnsureLPID(layout.Addr(page * layout.PageSize))
		record(cb.LPID)
	}
	// Force three overflows on page 0.
	for k := 0; k < 3; k++ {
		for {
			cb, ov := s.Increment(0)
			if ov {
				record(cb.LPID)
				break
			}
		}
	}
}

func TestGlobalStoreWidthValidation(t *testing.T) {
	m := mem.New(1 << 20)
	if _, err := NewGlobalStore(m, 0, 48); err == nil {
		t.Error("48-bit global counter accepted")
	}
}

func TestGlobalStoreNextAndWrap(t *testing.T) {
	m := mem.New(1 << 20)
	g, err := NewGlobalStore(m, 1<<16, 32)
	if err != nil {
		t.Fatal(err)
	}
	v, w := g.Next()
	if v != 1 || w {
		t.Errorf("first Next = %d, %v", v, w)
	}
	// Jump near the wrap point.
	g.value = 1<<32 - 2
	if v, w = g.Next(); w || v != 1<<32-1 {
		t.Errorf("pre-wrap Next = %d, %v", v, w)
	}
	if v, w = g.Next(); !w || v != 1 {
		t.Errorf("wrap Next = %d, %v", v, w)
	}
	if g.Wraps() != 1 {
		t.Errorf("wraps = %d", g.Wraps())
	}
}

func TestGlobalStoredCounters(t *testing.T) {
	m := mem.New(1 << 20)
	for _, bits := range []int{32, 64} {
		g, err := NewGlobalStore(m, 1<<16, bits)
		if err != nil {
			t.Fatal(err)
		}
		g.SetStored(0x0, 0x1234)
		g.SetStored(0x40, 0xabcd)
		if got := g.Stored(0x0); got != 0x1234 {
			t.Errorf("%d-bit stored[0] = %#x", bits, got)
		}
		if got := g.Stored(0x40); got != 0xabcd {
			t.Errorf("%d-bit stored[1] = %#x", bits, got)
		}
		// Same block, different offset: one counter per block.
		if got := g.Stored(0x3f); got != 0x1234 {
			t.Errorf("%d-bit stored same-block = %#x", bits, got)
		}
	}
}

func TestPerBlockStore(t *testing.T) {
	m := mem.New(1 << 20)
	p, err := NewPerBlockStore(m, 1<<16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if v, ov := p.Increment(0x80); v != 1 || ov {
		t.Errorf("first increment = %d, %v", v, ov)
	}
	if v, ov := p.Increment(0x80); v != 2 || ov {
		t.Errorf("second increment = %d, %v", v, ov)
	}
	if p.Get(0xc0) != 0 {
		t.Error("independent block counter affected")
	}
}

// TestBumpMatchesIncrement: Bump's post-state must equal what Increment
// would produce for any access sequence (property).
func TestBumpMatchesIncrement(t *testing.T) {
	f := func(offsets []uint16) bool {
		s1 := freshStore()
		s2 := freshStore()
		for _, off := range offsets {
			a := layout.Addr(off%2048) * layout.BlockSize
			cb1, ov1 := s1.Increment(a)
			_, cb2, ov2 := s2.Bump(a)
			if cb1 != cb2 || ov1 != ov2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func freshStore() *SplitStore {
	m := mem.New(1 << 22)
	reg := layout.Regions{CtrBase: 1 << 21, CtrBytes: 1 << 16}
	return NewSplitStore(m, reg, NewGPC())
}

func TestGPCValue(t *testing.T) {
	g := NewGPC()
	if g.Value() != 1 {
		t.Errorf("fresh Value = %d", g.Value())
	}
	g.Next()
	if g.Value() != 2 {
		t.Errorf("Value after Next = %d", g.Value())
	}
}

func TestBumpOverflowPath(t *testing.T) {
	s := freshStore()
	for i := 0; i < layout.MinorCounterMax; i++ {
		if _, _, ov := s.Bump(0); ov {
			t.Fatalf("premature overflow at %d", i)
		}
	}
	old, cb, ov := s.Bump(0)
	if !ov {
		t.Fatal("expected overflow")
	}
	if old.Minor[0] != layout.MinorCounterMax {
		t.Errorf("old minor = %d, want max", old.Minor[0])
	}
	if cb.LPID == old.LPID || cb.Minor[0] != 1 {
		t.Errorf("post-overflow state: %+v", cb)
	}
}

func TestGlobalJump(t *testing.T) {
	m := mem.New(1 << 20)
	g, _ := NewGlobalStore(m, 1<<16, 64)
	g.Jump(1000)
	if v, _ := g.Next(); v != 1001 {
		t.Errorf("Next after Jump = %d", v)
	}
	g.Jump(5) // never backwards
	if v, _ := g.Next(); v != 1002 {
		t.Errorf("Jump moved the counter backwards: %d", v)
	}
	if g.StoredBytesPerBlock() != 8 {
		t.Errorf("StoredBytesPerBlock = %d", g.StoredBytesPerBlock())
	}
}

func TestGlobal64Wrap(t *testing.T) {
	m := mem.New(1 << 20)
	g, _ := NewGlobalStore(m, 1<<16, 64)
	g.Jump(^uint64(0) - 1)
	if v, w := g.Next(); w || v != ^uint64(0) {
		t.Errorf("pre-wrap: %d, %v", v, w)
	}
	if v, w := g.Next(); !w || v != 1 {
		t.Errorf("64-bit wrap: %d, %v", v, w)
	}
}

func TestPerBlockValidationAndOverflow(t *testing.T) {
	m := mem.New(1 << 20)
	if _, err := NewPerBlockStore(m, 0, 48); err == nil {
		t.Error("bad width accepted")
	}
	p, _ := NewPerBlockStore(m, 1<<16, 64)
	if _, ov := p.Increment(0); ov {
		t.Error("64-bit per-block overflowed immediately")
	}
	// Force a 32-bit overflow by setting the stored value near the top.
	p32, _ := NewPerBlockStore(m, 1<<17, 32)
	p32.g.SetStored(0, 1<<32-1)
	if v, ov := p32.Increment(0); !ov || v != 1 {
		t.Errorf("32-bit overflow: %d, %v", v, ov)
	}
}
