// Package counter implements the encryption-counter organizations the paper
// compares:
//
//   - the split-counter organization used by AISE, in which each 4KB page
//     owns one 64-byte counter block holding a 64-bit Logical Page
//     IDentifier (LPID) and 64 seven-bit minor counters, with LPIDs drawn
//     from a non-volatile on-chip Global Page Counter (GPC);
//   - the monolithic global-counter organization (32- or 64-bit), which
//     stores the counter value used for each block's most recent encryption
//     alongside the data and must re-encrypt the entire memory when the
//     counter wraps;
//   - plain per-block counters, the building block of the address-based
//     baseline schemes.
//
// All counter state lives in the untrusted memory's counter region, so the
// integrity engines can protect it and attackers can tamper with it.
package counter

import (
	"encoding/binary"
	"fmt"

	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
)

// GPC is the Global Page Counter: a 64-bit monotone counter held in
// non-volatile on-chip storage. Values it hands out become LPIDs and are
// never reused, even across reboots — Save and Restore model the
// non-volatile persistence.
type GPC struct {
	next uint64
}

// NewGPC returns a GPC starting at 1 (LPID 0 is reserved to mean
// "never assigned").
func NewGPC() *GPC { return &GPC{next: 1} }

// Next returns a fresh, never-before-issued LPID.
func (g *GPC) Next() uint64 {
	v := g.next
	g.next++
	return v
}

// Value returns the next value without consuming it.
func (g *GPC) Value() uint64 { return g.next }

// Save serializes the GPC to its non-volatile image.
func (g *GPC) Save() [8]byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], g.next)
	return b
}

// Restore loads the GPC from a non-volatile image, modeling a reboot. A
// restored GPC never moves backwards: restoring an older image than the
// current state is a simulation error and panics, because it would violate
// the paper's seed-uniqueness guarantee.
func (g *GPC) Restore(img [8]byte) {
	v := binary.BigEndian.Uint64(img[:])
	if v < g.next && g.next != 1 {
		panic("counter: GPC restore would move backwards; non-volatility violated")
	}
	g.next = v
}

// Block is the split-counter organization's per-page counter block: one
// LPID plus a 7-bit minor counter for each of the page's 64 data blocks.
// It serializes to exactly one 64-byte memory block (8 LPID bytes followed
// by 64 counters packed 7 bits each into 56 bytes).
type Block struct {
	LPID  uint64
	Minor [layout.BlocksPerPage]uint8
}

// Encode packs the counter block into a 64-byte memory block.
func (cb *Block) Encode() mem.Block {
	var out mem.Block
	binary.BigEndian.PutUint64(out[:8], cb.LPID)
	// Pack 64 7-bit counters into bits [64, 512) of the block.
	bitPos := 64
	for _, c := range cb.Minor {
		v := uint16(c & layout.MinorCounterMax)
		for b := 6; b >= 0; b-- {
			if v&(1<<uint(b)) != 0 {
				out[bitPos/8] |= 1 << uint(7-bitPos%8)
			}
			bitPos++
		}
	}
	return out
}

// DecodeBlock unpacks a 64-byte memory block into a counter block.
func DecodeBlock(in mem.Block) Block {
	var cb Block
	cb.LPID = binary.BigEndian.Uint64(in[:8])
	bitPos := 64
	for i := range cb.Minor {
		var v uint8
		for b := 0; b < 7; b++ {
			v <<= 1
			if in[bitPos/8]&(1<<uint(7-bitPos%8)) != 0 {
				v |= 1
			}
			bitPos++
		}
		cb.Minor[i] = v
	}
	return cb
}

// SplitStore manages AISE split-counter blocks in the memory's counter
// region: the i-th data page's counters live at the i-th 64-byte block of
// the region (directly indexable, as §4.3 requires).
type SplitStore struct {
	Mem *mem.Memory
	Reg layout.Regions
	GPC *GPC
}

// NewSplitStore creates a split-counter store over the memory's counter
// region.
func NewSplitStore(m *mem.Memory, reg layout.Regions, gpc *GPC) *SplitStore {
	return &SplitStore{Mem: m, Reg: reg, GPC: gpc}
}

// BlockAddr returns the counter-block address for the page containing the
// data address.
func (s *SplitStore) BlockAddr(data layout.Addr) layout.Addr {
	return s.Reg.CounterBlockAddr(data)
}

// Load fetches and decodes the counter block covering the data address.
func (s *SplitStore) Load(data layout.Addr) Block {
	var raw mem.Block
	s.Mem.ReadBlock(s.BlockAddr(data), &raw)
	return DecodeBlock(raw)
}

// Store encodes and writes the counter block covering the data address.
func (s *SplitStore) Store(data layout.Addr, cb Block) {
	raw := cb.Encode()
	s.Mem.WriteBlock(s.BlockAddr(data), &raw)
}

// EnsureLPID assigns a fresh LPID to the page containing data if it has
// none yet (first allocation), returning the page's counter block.
func (s *SplitStore) EnsureLPID(data layout.Addr) Block {
	cb := s.Load(data)
	if cb.LPID == 0 {
		cb.LPID = s.GPC.Next()
		s.Store(data, cb)
	}
	return cb
}

// Increment bumps the minor counter of the data block containing data,
// returning the updated counter block and whether the minor counter
// overflowed. On overflow the counter resets with a fresh LPID and all
// other minor counters cleared; the caller must re-encrypt the page (§4.3).
func (s *SplitStore) Increment(data layout.Addr) (cb Block, overflowed bool) {
	cb = s.EnsureLPID(data)
	idx := data.BlockInPage()
	if cb.Minor[idx] == layout.MinorCounterMax {
		cb = Block{LPID: s.GPC.Next()}
		cb.Minor[idx] = 1
		s.Store(data, cb)
		return cb, true
	}
	cb.Minor[idx]++
	s.Store(data, cb)
	return cb, false
}

// Bump is Increment with visibility into the pre-increment state: it
// returns the counter block before and after the update. The secure memory
// controller needs the old block to decrypt a page before re-encrypting it
// when a minor counter overflows.
func (s *SplitStore) Bump(data layout.Addr) (old, new Block, overflowed bool) {
	old = s.EnsureLPID(data)
	idx := data.BlockInPage()
	if old.Minor[idx] == layout.MinorCounterMax {
		new = Block{LPID: s.GPC.Next()}
		new.Minor[idx] = 1
		s.Store(data, new)
		return old, new, true
	}
	new = old
	new.Minor[idx]++
	s.Store(data, new)
	return old, new, false
}

// GlobalStore is the monolithic global-counter organization: one on-chip
// counter incremented on every writeback, with the value used for each
// block's latest encryption stored per block in the counter region.
type GlobalStore struct {
	Mem  *mem.Memory
	Base layout.Addr
	Bits int // 32 or 64

	value uint64
	wraps uint64
}

// NewGlobalStore creates a global counter store of the given width whose
// per-block stored counters begin at base.
func NewGlobalStore(m *mem.Memory, base layout.Addr, bits int) (*GlobalStore, error) {
	if bits != 32 && bits != 64 {
		return nil, fmt.Errorf("counter: global counter width must be 32 or 64, got %d", bits)
	}
	return &GlobalStore{Mem: m, Base: base, Bits: bits}, nil
}

// Next increments the global counter and returns the value to use for the
// current writeback, along with whether the counter wrapped. A wrap forces
// a key change and whole-memory re-encryption (§4.1).
func (g *GlobalStore) Next() (v uint64, wrapped bool) {
	g.value++
	if g.Bits == 32 && g.value >= 1<<32 {
		g.value = 1
		g.wraps++
		return g.value, true
	}
	if g.Bits == 64 && g.value == 0 {
		g.value = 1
		g.wraps++
		return g.value, true
	}
	return g.value, false
}

// Wraps returns how many times the counter has wrapped.
func (g *GlobalStore) Wraps() uint64 { return g.wraps }

// Jump advances the global counter to the given value, simulating a long
// period of uptime. It never moves the counter backwards.
func (g *GlobalStore) Jump(v uint64) {
	if v > g.value {
		g.value = v
	}
}

// slotAddr returns where the stored counter for a data block lives.
func (g *GlobalStore) slotAddr(data layout.Addr) layout.Addr {
	blk := uint64(data) / layout.BlockSize
	return g.Base + layout.Addr(blk*uint64(g.Bits/8))
}

// StoredBytesPerBlock returns the per-data-block counter storage in bytes.
func (g *GlobalStore) StoredBytesPerBlock() int { return g.Bits / 8 }

// SetStored records the counter value used to encrypt the data block.
func (g *GlobalStore) SetStored(data layout.Addr, v uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	g.Mem.Write(g.slotAddr(data), buf[8-g.Bits/8:])
}

// Stored returns the counter value recorded for the data block.
func (g *GlobalStore) Stored(data layout.Addr) uint64 {
	var full [8]byte
	g.Mem.Read(g.slotAddr(data), full[8-g.Bits/8:])
	return binary.BigEndian.Uint64(full[:])
}

// PerBlockStore keeps an independent monotone counter per data block, the
// organization used by the address-based baseline seeds. Counters are
// stored in the counter region like global counters.
type PerBlockStore struct {
	g GlobalStore // reuse slot layout; value/wraps unused
}

// NewPerBlockStore creates a per-block counter store of the given width.
func NewPerBlockStore(m *mem.Memory, base layout.Addr, bits int) (*PerBlockStore, error) {
	gs, err := NewGlobalStore(m, base, bits)
	if err != nil {
		return nil, err
	}
	return &PerBlockStore{g: *gs}, nil
}

// Get returns the data block's current counter.
func (p *PerBlockStore) Get(data layout.Addr) uint64 { return p.g.Stored(data) }

// Increment bumps the data block's counter, reporting overflow (which
// forces re-encryption of the block's page under address-based schemes).
func (p *PerBlockStore) Increment(data layout.Addr) (v uint64, overflowed bool) {
	v = p.g.Stored(data) + 1
	if p.g.Bits == 32 && v >= 1<<32 {
		v = 1
		overflowed = true
	}
	if p.g.Bits == 64 && v == 0 {
		v = 1
		overflowed = true
	}
	p.g.SetStored(data, v)
	return v, overflowed
}
