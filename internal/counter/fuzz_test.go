package counter

import (
	"testing"

	"aisebmt/internal/mem"
)

// FuzzDecodeEncode: decoding an arbitrary 64-byte block and re-encoding the
// result must be a fixed point (Decode∘Encode∘Decode = Decode), and minor
// counters must always fit in 7 bits.
func FuzzDecodeEncode(f *testing.F) {
	f.Add(make([]byte, 64))
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i*37 + 1)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		var blk mem.Block
		copy(blk[:], raw)
		cb := DecodeBlock(blk)
		for i, m := range cb.Minor {
			if m > 0x7f {
				t.Fatalf("minor[%d] = %#x exceeds 7 bits", i, m)
			}
		}
		again := DecodeBlock(cb.Encode())
		if again != cb {
			t.Fatalf("decode/encode not a fixed point: %+v vs %+v", cb, again)
		}
	})
}
