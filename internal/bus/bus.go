// Package bus models the off-chip memory bus shared by data fetches,
// writebacks, counter traffic, MAC fetches and Merkle tree node transfers.
//
// Integrity verification's extra traffic shows up here: the paper's Figure
// 10(b) reports average bus utilization rising from 14% (unprotected) to 24%
// (standard Merkle tree) and only 16% with Bonsai Merkle Trees.
package bus

// Bus is a single-channel bus with a fixed transfer rate. Time is the
// caller's cycle clock; the bus tracks when it next becomes free and how
// many cycles it has spent busy.
type Bus struct {
	bytesPerCycle int
	freeAt        uint64
	busyCycles    uint64
	bytesMoved    uint64
	transfers     uint64
}

// New creates a bus that moves bytesPerCycle bytes per processor cycle.
// The paper's 2GHz processor with contemporary DDR2 corresponds to roughly
// 8 bytes per processor cycle of peak bandwidth.
func New(bytesPerCycle int) *Bus {
	if bytesPerCycle <= 0 {
		panic("bus: bytesPerCycle must be positive")
	}
	return &Bus{bytesPerCycle: bytesPerCycle}
}

// Transfer schedules a transfer of n bytes requested at cycle now. It
// returns the cycle at which the transfer completes, accounting for queuing
// behind earlier transfers.
func (b *Bus) Transfer(now uint64, n int) uint64 {
	if n <= 0 {
		return now
	}
	start := now
	if b.freeAt > start {
		start = b.freeAt
	}
	cycles := uint64((n + b.bytesPerCycle - 1) / b.bytesPerCycle)
	b.freeAt = start + cycles
	b.busyCycles += cycles
	b.bytesMoved += uint64(n)
	b.transfers++
	return b.freeAt
}

// QueueDelay returns how long a request issued at cycle now would wait
// before its transfer begins, without scheduling anything.
func (b *Bus) QueueDelay(now uint64) uint64 {
	if b.freeAt > now {
		return b.freeAt - now
	}
	return 0
}

// BusyCycles returns the total cycles the bus has spent transferring.
func (b *Bus) BusyCycles() uint64 { return b.busyCycles }

// BytesMoved returns the total bytes transferred.
func (b *Bus) BytesMoved() uint64 { return b.bytesMoved }

// Transfers returns the number of transfer operations.
func (b *Bus) Transfers() uint64 { return b.transfers }

// Utilization returns busy cycles as a fraction of elapsed cycles.
func (b *Bus) Utilization(elapsed uint64) float64 {
	if elapsed == 0 {
		return 0
	}
	u := float64(b.busyCycles) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}
