package bus

import (
	"testing"
	"testing/quick"
)

func TestTransferTiming(t *testing.T) {
	b := New(8)
	done := b.Transfer(100, 64)
	if done != 108 {
		t.Errorf("64B at 8B/cyc from 100: done=%d, want 108", done)
	}
	// Queued behind the first transfer.
	done2 := b.Transfer(100, 64)
	if done2 != 116 {
		t.Errorf("queued transfer done=%d, want 116", done2)
	}
	if b.BusyCycles() != 16 {
		t.Errorf("busy=%d, want 16", b.BusyCycles())
	}
	if b.BytesMoved() != 128 || b.Transfers() != 2 {
		t.Errorf("moved=%d transfers=%d", b.BytesMoved(), b.Transfers())
	}
}

func TestPartialBlockRoundsUp(t *testing.T) {
	b := New(8)
	if done := b.Transfer(0, 12); done != 2 {
		t.Errorf("12B at 8B/cyc: done=%d, want 2", done)
	}
}

func TestIdleGap(t *testing.T) {
	b := New(8)
	b.Transfer(0, 64) // busy 0..8
	done := b.Transfer(1000, 64)
	if done != 1008 {
		t.Errorf("post-idle transfer done=%d, want 1008", done)
	}
	if got := b.Utilization(1008); got < 0.015 || got > 0.017 {
		t.Errorf("utilization = %.4f, want ~16/1008", got)
	}
}

func TestQueueDelay(t *testing.T) {
	b := New(8)
	b.Transfer(0, 640) // busy until cycle 80
	if d := b.QueueDelay(50); d != 30 {
		t.Errorf("QueueDelay(50) = %d, want 30", d)
	}
	if d := b.QueueDelay(200); d != 0 {
		t.Errorf("QueueDelay(200) = %d, want 0", d)
	}
}

func TestZeroTransfer(t *testing.T) {
	b := New(8)
	if done := b.Transfer(42, 0); done != 42 {
		t.Errorf("zero-byte transfer done=%d, want 42", done)
	}
	if b.Transfers() != 0 {
		t.Error("zero-byte transfer counted")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

// Property: completion is monotone non-decreasing for monotone request times.
func TestMonotoneCompletion(t *testing.T) {
	f := func(sizes []uint8) bool {
		b := New(8)
		var now, last uint64
		for _, s := range sizes {
			now += uint64(s % 16)
			done := b.Transfer(now, int(s)+1)
			if done < last || done < now {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationClamped(t *testing.T) {
	b := New(1)
	b.Transfer(0, 1000)
	if u := b.Utilization(10); u != 1 {
		t.Errorf("utilization = %f, want clamped to 1", u)
	}
	if u := b.Utilization(0); u != 0 {
		t.Errorf("utilization at 0 elapsed = %f", u)
	}
}
