package obs

import "io"

// CommitStages carries the persist layer's per-commit stage timings from
// store.Commit back to the shard worker that invoked it. Commit runs
// synchronously on the worker goroutine (group commit rides the batch),
// so the slot is plain memory: the persist layer writes it and the same
// goroutine reads it immediately after Commit returns. The background
// batch flusher never touches these slots.
type CommitStages struct {
	AppendNs int64
	FsyncNs  int64
	Bytes    int64
}

// Service bundles the pieces each layer needs: the shared Registry for
// instruments, one trace Ring per shard, and the per-shard commit-stage
// mailbox between persist and shard. A nil *Service disables
// observability everywhere — every integration point checks.
type Service struct {
	Reg    *Registry
	rings  []*Ring
	commit []CommitStages
}

// DefaultRingSize is the per-shard trace ring capacity (records).
const DefaultRingSize = 1024

// NewService builds a Service for the given shard count.
func NewService(shards, ringSize int) *Service {
	if shards < 1 {
		shards = 1
	}
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	s := &Service{
		Reg:    NewRegistry(),
		rings:  make([]*Ring, shards),
		commit: make([]CommitStages, shards),
	}
	for i := range s.rings {
		s.rings[i] = NewRing(ringSize)
	}
	return s
}

// Shards returns the number of shards the service was built for.
func (s *Service) Shards() int { return len(s.rings) }

// Ring returns shard i's trace ring (nil if out of range).
func (s *Service) Ring(i int) *Ring {
	if i < 0 || i >= len(s.rings) {
		return nil
	}
	return s.rings[i]
}

// SetCommitStages records the persist stage timings for shard i. Called
// by the persist layer from within Commit, on the shard worker's
// goroutine.
func (s *Service) SetCommitStages(i int, cs CommitStages) {
	if i >= 0 && i < len(s.commit) {
		s.commit[i] = cs
	}
}

// TakeCommitStages returns and clears shard i's commit stage slot.
// Called by the shard worker right after the commit hook returns.
func (s *Service) TakeCommitStages(i int) CommitStages {
	if i < 0 || i >= len(s.commit) {
		return CommitStages{}
	}
	cs := s.commit[i]
	s.commit[i] = CommitStages{}
	return cs
}

// SnapshotTraces appends the most recent records from every shard ring
// to dst, newest first per shard.
func (s *Service) SnapshotTraces(dst []Record) []Record {
	for _, r := range s.rings {
		dst = r.Snapshot(dst)
	}
	return dst
}

// WritePrometheus renders the registry's exposition.
func (s *Service) WritePrometheus(w io.Writer) error {
	return s.Reg.WritePrometheus(w)
}
