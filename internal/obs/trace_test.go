package obs

import (
	"sync"
	"testing"
)

func TestRingPublishSnapshot(t *testing.T) {
	r := NewRing(4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	for i := 1; i <= 3; i++ {
		r.Publish(&Record{TraceID: uint64(i), Shard: 2, Op: 1, Status: 0, QueueNs: int64(i * 10)})
	}
	recs := r.Snapshot(nil)
	if len(recs) != 3 {
		t.Fatalf("snapshot has %d records, want 3", len(recs))
	}
	// Newest first.
	if recs[0].TraceID != 3 || recs[2].TraceID != 1 {
		t.Errorf("order wrong: %+v", recs)
	}
	if recs[0].Shard != 2 || recs[0].Op != 1 || recs[0].QueueNs != 30 {
		t.Errorf("fields wrong: %+v", recs[0])
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 10; i++ {
		r.Publish(&Record{TraceID: uint64(i)})
	}
	recs := r.Snapshot(nil)
	if len(recs) != 4 {
		t.Fatalf("snapshot has %d records, want 4", len(recs))
	}
	want := uint64(10)
	for _, rec := range recs {
		if rec.TraceID != want {
			t.Errorf("TraceID = %d, want %d", rec.TraceID, want)
		}
		want--
	}
}

func TestRingSizeRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {1024, 1024}} {
		if got := NewRing(tc.in).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestRingConcurrency runs one producer against several snapshot readers
// under -race: readers must only ever observe fully committed records.
func TestRingConcurrency(t *testing.T) {
	r := NewRing(64)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= 50000; i++ {
			// Every field carries the same value so a torn read is
			// detectable as a mismatch.
			r.Publish(&Record{TraceID: i, StartNs: int64(i), QueueNs: int64(i), ExecNs: int64(i)})
		}
		close(done)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]Record, 0, 64)
			for {
				select {
				case <-done:
					return
				default:
				}
				buf = r.Snapshot(buf[:0])
				for _, rec := range buf {
					if int64(rec.TraceID) != rec.StartNs || rec.StartNs != rec.QueueNs || rec.QueueNs != rec.ExecNs {
						t.Errorf("torn record escaped: %+v", rec)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestServiceCommitStages(t *testing.T) {
	s := NewService(2, 8)
	if s.Shards() != 2 {
		t.Fatalf("Shards = %d", s.Shards())
	}
	s.SetCommitStages(1, CommitStages{AppendNs: 5, FsyncNs: 7, Bytes: 9})
	cs := s.TakeCommitStages(1)
	if cs.AppendNs != 5 || cs.FsyncNs != 7 || cs.Bytes != 9 {
		t.Errorf("stages = %+v", cs)
	}
	if cs = s.TakeCommitStages(1); cs != (CommitStages{}) {
		t.Errorf("slot not cleared: %+v", cs)
	}
	// Out-of-range indices are ignored, not panics.
	s.SetCommitStages(99, CommitStages{AppendNs: 1})
	if got := s.TakeCommitStages(99); got != (CommitStages{}) {
		t.Errorf("oob take = %+v", got)
	}
	s.Ring(0).Publish(&Record{TraceID: 11})
	s.Ring(1).Publish(&Record{TraceID: 22})
	recs := s.SnapshotTraces(nil)
	if len(recs) != 2 {
		t.Fatalf("SnapshotTraces has %d records, want 2", len(recs))
	}
}
