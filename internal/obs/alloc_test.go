package obs

import "testing"

// TestRecordPathsZeroAlloc pins the subsystem's contract: recording a
// counter, gauge, histogram sample or trace record on the request hot
// path performs zero heap allocations.
func TestRecordPathsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("secmemd_alloc_total", "A.")
	g := r.Gauge("secmemd_alloc_depth", "A.")
	h := r.Histogram("secmemd_alloc_us", "A.", LatencyBucketsUS())
	ring := NewRing(256)
	rec := Record{TraceID: 1, Shard: 3, Op: 2, QueueNs: 100, ExecNs: 200}
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter", func() { c.Inc(); c.Add(3) }},
		{"gauge", func() { g.Set(4); g.Add(-1) }},
		{"histogram", func() { h.Observe(17); h.Observe(1 << 30) }},
		{"ring publish", func() { ring.Publish(&rec) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestCommitStagesZeroAlloc covers the persist→shard stage handoff.
func TestCommitStagesZeroAlloc(t *testing.T) {
	s := NewService(4, 16)
	allocs := testing.AllocsPerRun(200, func() {
		s.SetCommitStages(2, CommitStages{AppendNs: 1, FsyncNs: 2, Bytes: 3})
		_ = s.TakeCommitStages(2)
	})
	if allocs != 0 {
		t.Errorf("commit stage handoff: %.1f allocs/op, want 0", allocs)
	}
}
