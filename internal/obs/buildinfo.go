package obs

import "runtime/debug"

// BuildInfo identifies the running binary for scrapes and probes.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision"`
	Modified  bool   `json:"dirty,omitempty"`
}

// ReadBuildInfo extracts the module version, Go toolchain version and VCS
// revision from the binary's embedded build info. Fields degrade to
// "unknown" when the binary was built without module or VCS stamping
// (go test binaries, for instance).
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{Version: "unknown", GoVersion: "unknown", Revision: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.GoVersion = info.GoVersion
	if info.Main.Version != "" {
		bi.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
}

// RegisterBuildInfo publishes the secmemd_build_info gauge (constant 1,
// identity in the labels — the Prometheus convention for build metadata).
func RegisterBuildInfo(reg *Registry, bi BuildInfo) {
	reg.GaugeFunc("secmemd_build_info",
		"Build metadata of the running binary (value is always 1).",
		func() float64 { return 1 },
		"version", bi.Version, "goversion", bi.GoVersion, "revision", bi.Revision)
}
