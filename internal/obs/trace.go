package obs

import (
	"math/bits"
	"sync/atomic"
)

// Trace stage semantics: a traced request carries a nonzero TraceID from
// the wire codec through the shard worker into the persist commit. The
// worker assembles one Record per traced request and publishes it into
// its shard's Ring. Stages are durations in nanoseconds:
//
//	QueueNs    enqueue → worker picked the batch up (queue wait)
//	CoalesceNs batch drain + write coalescing overhead, shared by the batch
//	AppendNs   WAL append inside the group commit (0 when no persist layer)
//	FsyncNs    WAL fsync inside the group commit (0 under -fsync batch/off)
//	ExecNs     crypto execution: AISE pad/MAC work in core
//	TreeNs     the batch's coalesced Merkle tree update pass, shared by the
//	           batch (0 for batches that deferred no tree updates)
//
// Record is fixed-size and flat so ring writes are plain stores — no
// pointers, nothing for the GC to chase.
type Record struct {
	TraceID uint64 `json:"trace_id"`
	Shard   uint32 `json:"shard"`
	Op      uint8  `json:"op"`
	Status  uint8  `json:"status"`
	StartNs int64  `json:"start_unix_ns"`

	QueueNs    int64 `json:"queue_ns"`
	CoalesceNs int64 `json:"coalesce_ns"`
	AppendNs   int64 `json:"append_ns"`
	FsyncNs    int64 `json:"fsync_ns"`
	ExecNs     int64 `json:"exec_ns"`
	TreeNs     int64 `json:"tree_ns"`
}

// slot is one ring entry. Every field is atomic so concurrent snapshot
// readers are race-detector-clean; seq doubles as the commit word: a
// writer zeroes it, stores the payload, then stores the claimed
// index+1. A reader that sees seq change across its field reads discards
// the torn slot.
type slot struct {
	seq atomic.Uint64 // 0 = being written; else claim index + 1

	trace atomic.Uint64
	meta  atomic.Uint64 // shard<<16 | op<<8 | status
	start atomic.Int64

	queue    atomic.Int64
	coalesce atomic.Int64
	app      atomic.Int64
	fsync    atomic.Int64
	exec     atomic.Int64
	tree     atomic.Int64
}

// Ring is a lock-free, fixed-capacity, overwrite-oldest trace buffer.
// There is one Ring per shard and exactly one producer (the shard worker
// goroutine); Publish is therefore wait-free and zero-alloc. Any number
// of readers may Snapshot concurrently.
type Ring struct {
	mask  uint64
	pos   atomic.Uint64 // next claim index (monotone)
	slots []slot
}

// NewRing returns a ring holding at least size records (rounded up to a
// power of two, minimum 2).
func NewRing(size int) *Ring {
	if size < 2 {
		size = 2
	}
	n := 1 << bits.Len(uint(size-1))
	return &Ring{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Publish stores rec, overwriting the oldest entry when full.
func (r *Ring) Publish(rec *Record) {
	idx := r.pos.Add(1) - 1
	s := &r.slots[idx&r.mask]
	s.seq.Store(0)
	s.trace.Store(rec.TraceID)
	s.meta.Store(uint64(rec.Shard)<<16 | uint64(rec.Op)<<8 | uint64(rec.Status))
	s.start.Store(rec.StartNs)
	s.queue.Store(rec.QueueNs)
	s.coalesce.Store(rec.CoalesceNs)
	s.app.Store(rec.AppendNs)
	s.fsync.Store(rec.FsyncNs)
	s.exec.Store(rec.ExecNs)
	s.tree.Store(rec.TreeNs)
	s.seq.Store(idx + 1)
}

// Snapshot appends up to Cap() most recent records to dst, newest first,
// skipping slots torn by a concurrent Publish, and returns the extended
// slice.
func (r *Ring) Snapshot(dst []Record) []Record {
	pos := r.pos.Load()
	n := uint64(len(r.slots))
	for back := uint64(0); back < n && back < pos; back++ {
		idx := pos - 1 - back
		s := &r.slots[idx&r.mask]
		seq := s.seq.Load()
		if seq != idx+1 {
			continue // empty, torn, or already overwritten by a lap
		}
		rec := Record{
			TraceID:    s.trace.Load(),
			StartNs:    s.start.Load(),
			QueueNs:    s.queue.Load(),
			CoalesceNs: s.coalesce.Load(),
			AppendNs:   s.app.Load(),
			FsyncNs:    s.fsync.Load(),
			ExecNs:     s.exec.Load(),
			TreeNs:     s.tree.Load(),
		}
		meta := s.meta.Load()
		rec.Shard = uint32(meta >> 16)
		rec.Op = uint8(meta >> 8)
		rec.Status = uint8(meta)
		if s.seq.Load() != seq {
			continue // overwritten while we copied: discard the torn read
		}
		dst = append(dst, rec)
	}
	return dst
}
