// Package obs is the service's observability subsystem: a zero-allocation
// metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms with Prometheus text exposition), wire-level request tracing
// into lock-free per-shard ring buffers, and the HTTP handlers that dump
// both (/metrics, /tracez).
//
// The design constraint is the hot path: recording a counter, histogram
// sample or trace span on the request path performs zero heap allocations
// and takes a handful of atomic operations. Everything that allocates —
// registration, exposition, ring snapshots — happens at startup or scrape
// time. The package depends only on the standard library so every service
// layer (shard, persist, server, cmd) can import it without cycles.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is usable,
// but counters are normally minted by Registry.Counter so they appear in
// the exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// edges in the metric's unit (this repository standardizes on
// microseconds, suffix _us); one implicit +Inf bucket is appended.
// Observe is lock-free: one atomic add into the bucket and one into the
// running sum.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64
}

// NewHistogram builds an unregistered histogram over bounds (ascending
// inclusive upper edges). Use Registry.Histogram for scrapeable series;
// this constructor is for embedding distributions elsewhere (loadgen
// reports per-mix latency histograms in its bench JSON with the same
// bucket geometry as the daemon's).
func NewHistogram(bounds []uint64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of samples observed.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Buckets returns the bucket bounds and their (non-cumulative) counts,
// including the trailing +Inf bucket (bound 0 marks it).
func (h *Histogram) Buckets() ([]uint64, []uint64) {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// Quantile estimates the q-quantile (0..1) from the bucket counts,
// attributing each bucket's mass to its upper bound — the same
// within-one-bucket resolution Prometheus itself offers.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > rank {
			if i < len(h.bounds) {
				return float64(h.bounds[i])
			}
			return float64(h.bounds[len(h.bounds)-1]) // +Inf bucket: clamp
		}
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// LatencyBucketsUS is the repository's shared latency bucket geometry:
// power-of-two microsecond edges from 1µs to ~4.2s. Daemon histograms and
// loadgen's bench output use the same edges so distributions stay
// mechanically comparable.
func LatencyBucketsUS() []uint64 {
	b := make([]uint64, 23)
	for i := range b {
		b[i] = 1 << uint(i)
	}
	return b
}

// SizeBucketsBytes buckets byte counts: 64B to 16MiB, powers of four.
func SizeBucketsBytes() []uint64 {
	b := make([]uint64, 10)
	v := uint64(64)
	for i := range b {
		b[i] = v
		v *= 4
	}
	return b
}

// metricKind is a family's exposition TYPE.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// sample is one registered series: a value source plus its rendered
// label set.
type sample struct {
	labels  string // rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family groups samples of one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	samples []*sample
	seen    map[string]bool // label sets, duplicate registration guard
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is synchronized and panics on duplicate
// series or on re-registering a name with a different type or help —
// both are programmer errors the metrics lint would flag anyway.
// Recording through the returned handles is lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// renderLabels formats key/value pairs in the given order.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// register adds a sample under name, creating the family if needed.
func (r *Registry) register(name, help string, kind metricKind, s *sample, kv []string) {
	s.labels = renderLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, seen: map[string]bool{}}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	if f.help != help {
		panic(fmt.Sprintf("obs: metric %s re-registered with different help", name))
	}
	if f.seen[s.labels] {
		panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.labels))
	}
	f.seen[s.labels] = true
	f.samples = append(f.samples, s)
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &sample{counter: c}, kv)
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, &sample{gauge: g}, kv)
	return g
}

// GaugeFunc registers a gauge series whose value is computed at scrape
// time (queue depths, shard states — anything already maintained
// elsewhere).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	r.register(name, help, kindGauge, &sample{fn: fn}, kv)
}

// CounterFunc registers a counter series read from fn at scrape time (a
// monotone value maintained outside the registry).
func (r *Registry) CounterFunc(name, help string, fn func() float64, kv ...string) {
	r.register(name, help, kindCounter, &sample{fn: fn}, kv)
}

// Histogram registers and returns a histogram series with the given
// bucket bounds (see LatencyBucketsUS).
func (r *Registry) Histogram(name, help string, bounds []uint64, kv ...string) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.register(name, help, kindHistogram, &sample{hist: h}, kv)
	return h
}

// fmtFloat renders a value without the exponent noise %g gives integers.
func fmtFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every family in registration order: HELP and
// TYPE once, then each series. Histograms expand to cumulative _bucket
// series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.samples {
			var err error
			switch {
			case s.hist != nil:
				err = writeHistogram(w, f.name, s)
			case s.counter != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counter.Load())
			case s.gauge != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.gauge.Load())
			case s.fn != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fmtFloat(s.fn()))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram series in Prometheus shape.
func writeHistogram(w io.Writer, name string, s *sample) error {
	h := s.hist
	// Splice the le label into the (possibly empty) label set.
	leLabel := func(le string) string {
		if s.labels == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("%s,le=%q}", strings.TrimSuffix(s.labels, "}"), le)
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, leLabel(fmt.Sprintf("%d", b)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, leLabel("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, s.labels, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, cum)
	return err
}

// Families returns the registered family names, sorted (tests, lint).
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for _, f := range r.families {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}
