package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// Lint checks a Prometheus text exposition against the repository's
// metric conventions and returns one message per violation:
//
//   - every family name starts with prefix (secmemd_)
//   - every family that emits samples has # HELP and # TYPE lines
//   - no family is declared twice (duplicate registration)
//   - no series (name + label set) appears twice
//   - sample values parse as floats
//
// The CI smoke step and the chaos harness both run this over a live
// daemon's /metrics output.
func Lint(text, prefix string) []string {
	var problems []string
	helpSeen := map[string]bool{}
	typeSeen := map[string]bool{}
	seriesSeen := map[string]bool{}
	sampled := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		where := fmt.Sprintf("line %d", ln+1)
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				problems = append(problems, where+": malformed comment: "+line)
				continue
			}
			name := fields[2]
			switch fields[1] {
			case "HELP":
				if helpSeen[name] {
					problems = append(problems, where+": duplicate HELP for "+name)
				}
				helpSeen[name] = true
			case "TYPE":
				if typeSeen[name] {
					problems = append(problems, where+": duplicate TYPE for "+name)
				}
				typeSeen[name] = true
			}
			if !strings.HasPrefix(name, prefix) {
				problems = append(problems, where+": family "+name+" lacks prefix "+prefix)
			}
			continue
		}
		series, value, ok := splitSample(line)
		if !ok {
			problems = append(problems, where+": malformed sample: "+line)
			continue
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			problems = append(problems, where+": bad value in: "+line)
		}
		if seriesSeen[series] {
			problems = append(problems, where+": duplicate series "+series)
		}
		seriesSeen[series] = true
		fam := familyOf(series)
		sampled[fam] = true
		if !strings.HasPrefix(fam, prefix) {
			problems = append(problems, where+": series "+series+" lacks prefix "+prefix)
		}
	}
	for fam := range sampled {
		if !helpSeen[fam] {
			problems = append(problems, "family "+fam+" has samples but no HELP")
		}
		if !typeSeen[fam] {
			problems = append(problems, "family "+fam+" has samples but no TYPE")
		}
	}
	return problems
}

// splitSample separates "name{labels} value [ts]" into the series key
// and its value string.
func splitSample(line string) (series, value string, ok bool) {
	// The label block may contain spaces inside quoted values, so split
	// at the closing brace when one exists.
	if i := strings.Index(line, "}"); i >= 0 {
		rest := strings.TrimLeft(line[i+1:], " ")
		fields := strings.Fields(rest)
		if len(fields) < 1 {
			return "", "", false
		}
		return line[:i+1], fields[0], true
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", "", false
	}
	return fields[0], fields[1], true
}

// familyOf maps a series key to its metric family: labels are dropped
// and the histogram sub-series suffixes fold into the parent name.
func familyOf(series string) string {
	name := series
	if i := strings.Index(name, "{"); i >= 0 {
		name = name[:i]
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// ParseSamples extracts every series and its value from a text
// exposition; loadgen's -scrape mode diffs two of these maps to embed
// the per-run metric delta in the bench JSON.
func ParseSamples(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series, value, ok := splitSample(line)
		if !ok {
			continue
		}
		if v, err := strconv.ParseFloat(value, 64); err == nil {
			out[series] = v
		}
	}
	return out
}
