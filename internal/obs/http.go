package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
)

// MetricsHandler serves the Prometheus text exposition: the registry's
// families followed by any extra scrape-time sections (the shard pool
// contributes per-shard state and core counters this way so the same
// bytes are testable without an HTTP server).
func MetricsHandler(s *Service, extra ...func(http.ResponseWriter)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.WritePrometheus(w); err != nil {
			return
		}
		for _, fn := range extra {
			fn(w)
		}
	})
}

// tracezEntry is the JSON shape of one trace record, with human-readable
// stage durations in microseconds alongside the raw record.
type tracezEntry struct {
	Record
	OpName     string `json:"op_name"`
	StatusName string `json:"status_name"`
	TotalUS    int64  `json:"total_us"`
}

// tracezDump is the /tracez response body.
type tracezDump struct {
	Count   int           `json:"count"`
	Records []tracezEntry `json:"records"`
}

// TracezHandler dumps recent traced requests as JSON, newest first
// across all shards. ?n= caps the record count (default 128). The
// opName/statusName funcs let the server layer decorate records with its
// wire-level names without obs importing it; either may be nil.
func TracezHandler(s *Service, opName, statusName func(uint8) string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		limit := 128
		if v := req.URL.Query().Get("n"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				limit = n
			}
		}
		recs := s.SnapshotTraces(nil)
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].StartNs > recs[j].StartNs })
		if len(recs) > limit {
			recs = recs[:limit]
		}
		dump := tracezDump{Count: len(recs), Records: make([]tracezEntry, len(recs))}
		for i, r := range recs {
			e := tracezEntry{Record: r}
			if opName != nil {
				e.OpName = opName(r.Op)
			}
			if statusName != nil {
				e.StatusName = statusName(r.Status)
			}
			e.TotalUS = (r.QueueNs + r.CoalesceNs + r.AppendNs + r.FsyncNs + r.ExecNs + r.TreeNs) / 1e3
			dump.Records[i] = e
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(dump)
	})
}
