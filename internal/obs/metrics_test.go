package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("secmemd_test_ops_total", "Ops.", "op", "read")
	c2 := r.Counter("secmemd_test_ops_total", "Ops.", "op", "write")
	g := r.Gauge("secmemd_test_depth", "Depth.")
	c.Add(3)
	c2.Inc()
	g.Set(-7)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP secmemd_test_ops_total Ops.\n",
		"# TYPE secmemd_test_ops_total counter\n",
		`secmemd_test_ops_total{op="read"} 3` + "\n",
		`secmemd_test_ops_total{op="write"} 1` + "\n",
		"# TYPE secmemd_test_depth gauge\n",
		"secmemd_test_depth -7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// HELP/TYPE must appear once per family, not per series.
	if n := strings.Count(out, "# TYPE secmemd_test_ops_total"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("secmemd_test_latency_us", "Latency.", []uint64{1, 2, 4}, "op", "read")
	for _, v := range []uint64{1, 2, 2, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 108 {
		t.Fatalf("Sum = %d, want 108", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE secmemd_test_latency_us histogram\n",
		`secmemd_test_latency_us_bucket{op="read",le="1"} 1` + "\n",
		`secmemd_test_latency_us_bucket{op="read",le="2"} 3` + "\n",
		`secmemd_test_latency_us_bucket{op="read",le="4"} 4` + "\n",
		`secmemd_test_latency_us_bucket{op="read",le="+Inf"} 5` + "\n",
		`secmemd_test_latency_us_sum{op="read"} 108` + "\n",
		`secmemd_test_latency_us_count{op="read"} 5` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if probs := Lint(out, "secmemd_"); len(probs) != 0 {
		t.Errorf("lint rejects own exposition: %v", probs)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	hh := r.Histogram("secmemd_test_q_us", "Q.", LatencyBucketsUS())
	for i := 0; i < 90; i++ {
		hh.Observe(100) // → bucket le=128
	}
	for i := 0; i < 10; i++ {
		hh.Observe(5000) // → bucket le=8192
	}
	if got := hh.Quantile(0.5); got != 128 {
		t.Errorf("p50 = %g, want 128", got)
	}
	if got := hh.Quantile(0.99); got != 8192 {
		t.Errorf("p99 = %g, want 8192", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("secmemd_dup_total", "D.", "a", "1")
	mustPanic(t, "duplicate series", func() { r.Counter("secmemd_dup_total", "D.", "a", "1") })
	mustPanic(t, "different type", func() { r.Gauge("secmemd_dup_total", "D.") })
	mustPanic(t, "different help", func() { r.Counter("secmemd_dup_total", "other help") })
	mustPanic(t, "odd labels", func() { r.Counter("secmemd_odd_total", "O.", "k") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestGaugeFuncEvaluatedAtScrape(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("secmemd_live", "Live.", func() float64 { return v })
	v = 2.5
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "secmemd_live 2.5\n") {
		t.Errorf("gauge func not evaluated at scrape:\n%s", b.String())
	}
}

// TestRegistryConcurrency hammers registration, recording and exposition
// from many goroutines; run under -race this validates the locking
// story (registration locked, recording lock-free).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("secmemd_conc_total", "C.")
	h := r.Histogram("secmemd_conc_us", "H.", LatencyBucketsUS())
	g := r.Gauge("secmemd_conc_depth", "G.")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Inc()
				h.Observe(uint64(i))
				g.Add(1)
				g.Add(-1)
			}
		}(w)
	}
	// Concurrent scrapes while recording is in flight.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 16000 {
		t.Errorf("counter = %d, want 16000", got)
	}
	if got := h.Count(); got != 16000 {
		t.Errorf("histogram count = %d, want 16000", got)
	}
}
