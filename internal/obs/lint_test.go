package obs

import (
	"strings"
	"testing"
)

func TestLintCleanExposition(t *testing.T) {
	text := `# HELP secmemd_ops_total Ops.
# TYPE secmemd_ops_total counter
secmemd_ops_total{op="read"} 3
secmemd_ops_total{op="write"} 1
# HELP secmemd_lat_us Latency.
# TYPE secmemd_lat_us histogram
secmemd_lat_us_bucket{le="1"} 0
secmemd_lat_us_bucket{le="+Inf"} 2
secmemd_lat_us_sum 11
secmemd_lat_us_count 2
`
	if probs := Lint(text, "secmemd_"); len(probs) != 0 {
		t.Errorf("clean exposition rejected: %v", probs)
	}
}

func TestLintViolations(t *testing.T) {
	cases := []struct {
		name, text, wantSub string
	}{
		{"missing prefix", "# HELP other_total X.\n# TYPE other_total counter\nother_total 1\n", "lacks prefix"},
		{"missing help", "# TYPE secmemd_x counter\nsecmemd_x 1\n", "no HELP"},
		{"missing type", "# HELP secmemd_x X.\nsecmemd_x 1\n", "no TYPE"},
		{"duplicate series", "# HELP secmemd_x X.\n# TYPE secmemd_x counter\nsecmemd_x 1\nsecmemd_x 2\n", "duplicate series"},
		{"duplicate family", "# HELP secmemd_x X.\n# TYPE secmemd_x counter\n# HELP secmemd_x X.\n# TYPE secmemd_x counter\nsecmemd_x 1\n", "duplicate HELP"},
		{"bad value", "# HELP secmemd_x X.\n# TYPE secmemd_x counter\nsecmemd_x banana\n", "bad value"},
	}
	for _, tc := range cases {
		probs := Lint(tc.text, "secmemd_")
		found := false
		for _, p := range probs {
			if strings.Contains(p, tc.wantSub) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want a problem containing %q, got %v", tc.name, tc.wantSub, probs)
		}
	}
}

func TestLintRegistryOutput(t *testing.T) {
	// The registry's own exposition must be lint-clean, including
	// labeled histograms where le is spliced into an existing label set.
	r := NewRegistry()
	r.Counter("secmemd_a_total", "A.").Inc()
	r.Gauge("secmemd_b", "B.").Set(2)
	r.Histogram("secmemd_c_us", "C.", LatencyBucketsUS(), "op", "read").Observe(9)
	r.Histogram("secmemd_c_us", "C.", LatencyBucketsUS(), "op", "write").Observe(3)
	r.GaugeFunc("secmemd_d", "D.", func() float64 { return 1.25 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if probs := Lint(b.String(), "secmemd_"); len(probs) != 0 {
		t.Errorf("registry exposition fails lint: %v\n%s", probs, b.String())
	}
}

func TestParseSamples(t *testing.T) {
	text := "# HELP secmemd_x X.\n# TYPE secmemd_x counter\nsecmemd_x{op=\"read\"} 5\nsecmemd_y 1.5\n"
	got := ParseSamples(text)
	if got[`secmemd_x{op="read"}`] != 5 {
		t.Errorf("labeled sample: %v", got)
	}
	if got["secmemd_y"] != 1.5 {
		t.Errorf("bare sample: %v", got)
	}
}
