package aisebmt

// End-to-end tests: every example and every CLI tool is built and executed
// the way a user would run it, keeping the documented entry points green.
// These exec `go run`, so they are skipped under -short.

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runGo(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("exec tests skipped in -short mode")
	}
	cases := map[string][]string{
		"quickstart": {"round trip", "tamper detected"},
		"ipcshare":   {"shared-memory IPC", "pad reuse under VA seeds", "garbage"},
		"swapguard":  {"zero re-encryption", "detected at fault-in", "512 pad generations"},
		"tamperhunt": {"replay SUCCEEDED silently", "replay DETECTED", "splice DETECTED"},
		"hibernate":  {"resumed cleanly", "tamper detected at resume", "key rotation"},
		"secureboot": {"measurement", "patched image rejected", "forged image rejected"},
	}
	for name, wants := range cases {
		name, wants := name, wants
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out := runGo(t, "run", "./"+filepath.Join("examples", name))
			for _, w := range wants {
				if !strings.Contains(out, w) {
					t.Errorf("%s output missing %q:\n%s", name, w, out)
				}
			}
		})
	}
}

func TestCLITools(t *testing.T) {
	if testing.Short() {
		t.Skip("exec tests skipped in -short mode")
	}
	t.Run("secmemsim", func(t *testing.T) {
		t.Parallel()
		out := runGo(t, "run", "./cmd/secmemsim", "-bench", "art", "-scheme", "aise+bmt",
			"-n", "50000", "-warmup", "20000")
		if !strings.Contains(out, "Overhead vs unprotected") {
			t.Errorf("secmemsim output:\n%s", out)
		}
	})
	t.Run("secmemsim-list", func(t *testing.T) {
		t.Parallel()
		out := runGo(t, "run", "./cmd/secmemsim", "-list")
		if !strings.Contains(out, "mcf") || !strings.Contains(out, "swim") {
			t.Errorf("-list output:\n%s", out)
		}
	})
	t.Run("experiments-table2", func(t *testing.T) {
		t.Parallel()
		out := runGo(t, "run", "./cmd/experiments", "-exp", "table2")
		if !strings.Contains(out, "21.55%") {
			t.Errorf("table2 output:\n%s", out)
		}
	})
	t.Run("attacksim", func(t *testing.T) {
		t.Parallel()
		out := runGo(t, "run", "./cmd/attacksim")
		if !strings.Contains(out, "DETECTED") || !strings.Contains(out, "missed") {
			t.Errorf("attacksim output:\n%s", out)
		}
		// The detection matrix rows the paper's Section 5 promises.
		if !strings.Contains(out, "mac-only   DETECTED  DETECTED    missed") {
			t.Errorf("mac-only detection row wrong:\n%s", out)
		}
	})
	t.Run("tracegen", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		trc := filepath.Join(dir, "t.trc")
		out := runGo(t, "run", "./cmd/tracegen", "-bench", "gcc", "-n", "40000", "-o", trc)
		if !strings.Contains(out, "wrote 40000 accesses") {
			t.Errorf("tracegen output:\n%s", out)
		}
		out = runGo(t, "run", "./cmd/tracegen", "-replay", trc, "-scheme", "aise+bmt",
			"-warmup", "10000", "-measure", "20000")
		if !strings.Contains(out, "Local L2 miss rate") {
			t.Errorf("replay output:\n%s", out)
		}
	})
}
