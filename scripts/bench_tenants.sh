#!/bin/sh
# bench_tenants.sh — run the multi-tenant benchmark suites and leave
# BENCH_tenants.json in the repo root. loadgen spawns its own
# tenant-enabled daemons (one per suite: lifecycle churn, swap pressure
# under a resident-set budget, counter-overflow re-encryption storm), so
# no externally started secmemd is needed. Used by `make bench-tenants`.
set -eu

cd "$(dirname "$0")/.."
DURATION="${DURATION:-3s}"

go build -o /tmp/secmemd ./cmd/secmemd
go build -o /tmp/loadgen ./cmd/loadgen

# loadgen exits non-zero if any suite fails its hard assertions: zero
# acknowledged-write loss across swap, the resident budget held, COW
# breaks observed, and counter overflow forcing fresh-LPID
# re-encryptions.
/tmp/loadgen -tenant-bench -secmemd /tmp/secmemd -duration "$DURATION" -json
