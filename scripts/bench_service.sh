#!/bin/sh
# bench_service.sh — start secmemd on a scratch port, drive it with
# loadgen across two read/write mixes, and leave BENCH_service.json in
# the repo root. Used by `make bench` and the acceptance check.
set -eu

cd "$(dirname "$0")/.."
ADDR="${ADDR:-127.0.0.1:7393}"
HEALTH="${HEALTH:-127.0.0.1:7394}"
DURATION="${DURATION:-2s}"

go build -o /tmp/secmemd ./cmd/secmemd
go build -o /tmp/loadgen ./cmd/loadgen

# -health wires the observability subsystem (metrics registry, trace
# rings), so the published numbers include instrumentation cost.
/tmp/secmemd -listen "$ADDR" -health "$HEALTH" -shards 4 -mem 16MiB -hibernate /tmp/secmemd.hib &
PID=$!
trap 'kill -TERM $PID 2>/dev/null || true' EXIT INT TERM

# Wait for the listener.
i=0
until /tmp/loadgen -addr "$ADDR" -conns 1 -ops 1 -mixes 1.0 >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { echo "secmemd did not come up" >&2; exit 1; }
    sleep 0.1
done

/tmp/loadgen -addr "$ADDR" -conns 16 -duration "$DURATION" -mixes 0.95,0.50 -json \
    -scrape "http://$HEALTH"

# Graceful SIGTERM: the daemon drains and verifies every shard; its exit
# code is the integrity verdict.
kill -TERM $PID
wait $PID
trap - EXIT INT TERM
echo "secmemd exited cleanly (all shards verified)"

# Optional durability leg: RECOVERY=1 also runs the crash-recovery sweep
# (restart-to-first-byte vs WAL length per fsync policy).
if [ "${RECOVERY:-0}" = "1" ]; then
    ./scripts/bench_recovery.sh
fi
