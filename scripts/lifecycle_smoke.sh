#!/bin/sh
# lifecycle_smoke.sh — end-to-end cluster lifecycle smoke over real
# daemons and the admin wire ops:
#
#   1. boot a 3-node cluster and drive ring-aware traffic through it
#   2. admit a fourth member with `secmemrouter -admin join` and boot it
#      from the seed's sealed view (`secmemd -cluster-join`)
#   3. SIGKILL a founding member: its follower must promote AND the
#      promoted range must re-replicate onto a survivor on its own
#      (secmemd_cluster_rerepl_attached closes the single-copy window)
#   4. restart the victim on its stale data dir: it must rejoin fenced
#      (secmemd_cluster_deposed = 1), never split-brain
#   5. retire a member with `-admin leave`: verified handoff, epoch
#      ratchet, traffic keeps flowing
#   6. lint the /metrics exposition and shut the survivors down cleanly
#
# Used by `make lifecycle-smoke`; CI runs it after the cluster smoke.
set -eu

cd "$(dirname "$0")/.."
MEM="${MEM:-4MiB}"
BASE="${BASE:-127.0.0.1}"

MEMBERS="n1=$BASE:7411/$BASE:9411/$BASE:8411,n2=$BASE:7412/$BASE:9412/$BASE:8412,n3=$BASE:7413/$BASE:9413/$BASE:8413"
N4SPEC="n4=$BASE:7414/$BASE:9414/$BASE:8414"

go build -o /tmp/secmemd ./cmd/secmemd
go build -o /tmp/secmemrouter ./cmd/secmemrouter
go build -o /tmp/loadgen ./cmd/loadgen
go build -o /tmp/metricslint ./cmd/metricslint

DATA=$(mktemp -d /tmp/secmemd-lifecycle.XXXXXX)
PIDS=""
cleanup() {
    for pid in $PIDS; do kill -KILL "$pid" 2>/dev/null || true; done
    rm -rf "$DATA"
}
trap cleanup EXIT INT TERM

scrape() { curl -s "$1" 2>/dev/null || wget -qO- "$1"; }
metric() { scrape "http://$1/metrics" | awk -v m="$2" '$1==m {print $2; found=1} END {if (!found) print 0}'; }

# wait_metric_ge health-addr metric want seconds what
wait_metric_ge() {
    i=0
    while :; do
        got=$(metric "$1" "$2" || echo 0)
        if awk -v g="$got" -v w="$3" 'BEGIN {exit !(g+0 >= w+0)}'; then return 0; fi
        i=$((i + 1))
        [ "$i" -ge $(($4 * 10)) ] && { echo "timeout: $5 ($2=$got, want >= $3)" >&2; return 1; }
        sleep 0.1
    done
}

start_member() { # id extra-args...
    id=$1; shift
    /tmp/secmemd -cluster-id "$id" -mem "$MEM" -data-dir "$DATA/$id" \
        -fsync always "$@" &
    PIDS="$PIDS $!"
    eval "PID_$id=$!"
}

# 1. Boot the founding members and prove the ring serves.
for id in n1 n2 n3; do start_member "$id" -cluster "$MEMBERS"; done
/tmp/loadgen -cluster "$MEMBERS" -mem "$MEM" -conns 1 -ops 1 -mixes 1.0 \
    -wait-ready "http://$BASE:9411/readyz,http://$BASE:9412/readyz,http://$BASE:9413/readyz" \
    -retries 8 >/dev/null
/tmp/loadgen -cluster "$MEMBERS" -mem "$MEM" -conns 4 -duration 1s \
    -mixes 0.90,0.50 -dist uniform -retries 8 >/dev/null

# 2. Join: admit n4 through the wire op, then boot it from the seed view.
/tmp/secmemrouter -admin join -target "$BASE:7411" -arg "$N4SPEC"
wait_metric_ge "$BASE:9411" secmemd_cluster_view_epoch 1 10 "join epoch never applied on n1"
wait_metric_ge "$BASE:9413" secmemd_cluster_view_epoch 1 10 "join epoch never reached n3"
start_member n4 -cluster-join "$BASE:8411"
/tmp/loadgen -cluster "$MEMBERS" -mem "$MEM" -conns 1 -ops 1 -mixes 1.0 \
    -wait-ready "http://$BASE:9414/readyz" -retries 8 >/dev/null
wait_metric_ge "$BASE:9414" secmemd_cluster_view_epoch 1 10 "joiner never fetched the view"
echo "lifecycle: n4 joined at epoch 1"

# 3. Failover with automatic re-replication: kill n2 and wait for a
# survivor to promote its range and re-close the single-copy window.
kill -KILL "$PID_n2"
deadline=30
while :; do
    sum=0
    for h in 9411 9413 9414; do
        f=$(metric "$BASE:$h" secmemd_cluster_failovers_total)
        sum=$(awk -v a="$sum" -v b="$f" 'BEGIN {print a + b}')
    done
    if awk -v s="$sum" 'BEGIN {exit !(s >= 1)}'; then break; fi
    deadline=$((deadline - 1))
    [ "$deadline" -le 0 ] && { echo "no survivor promoted n2's range" >&2; exit 1; }
    sleep 1
done
deadline=30
while :; do
    window=""
    for h in 9411 9413 9414; do
        got=$(metric "$BASE:$h" secmemd_cluster_rerepl_attached)
        if awk -v g="$got" 'BEGIN {exit !(g + 0 >= 1)}'; then
            window=$(metric "$BASE:$h" secmemd_cluster_rerepl_window_ms)
            break
        fi
    done
    [ -n "$window" ] && break
    deadline=$((deadline - 1))
    [ "$deadline" -le 0 ] && { echo "promoted range never re-replicated on any survivor" >&2; exit 1; }
    sleep 1
done
echo "lifecycle: promoted range re-replicated (single-copy window ${window}ms)"
/tmp/loadgen -cluster "$MEMBERS" -mem "$MEM" -conns 4 -duration 1s \
    -mixes 0.90,0.50 -dist uniform -retries 12 >/dev/null
echo "lifecycle: traffic flows after failover"

# 4. Fenced rejoin: the victim restarts on its stale dir convinced it
# still owns its range; the fence must depose it automatically.
start_member n2 -cluster "$MEMBERS"
wait_metric_ge "$BASE:9412" secmemd_cluster_deposed 1 30 "restarted n2 never rejoined fenced"
echo "lifecycle: n2 rejoined deposed behind the fence"

# 5. Leave: n3 retires through verified handoffs; the epoch ratchets and
# every range it served moves without losing a write.
/tmp/secmemrouter -admin leave -target "$BASE:7413" -arg n3
wait_metric_ge "$BASE:9413" secmemd_cluster_handoffs_total 1 10 "n3 completed no handoff"
wait_metric_ge "$BASE:9411" secmemd_cluster_view_epoch 2 10 "leave epochs never reached n1"
/tmp/loadgen -cluster "$MEMBERS" -mem "$MEM" -conns 4 -duration 1s \
    -mixes 0.90,0.50 -dist uniform -retries 12 >/dev/null
echo "lifecycle: n3 left; traffic flows over the remaining members"

# 6. The exposition must still satisfy the metric conventions.
/tmp/metricslint -url "http://$BASE:9411/metrics"

# Clean shutdown: every survivor drains and runs its final sweep.
fail=0
for id in n1 n2 n4 n3; do
    eval "pid=\$PID_$id"
    kill -TERM "$pid" 2>/dev/null || true
done
for id in n1 n2 n4 n3; do
    eval "pid=\$PID_$id"
    wait "$pid" || { echo "member $id exited dirty" >&2; fail=1; }
done
PIDS=""
[ "$fail" -eq 0 ] || exit 1
echo "lifecycle smoke: join, failover+rerepl, fenced rejoin, leave — all clean"
