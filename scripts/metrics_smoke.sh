#!/bin/sh
# metrics_smoke.sh — start a secmemd with the observability endpoints on,
# drive a little traced traffic through it, scrape /metrics through
# metricslint (prefix, HELP/TYPE, duplicate and value checks), and spot
# check that the request series actually moved. Used by `make
# metrics-smoke` and CI.
set -eu

cd "$(dirname "$0")/.."
ADDR="${ADDR:-127.0.0.1:7393}"
HEALTH="${HEALTH:-127.0.0.1:7394}"

go build -o /tmp/secmemd ./cmd/secmemd
go build -o /tmp/loadgen ./cmd/loadgen
go build -o /tmp/metricslint ./cmd/metricslint

/tmp/secmemd -listen "$ADDR" -health "$HEALTH" -shards 4 -mem 16MiB &
PID=$!
trap 'kill -TERM $PID 2>/dev/null || true' EXIT INT TERM

i=0
until /tmp/loadgen -addr "$ADDR" -conns 1 -ops 1 -mixes 1.0 >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { echo "secmemd did not come up" >&2; exit 1; }
    sleep 0.1
done

# Traced traffic so the trace rings and every request series move.
/tmp/loadgen -addr "$ADDR" -conns 4 -ops 2000 -mixes 0.5 \
    -scrape "http://$HEALTH" -trace

# The exposition must satisfy the metric conventions end to end.
/tmp/metricslint -url "http://$HEALTH/metrics"

# Spot checks: the hot-path series moved and the pool section is present.
SCRAPE=$(curl -s "http://$HEALTH/metrics" 2>/dev/null || wget -qO- "http://$HEALTH/metrics")
echo "$SCRAPE" | grep -q '^secmemd_requests_total{op="read",status="ok"} [1-9]' ||
    { echo "request counter did not move" >&2; exit 1; }
echo "$SCRAPE" | grep -q '^secmemd_shard_state{shard="0",state="serving"} 1' ||
    { echo "pool scrape section missing" >&2; exit 1; }
echo "$SCRAPE" | grep -q '^secmemd_build_info{' ||
    { echo "build info gauge missing" >&2; exit 1; }

kill -TERM $PID
wait $PID
trap - EXIT INT TERM
echo "metrics smoke passed"
