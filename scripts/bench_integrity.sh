#!/bin/sh
# bench_integrity.sh — run the Merkle tree update-engine benchmarks,
# compare the batched, coalescing engine against the frozen serial
# reference walk (both live in one binary, so old and new run under
# identical conditions), and leave BENCH_integrity.json in the repo
# root. Used by `make bench-integrity`.
#
# Pairs reported (unit of work: one 256-leaf batch over a 16384-leaf
# tree, 128-bit nodes):
#   tree_update_coalesced   serial leaf-to-root replay vs one coalesced
#                           level-ordered pass (1 worker: pure dedupe win)
#   tree_update_parallel    the same pass with a 4-worker hash pool
#   tree_update_cached      4 workers + write-back node cache (steady state)
#   shard_write_e2e         pool write throughput, serial-ref tree vs
#                           batched engine with cache
# plus the worker-width sweep (1/2/4/8) for the scaling curve.
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${BENCHTIME:-300ms}"
OUT="BENCH_integrity.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT INT TERM

# Three counts per benchmark, min taken below: the e2e pool pair runs
# whole worker drains per op and is scheduler-noisy on small hosts.
go test -run=none -benchtime "$BENCHTIME" -count=3 -benchmem \
    -bench '^(BenchmarkTreeBatchSerialRef|BenchmarkTreeBatch|BenchmarkTreeBatchCached)$' \
    ./internal/integrity/ >>"$TMP"
go test -run=none -benchtime "$BENCHTIME" -count=3 -benchmem \
    -bench '^(BenchmarkPoolWriteSerialTree|BenchmarkPoolWriteBatchedTree)$' \
    ./internal/shard/ >>"$TMP"

CPUS="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"

awk -v out="$OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in ns) || $3 + 0 < ns[name] + 0) ns[name] = $3
}
END {
    pairs = "tree_update_coalesced BenchmarkTreeBatchSerialRef BenchmarkTreeBatch/workers=1\n" \
            "tree_update_parallel BenchmarkTreeBatchSerialRef BenchmarkTreeBatch/workers=4\n" \
            "tree_update_cached BenchmarkTreeBatchSerialRef BenchmarkTreeBatchCached\n" \
            "shard_write_e2e BenchmarkPoolWriteSerialTree BenchmarkPoolWriteBatchedTree"

    printf "{\n  \"benchtime\": \"%s\",\n  \"cpus\": %s,\n  \"batch_leaves\": 256,\n  \"pairs\": [\n", benchtime, cpus > out
    n = split(pairs, p, "\n")
    printf "%-22s %12s %12s %9s\n", "pair", "old ns/op", "new ns/op", "speedup"
    for (i = 1; i <= n; i++) {
        split(p[i], f, " ")
        old = ns[f[2]] + 0; new = ns[f[3]] + 0
        sp = (new > 0) ? old / new : 0
        printf "    {\"name\": \"%s\", \"old_ns_per_op\": %s, \"new_ns_per_op\": %s, \"speedup\": %.2f}%s\n", \
            f[1], old, new, sp, (i < n ? "," : "") > out
        printf "%-22s %12.1f %12.1f %8.2fx\n", f[1], old, new, sp
    }
    printf "  ],\n  \"worker_sweep\": [\n" > out
    m = split("1 2 4 8", ws, " ")
    for (i = 1; i <= m; i++) {
        key = "BenchmarkTreeBatch/workers=" ws[i]
        printf "    {\"workers\": %s, \"ns_per_op\": %s}%s\n", \
            ws[i], ns[key] + 0, (i < m ? "," : "") > out
    }
    printf "  ]\n}\n" > out
}
' benchtime="$BENCHTIME" cpus="$CPUS" "$TMP"

echo "wrote $OUT"
