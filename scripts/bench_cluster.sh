#!/bin/sh
# bench_cluster.sh — cluster benchmark and failover smoke in two acts.
#
# Act 1 boots a 3-node secmemd cluster on fixed loopback ports, waits for
# every member's /readyz, drives ring-aware smart-client traffic through
# it, lints one member's /metrics exposition (the secmemd_cluster_*
# family included) and asserts the replication series actually moved,
# then shuts every member down cleanly (each runs its final integrity
# sweep).
#
# Act 2 hands over to loadgen -cluster-bench, which spawns its own
# daemons: a single-node baseline, a fresh 3-node cluster under the same
# per-node flags, and a failover phase that SIGKILLs the owner of the hot
# range mid-load, measures recovery-to-first-byte, and fails the run if
# any acknowledged write is lost or the promotion count is not exactly 1.
# Leaves BENCH_cluster.json in the repo root.
#
# Used by `make bench-cluster` (full) and `make cluster-smoke` (CI sizes,
# DURATION/MEM trimmed).
set -eu

cd "$(dirname "$0")/.."
DURATION="${DURATION:-3s}"
MEM="${MEM:-8MiB}"
CONNS="${CONNS:-8}"
BASE="${BASE:-127.0.0.1}"

MEMBERS="n1=$BASE:7401/$BASE:9401/$BASE:8401,n2=$BASE:7402/$BASE:9402/$BASE:8402,n3=$BASE:7403/$BASE:9403/$BASE:8403"

go build -o /tmp/secmemd ./cmd/secmemd
go build -o /tmp/loadgen ./cmd/loadgen
go build -o /tmp/metricslint ./cmd/metricslint

DATA=$(mktemp -d /tmp/secmemd-cluster.XXXXXX)
PIDS=""
cleanup() {
    for pid in $PIDS; do kill -KILL "$pid" 2>/dev/null || true; done
    rm -rf "$DATA"
}
trap cleanup EXIT INT TERM

for id in n1 n2 n3; do
    /tmp/secmemd -cluster-id "$id" -cluster "$MEMBERS" \
        -mem "$MEM" -data-dir "$DATA/$id" -fsync always &
    PIDS="$PIDS $!"
done

# Every member must be ready before the measurement: the cluster serves
# only once each node's follower handshake resolves.
/tmp/loadgen -cluster "$MEMBERS" -mem "$MEM" -conns 1 -ops 1 -mixes 1.0 \
    -wait-ready "http://$BASE:9401/readyz,http://$BASE:9402/readyz,http://$BASE:9403/readyz" \
    -retries 8 >/dev/null

/tmp/loadgen -cluster "$MEMBERS" -mem "$MEM" -conns "$CONNS" \
    -duration "$DURATION" -mixes 0.95,0.50 -dist uniform -retries 8

# The exposition must satisfy the metric conventions, cluster family
# included, and the replication series must have moved.
/tmp/metricslint -url "http://$BASE:9401/metrics"
SCRAPE=$(curl -s "http://$BASE:9401/metrics" 2>/dev/null || wget -qO- "http://$BASE:9401/metrics")
echo "$SCRAPE" | grep -q '^secmemd_cluster_members 3' ||
    { echo "cluster membership gauge missing" >&2; exit 1; }
echo "$SCRAPE" | grep -q '^secmemd_cluster_follower_attached 1' ||
    { echo "member n1 has no attached follower" >&2; exit 1; }
echo "$SCRAPE" | grep -q '^secmemd_cluster_segments_shipped_total [1-9]' ||
    { echo "no sealed WAL segments were shipped" >&2; exit 1; }
# Standby placement prefers the first successor but settles on any live
# one when boot order races, so baselines are asserted cluster-wide:
# every member writes through an attached stream (errors=0 above), which
# needs one imported baseline per range.
BASELINES=0
for h in 9401 9402 9403; do
    S=$(curl -s "http://$BASE:$h/metrics" 2>/dev/null || wget -qO- "http://$BASE:$h/metrics")
    N=$(echo "$S" | awk '$1 == "secmemd_cluster_baselines_applied_total" {print $2}')
    BASELINES=$((BASELINES + ${N:-0}))
done
[ "$BASELINES" -ge 3 ] ||
    { echo "only $BASELINES baselines imported cluster-wide, want >= 3" >&2; exit 1; }

# Clean shutdown: every member drains, verifies every shard, checkpoints.
for pid in $PIDS; do kill -TERM "$pid"; done
for pid in $PIDS; do wait "$pid" || { echo "a member exited dirty" >&2; exit 1; }; done
PIDS=""

# Act 2: scale-out baseline + failover kill, all daemons spawned by
# loadgen itself. Fails on any acked-write loss or a promotion count != 1.
/tmp/loadgen -cluster-bench -secmemd /tmp/secmemd \
    -mem "$MEM" -conns "$CONNS" -duration "$DURATION" \
    -json -out BENCH_cluster.json
