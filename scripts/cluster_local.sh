#!/bin/sh
# cluster_local.sh — run a local 3-node secmemd cluster plus a router in
# the foreground: the README "Running a cluster" quickstart. Ctrl-C tears
# everything down (members exit through their drain-and-verify path).
#
#   make cluster
#   # smart clients:  loadgen -cluster "$MEMBERS" ...
#   # dumb clients:   loadgen -addr 127.0.0.1:7400 ...   (via the router)
set -eu

cd "$(dirname "$0")/.."
BASE="${BASE:-127.0.0.1}"
MEM="${MEM:-16MiB}"
DATA="${DATA:-/tmp/secmemd-cluster-local}"

MEMBERS="n1=$BASE:7401/$BASE:9401/$BASE:8401,n2=$BASE:7402/$BASE:9402/$BASE:8402,n3=$BASE:7403/$BASE:9403/$BASE:8403"

go build -o /tmp/secmemd ./cmd/secmemd
go build -o /tmp/secmemrouter ./cmd/secmemrouter

PIDS=""
cleanup() {
    for pid in $PIDS; do kill -TERM "$pid" 2>/dev/null || true; done
    for pid in $PIDS; do wait "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT INT TERM

for id in n1 n2 n3; do
    /tmp/secmemd -cluster-id "$id" -cluster "$MEMBERS" \
        -mem "$MEM" -data-dir "$DATA/$id" -fsync always &
    PIDS="$PIDS $!"
done
/tmp/secmemrouter -listen "$BASE:7400" -health "$BASE:9400" -cluster "$MEMBERS" &
PIDS="$PIDS $!"

echo
echo "cluster up: members $MEMBERS"
echo "router (plain wire protocol) on $BASE:7400, health on $BASE:9400"
echo "Ctrl-C to stop."
wait
