#!/bin/sh
# tenant_smoke.sh — start a tenant-enabled secmemd (swap-capable scheme
# plus a resident-set budget), drive tenant create/fork/destroy churn
# over the wire, lint the /metrics exposition (which now includes the
# secmemd_tenant_* family and the scrape-time secmemd_vm_* section),
# spot check that the tenant series actually moved, then run a
# kill-and-recover pass against a tenant-durable daemon. Used by `make
# tenant-smoke` and CI.
set -eu

cd "$(dirname "$0")/.."
ADDR="${ADDR:-127.0.0.1:7393}"
HEALTH="${HEALTH:-127.0.0.1:7394}"

go build -o /tmp/secmemd ./cmd/secmemd
go build -o /tmp/loadgen ./cmd/loadgen
go build -o /tmp/metricslint ./cmd/metricslint

/tmp/secmemd -listen "$ADDR" -health "$HEALTH" -shards 4 -mem 16MiB \
    -scheme aise-bmt -swapslots 64 -resident-pages 256 &
PID=$!
trap 'kill -TERM $PID 2>/dev/null || true' EXIT INT TERM

i=0
until /tmp/loadgen -addr "$ADDR" -conns 1 -ops 1 -mixes 1.0 >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { echo "secmemd did not come up" >&2; exit 1; }
    sleep 0.1
done

# Tenant lifecycle churn; the loadgen exits non-zero if no cycles moved
# or no COW page ever broke.
/tmp/loadgen -addr "$ADDR" -tenant-churn -conns 4 -duration 1s \
    -scrape "http://$HEALTH"

# The exposition — tenant family included — must satisfy the metric
# conventions end to end.
/tmp/metricslint -url "http://$HEALTH/metrics"

# Spot checks: the tenant series exist and moved, and the scrape-time
# vm section is present.
SCRAPE=$(curl -s "http://$HEALTH/metrics" 2>/dev/null || wget -qO- "http://$HEALTH/metrics")
echo "$SCRAPE" | grep -q '^secmemd_tenant_created_total [1-9]' ||
    { echo "tenant creation counter did not move" >&2; exit 1; }
echo "$SCRAPE" | grep -q '^secmemd_tenant_cow_breaks_total [1-9]' ||
    { echo "tenant COW-break counter did not move" >&2; exit 1; }
echo "$SCRAPE" | grep -q '^secmemd_tenant_live 0' ||
    { echo "tenants leaked after churn" >&2; exit 1; }
echo "$SCRAPE" | grep -q '^secmemd_vm_cow_breaks_total [1-9]' ||
    { echo "vm scrape section missing or idle" >&2; exit 1; }

kill -TERM $PID
wait $PID
trap - EXIT INT TERM

# Kill-and-recover: loadgen spawns a tenant-durable daemon on a scratch
# data directory, seeds tenants (including a diverged fork), SIGKILLs
# it, restarts it on the same directory and asserts every acknowledged
# tenant byte comes back bit-exact. Exits non-zero on any loss.
/tmp/loadgen -tenant-recover -secmemd /tmp/secmemd

echo "tenant smoke passed"
