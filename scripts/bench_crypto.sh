#!/bin/sh
# bench_crypto.sh — run the crypto hot-path microbenchmarks, compare the
# overhauled engines against their frozen reference implementations (both
# live in one binary, so old and new run under identical conditions), and
# leave BENCH_crypto.json in the repo root. Used by `make bench-crypto`.
#
# Pairs reported:
#   aes_pad_gen     T-table AES block vs the reference scalar rounds
#   sha1_compress   rolling-window compression vs the FIPS 180-1 loop
#   hmac_tag_64b    midstate HMAC vs naive per-tag key derivation
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${BENCHTIME:-300ms}"
OUT="BENCH_crypto.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT INT TERM

go test -run=none -benchtime "$BENCHTIME" -benchmem \
    -bench '^(BenchmarkAESPadGen|BenchmarkAESPadGenRef|BenchmarkBlockEncrypt|BenchmarkDataMACUpdate|BenchmarkHMACSized256|BenchmarkSecureWriteRead)$' \
    . >>"$TMP"
go test -run=none -benchtime "$BENCHTIME" -benchmem \
    -bench '^(BenchmarkBlock|BenchmarkBlockRef)$' ./internal/crypto/sha1/ >>"$TMP"
go test -run=none -benchtime "$BENCHTIME" -benchmem \
    -bench '^(BenchmarkKeyedSum64B|BenchmarkMACRef64B)$' ./internal/crypto/hmac/ >>"$TMP"

awk -v out="$OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3
    for (i = 4; i <= NF; i++) {
        if ($(i) == "allocs/op") allocs[name] = $(i - 1)
    }
}
END {
    pairs = "aes_pad_gen BenchmarkAESPadGenRef BenchmarkAESPadGen\n" \
            "sha1_compress BenchmarkBlockRef BenchmarkBlock\n" \
            "hmac_tag_64b BenchmarkMACRef64B BenchmarkKeyedSum64B"
    singles = "BenchmarkBlockEncrypt BenchmarkDataMACUpdate BenchmarkHMACSized256 BenchmarkSecureWriteRead"

    printf "{\n  \"benchtime\": \"%s\",\n  \"pairs\": [\n", benchtime > out
    n = split(pairs, p, "\n")
    printf "%-14s %12s %12s %9s\n", "pair", "old ns/op", "new ns/op", "speedup"
    for (i = 1; i <= n; i++) {
        split(p[i], f, " ")
        old = ns[f[2]] + 0; new = ns[f[3]] + 0
        sp = (new > 0) ? old / new : 0
        printf "    {\"name\": \"%s\", \"old_ns_per_op\": %s, \"new_ns_per_op\": %s, \"speedup\": %.2f}%s\n", \
            f[1], old, new, sp, (i < n ? "," : "") > out
        printf "%-14s %12.1f %12.1f %8.2fx\n", f[1], old, new, sp
    }
    printf "  ],\n  \"hot_path\": [\n" > out
    m = split(singles, s, " ")
    for (i = 1; i <= m; i++) {
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            s[i], ns[s[i]] + 0, allocs[s[i]] + 0, (i < m ? "," : "") > out
        printf "%-24s %10.1f ns/op  %s allocs/op\n", s[i], ns[s[i]] + 0, allocs[s[i]] + 0
    }
    printf "  ]\n}\n" > out
}
' benchtime="$BENCHTIME" "$TMP"

echo "wrote $OUT"
