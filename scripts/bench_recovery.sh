#!/bin/sh
# bench_recovery.sh — crash-recovery benchmark: for each fsync policy ×
# WAL length, loadgen spawns a durable secmemd on a scratch data dir,
# fills the WAL with acknowledged writes, SIGKILLs the daemon, restarts
# it, and measures restart-to-first-byte. Leaves BENCH_recovery.json in
# the repo root. Used by `make bench-recovery`.
set -eu

cd "$(dirname "$0")/.."
WRITES="${WRITES:-0,2000,10000}"
FSYNC="${FSYNC:-always,batch,off}"
CONNS="${CONNS:-8}"

go build -o /tmp/secmemd ./cmd/secmemd
go build -o /tmp/loadgen ./cmd/loadgen

/tmp/loadgen -recovery -secmemd /tmp/secmemd \
    -recovery-writes "$WRITES" -recovery-fsync "$FSYNC" -conns "$CONNS" \
    -json -out BENCH_recovery.json
