# Tier-1 gate for the aisebmt reproduction and its service layer.
#
#   make check           vet + build + full test suite + race pass on the
#                        concurrent packages (what CI and ROADMAP's tier-1
#                        line run)
#   make race            only the race pass (internal/shard, internal/server,
#                        internal/persist)
#   make fuzz            a short fuzz session on the wire codec
#   make fuzz-smoke      brief fuzz pass over every decoder that parses
#                        untrusted bytes (wire, WAL record, sealed anchor);
#                        CI runs this after check
#   make bench           service benchmark: start secmemd, drive it with
#                        loadgen, write BENCH_service.json
#   make bench-recovery  crash-recovery benchmark: restart-to-first-byte vs
#                        WAL length per fsync policy, BENCH_recovery.json
#   make bench-crypto    crypto hot-path microbenchmarks: overhauled engines
#                        vs their frozen reference implementations,
#                        BENCH_crypto.json
#   make bench-integrity Merkle tree update-engine benchmarks: batched,
#                        coalescing passes vs the frozen serial reference
#                        walk, plus e2e pool write throughput,
#                        BENCH_integrity.json
#   make bench-smoke     one-iteration pass over every microbenchmark (CI
#                        keeps them compiling and allocation-clean)
#   make metrics-smoke   start a daemon with observability on, drive traced
#                        traffic, lint the /metrics exposition (prefix,
#                        HELP/TYPE, duplicates); CI runs this after check
#   make bench-cluster   cluster benchmark: 3-node smoke with metrics lint,
#                        then single-daemon vs cluster throughput and a
#                        kill-the-owner failover phase, BENCH_cluster.json
#   make cluster-smoke   the same at CI sizes (short duration, small pool);
#                        CI runs this after check
#   make lifecycle-smoke cluster lifecycle end-to-end over real daemons:
#                        admin join via the wire op, kill-the-owner failover
#                        with automatic re-replication, fenced rejoin of the
#                        stale member, admin leave with verified handoff;
#                        CI runs this after the cluster smoke
#   make cluster         run a local 3-node cluster + router in the
#                        foreground (the README quickstart); Ctrl-C stops it
#   make chaos           deterministic fault-injection matrix (cmd/chaos):
#                        bit-flips, rollback, WAL faults, torn writes, slow
#                        I/O and multi-tenant attacks against a live durable
#                        pool; CI runs a short smoke of it
#   make tenant-smoke    start a tenant-enabled daemon (swap scheme +
#                        resident budget), drive tenant churn over the wire,
#                        lint the exposition incl. secmemd_tenant_*, then
#                        SIGKILL a tenant-durable daemon and assert the
#                        restart serves every acked tenant byte; CI runs
#                        this after check
#   make bench-tenants   multi-tenant benchmark suites: lifecycle churn
#                        (with a -tenant-serialize A/B baseline),
#                        swap-under-pressure with client-side shadowing,
#                        counter-overflow re-encryption storm, SIGKILL
#                        kill-and-recover, BENCH_tenants.json

GO ?= go

.PHONY: check vet build test race fuzz fuzz-smoke bench bench-recovery bench-crypto bench-integrity bench-smoke chaos chaos-smoke metrics-smoke bench-cluster cluster-smoke lifecycle-smoke cluster tenant-smoke bench-tenants

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/integrity/... ./internal/obs/... ./internal/shard/... ./internal/server/... ./internal/persist/... ./internal/cluster/... ./internal/chaos/... ./internal/vm/... ./internal/tenant/...

fuzz:
	$(GO) test -run=none -fuzz=FuzzRequestRoundTrip -fuzztime=20s ./internal/server/

fuzz-smoke:
	$(GO) test -run=none -fuzz=FuzzRequestRoundTrip -fuzztime=5s ./internal/server/
	$(GO) test -run=none -fuzz=FuzzTenantDispatch -fuzztime=5s ./internal/server/
	$(GO) test -run=none -fuzz=FuzzWALRecord -fuzztime=5s ./internal/persist/
	$(GO) test -run=none -fuzz=FuzzWALScan -fuzztime=5s ./internal/persist/
	$(GO) test -run=none -fuzz=FuzzAnchor -fuzztime=5s ./internal/persist/
	$(GO) test -run=none -fuzz=FuzzAgainstStdlib -fuzztime=5s ./internal/crypto/aes/
	$(GO) test -run=none -fuzz=FuzzAgainstStdlib -fuzztime=5s ./internal/crypto/hmac/
	$(GO) test -run=none -fuzz=FuzzAgainstStdlib -fuzztime=5s ./internal/crypto/sha1/

chaos: build
	$(GO) run ./cmd/chaos -rounds 3
	$(GO) run ./cmd/chaos -rounds 3 -seed 42

chaos-smoke: build
	$(GO) run ./cmd/chaos -rounds 1 -q

bench: build
	./scripts/bench_service.sh

bench-recovery: build
	./scripts/bench_recovery.sh

bench-crypto:
	./scripts/bench_crypto.sh

bench-integrity:
	./scripts/bench_integrity.sh

bench-smoke:
	$(GO) test -run=none -bench . -benchtime 1x ./internal/crypto/... ./internal/integrity/... ./internal/shard/... .

metrics-smoke: build
	./scripts/metrics_smoke.sh

bench-cluster: build
	./scripts/bench_cluster.sh

cluster-smoke: build
	DURATION=1s MEM=4MiB CONNS=4 ./scripts/bench_cluster.sh

lifecycle-smoke: build
	./scripts/lifecycle_smoke.sh

cluster: build
	./scripts/cluster_local.sh

tenant-smoke: build
	./scripts/tenant_smoke.sh

bench-tenants: build
	./scripts/bench_tenants.sh
