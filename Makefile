# Tier-1 gate for the aisebmt reproduction and its service layer.
#
#   make check   vet + build + full test suite + race pass on the
#                concurrent packages (what CI and ROADMAP's tier-1 line run)
#   make race    only the race pass (internal/shard, internal/server)
#   make fuzz    a short fuzz session on the wire codec
#   make bench   service benchmark: start secmemd, drive it with loadgen,
#                write BENCH_service.json

GO ?= go

.PHONY: check vet build test race fuzz bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/shard/... ./internal/server/...

fuzz:
	$(GO) test -run=none -fuzz=FuzzRequestRoundTrip -fuzztime=20s ./internal/server/

bench: build
	./scripts/bench_service.sh
