package aisebmt

// One benchmark per table and figure of the paper's evaluation (§7), plus
// the DESIGN.md ablations. Each benchmark regenerates its artifact and
// reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Campaign sizes use the Quick
// configuration; run cmd/experiments for the full-size campaign recorded in
// EXPERIMENTS.md.

import (
	"testing"

	"aisebmt/internal/core"
	"aisebmt/internal/experiments"
	"aisebmt/internal/layout"
	"aisebmt/internal/mem"
	"aisebmt/internal/sim"
	"aisebmt/internal/trace"
)

func benchCfg() experiments.Config { return experiments.Quick() }

// BenchmarkTable1Qualitative regenerates Table 1 (qualitative scheme
// comparison). It is a rendering benchmark; the table content is static.
func BenchmarkTable1Qualitative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().Render() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Storage regenerates Table 2 (storage overheads) from the
// analytic layout model and reports the two 128-bit totals.
func BenchmarkTable2Storage(b *testing.B) {
	var g64, bmt float64
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.MACBits == 128 {
				if r.Scheme == layout.Global64MT {
					g64 = r.TotalPct
				} else {
					bmt = r.TotalPct
				}
			}
		}
	}
	b.ReportMetric(g64, "global64+MT-total-%")
	b.ReportMetric(bmt, "AISE+BMT-total-%")
}

// reportAverages attaches each scheme's average overhead as a metric.
func reportAverages(b *testing.B, series []experiments.Series) {
	b.Helper()
	for _, s := range series[1:] {
		b.ReportMetric(s.AvgOverhead*100, s.Scheme+"-avg-%")
	}
}

// BenchmarkFig6Overhead regenerates Figure 6: global64+MT vs AISE+BMT.
func BenchmarkFig6Overhead(b *testing.B) {
	var last []experiments.Series
	for i := 0; i < b.N; i++ {
		series, _, err := experiments.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = series
	}
	reportAverages(b, last)
}

// BenchmarkFig7Encryption regenerates Figure 7: global counters vs AISE.
func BenchmarkFig7Encryption(b *testing.B) {
	var last []experiments.Series
	for i := 0; i < b.N; i++ {
		series, _, err := experiments.Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = series
	}
	reportAverages(b, last)
}

// BenchmarkFig8Integrity regenerates Figure 8: AISE, AISE+MT, AISE+BMT.
func BenchmarkFig8Integrity(b *testing.B) {
	var last []experiments.Series
	for i := 0; i < b.N; i++ {
		series, _, err := experiments.Fig8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = series
	}
	reportAverages(b, last)
}

// BenchmarkFig9Pollution regenerates Figure 9: L2 data occupancy.
func BenchmarkFig9Pollution(b *testing.B) {
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, _, err = experiments.Fig9(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		var sum float64
		for _, r := range s.ByBench {
			sum += r.L2DataShare
		}
		b.ReportMetric(sum/float64(len(s.ByBench))*100, s.Scheme+"-datashare-%")
	}
}

// BenchmarkFig10MissAndBus regenerates Figure 10: L2 miss rate and bus
// utilization for base/MT/BMT.
func BenchmarkFig10MissAndBus(b *testing.B) {
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, _, _, err = experiments.Fig10(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		var miss, bus float64
		for _, r := range s.ByBench {
			miss += r.L2MissRate
			bus += r.BusUtilization
		}
		n := float64(len(s.ByBench))
		b.ReportMetric(miss/n*100, s.Scheme+"-l2miss-%")
		b.ReportMetric(bus/n*100, s.Scheme+"-bus-%")
	}
}

// BenchmarkFig11MACSize regenerates Figure 11: the MAC-size sensitivity
// sweep (which is also the tree-arity ablation: MAC width fixes the arity).
func BenchmarkFig11MACSize(b *testing.B) {
	var points []experiments.Fig11Point
	for i := 0; i < b.N; i++ {
		var err error
		points, _, err = experiments.Fig11(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.MACBits == 32 || p.MACBits == 256 {
			b.ReportMetric(p.AvgOverhead*100, p.Scheme+"-"+itoa(p.MACBits)+"b-%")
		}
	}
}

func itoa(n int) string {
	switch n {
	case 32:
		return "32"
	case 64:
		return "64"
	case 128:
		return "128"
	case 256:
		return "256"
	}
	return "?"
}

// BenchmarkRelatedWork regenerates the extension figure comparing direct
// encryption, MAC-only, log-hash and AISE+BMT.
func BenchmarkRelatedWork(b *testing.B) {
	var last []experiments.Series
	for i := 0; i < b.N; i++ {
		series, _, err := experiments.RelatedWork(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = series
	}
	reportAverages(b, last)
}

// BenchmarkAblationCounterPrediction regenerates the speculative-pad
// optimization study.
func BenchmarkAblationCounterPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCounterPrediction(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMACCaching regenerates the §5.2 design-choice ablation.
func BenchmarkAblationMACCaching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMACCaching(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCounterCache sweeps counter cache sizes.
func BenchmarkAblationCounterCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCounterCache(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPreciseVerify compares timely vs precise verification.
func BenchmarkAblationPreciseVerify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPreciseVerify(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMinorCounterWidth regenerates the split-counter width
// trade-off table.
func BenchmarkAblationMinorCounterWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.AblationMinorCounterWidth().Rows) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (accesses per
// second) under the heaviest scheme, for harness performance tracking.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p, _ := trace.ProfileByName("art")
	m := sim.DefaultMachine()
	s, err := sim.New(sim.SchemeGlobal64MT(128), m)
	if err != nil {
		b.Fatal(err)
	}
	gen := trace.NewGenerator(p, 0, 7)
	b.ResetTimer()
	s.Run(gen, 0, b.N, "art")
}

// BenchmarkExtensionCMP regenerates the chip-multiprocessor scaling study.
func BenchmarkExtensionCMP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionCMP(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreReadWrite measures the functional controller's hot path:
// one protected 64-byte write plus read under AISE+BMT.
func BenchmarkCoreReadWrite(b *testing.B) {
	sm, err := core.New(core.Config{
		DataBytes: 1 << 20, Key: []byte("0123456789abcdef"),
		Encryption: core.AISE, Integrity: core.BonsaiMT,
	})
	if err != nil {
		b.Fatal(err)
	}
	var blk mem.Block
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := layout.Addr(i%16384) * 64
		if err := sm.WriteBlock(a, &blk, core.Meta{}); err != nil {
			b.Fatal(err)
		}
		if err := sm.ReadBlock(a, &blk, core.Meta{}); err != nil {
			b.Fatal(err)
		}
	}
}
